#!/usr/bin/env bash
# Tier-1 verification gate plus the transport/fault determinism checks.
#
# Usage: scripts/verify.sh
# Runs from any directory; everything executes at the repository root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build =="
cargo build --release

echo "== tier 1: full test suite =="
cargo test -q

echo "== transport: parallelism determinism (clean + faulted) =="
# The campaign observation series must be bit-identical at any thread
# count, with and without transport faults (NaN gaps compare as bits).
cargo test -q --release --test determinism -- \
  parallel_fanout_matches_serial_bit_for_bit \
  faulted_campaign_bit_identical_across_parallelism

echo "== transport: fault-tolerance gate =="
cargo test -q --release --test fault_tolerance

echo "== store: checkpoint-resume determinism (4 h campaign, checkpoint at 2 h) =="
# A campaign interrupted at a tick boundary and resumed from its
# checkpoint must finish bit-identical to the uninterrupted run (NaN
# gaps compared as bit patterns), under a laggy/lossy transport with
# messages still in flight at the checkpoint, at parallelism 1 and 4 —
# and the event log must replay to the same bytes without re-simulation.
cargo test -q --release -p surgescope-core --test checkpoint_resume \
  -- --ignored four_hour_campaign_checkpoint_at_two_hours_gate

echo "== store: corrupted-log handling =="
# Truncated tails and flipped bits must surface clean errors, not panics.
cargo test -q --release -p surgescope-core --test checkpoint_resume -- \
  truncated_log_errors_cleanly \
  corrupted_log_fails_crc_cleanly

echo "verify: all gates passed"
