#!/usr/bin/env bash
# Tier-1 verification gate plus the transport/fault determinism checks.
#
# Usage: scripts/verify.sh
# Runs from any directory; everything executes at the repository root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build =="
cargo build --release

echo "== tier 1: full test suite =="
cargo test -q

echo "== transport: parallelism determinism (clean + faulted) =="
# The campaign observation series must be bit-identical at any thread
# count, with and without transport faults (NaN gaps compare as bits).
cargo test -q --release --test determinism -- \
  parallel_fanout_matches_serial_bit_for_bit \
  faulted_campaign_bit_identical_across_parallelism

echo "== transport: fault-tolerance gate =="
cargo test -q --release --test fault_tolerance

echo "== store: checkpoint-resume determinism (4 h campaign, checkpoint at 2 h) =="
# A campaign interrupted at a tick boundary and resumed from its
# checkpoint must finish bit-identical to the uninterrupted run (NaN
# gaps compared as bit patterns), under a laggy/lossy transport with
# messages still in flight at the checkpoint, at parallelism 1 and 4 —
# and the event log must replay to the same bytes without re-simulation.
cargo test -q --release -p surgescope-core --test checkpoint_resume \
  -- --ignored four_hour_campaign_checkpoint_at_two_hours_gate

echo "== store: corrupted-log handling =="
# Truncated tails and flipped bits must surface clean errors, not panics.
cargo test -q --release -p surgescope-core --test checkpoint_resume -- \
  truncated_log_errors_cleanly \
  corrupted_log_fails_crc_cleanly

echo "== scheduler: --jobs CSV byte-identity (jobs=1 vs jobs=4) =="
# A shared-campaign subset of `repro --quick` must emit byte-identical
# CSVs whether campaigns are simulated serially or prefetched on 4
# workers. Each run gets a fresh working directory and a fresh disk
# cache — otherwise the second run would replay the first run's logs
# and the comparison would be vacuous.
cargo build --release -p surgescope-experiments --bin repro
SCHED_TMP=$(mktemp -d)
trap 'rm -rf "$SCHED_TMP"' EXIT
REPRO="$PWD/target/release/repro"
for jobs in 1 4; do
  mkdir -p "$SCHED_TMP/j$jobs"
  (cd "$SCHED_TMP/j$jobs" && \
   SURGESCOPE_CACHE_DIR="$SCHED_TMP/j$jobs/cache" \
   "$REPRO" --quick --jobs "$jobs" --metrics metrics.json fig05 fig12 fig16 >/dev/null)
done
# With nullglob an empty results directory would silently skip the loop
# (and without it, the literal glob string would hit cmp with a bash
# error) — either way the gate must fail loudly, not pass vacuously.
shopt -s nullglob
j1_csvs=("$SCHED_TMP"/j1/results/*.csv)
shopt -u nullglob
if [ "${#j1_csvs[@]}" -eq 0 ]; then
  echo "scheduler gate: no CSVs found in $SCHED_TMP/j1/results/ — repro wrote nothing to compare" >&2
  exit 1
fi
for csv in "${j1_csvs[@]}"; do
  cmp "$csv" "$SCHED_TMP/j4/results/$(basename "$csv")"
done
echo "scheduler CSVs byte-identical at jobs=1 and jobs=4 (${#j1_csvs[@]} files)"
# The determinism-checked metrics sections (counters/gauges/histograms;
# wall-clock timers live in the excluded "timing" sections) must also be
# identical across jobs settings.
python3 - "$SCHED_TMP" <<'EOF'
import json, sys
def det(path):
    doc = json.load(open(path))
    return {"run": doc["run"]["deterministic"],
            "campaigns": {k: v["deterministic"] for k, v in doc["campaigns"].items()}}
a = det(sys.argv[1] + "/j1/metrics.json")
b = det(sys.argv[1] + "/j4/metrics.json")
assert a == b, "deterministic metrics sections differ between jobs=1 and jobs=4"
print("metrics deterministic sections identical at jobs=1 and jobs=4")
EOF

echo "== perf: campaign throughput and scheduler scaling =="
# Refresh BENCH_campaign.json from this build, then gate on it: the
# allocation-free tick pipeline must hold clean throughput at >= 1.3x
# the pre-arena baseline (4024.7 ticks/s). The jobs=2 scheduler scaling
# gate only means something with a second core to scale onto.
cargo run --release -p surgescope-bench --bin bench_campaign >/dev/null
python3 - <<'EOF'
import json, os
b = json.load(open("BENCH_campaign.json"))
tps = b["ticks_per_sec"]
floor = 4024.7 * 1.3
assert tps >= floor, f"clean throughput {tps:.1f} ticks/s below gate {floor:.1f}"
print(f"clean throughput {tps:.1f} ticks/s (gate {floor:.1f})")
if (os.cpu_count() or 1) >= 2:
    s2 = b["scaling_2j"]
    assert s2 >= 1.5, f"jobs=2 scheduler scaling {s2:.2f}x below 1.5x gate"
    print(f"jobs=2 scheduler scaling {s2:.2f}x (gate 1.5x)")
else:
    print(f"jobs=2 scheduler scaling {b['scaling_2j']:.2f}x (single-core host; 1.5x gate skipped)")
serve = b["serve"]
assert serve["requests"] > 0 and serve["errors"] == 0, f"serve burst unhealthy: {serve}"
assert serve["serve.frame_errors"] == 0, f"serve burst raised frame errors: {serve}"
print(f"serve burst: {serve['serve.requests_per_sec']:.0f} req/s, "
      f"p99 {serve['serve.p99_us']}us, 0 frame errors")
EOF

echo "== serve: loopback byte-identity and load smoke =="
# The serving layer's determinism contract, end to end over real
# sockets: a faulted campaign measured against `repro --serve` through a
# 2-connection lockstep party must produce byte-identical encoded
# CampaignData to the in-process run — a plain `cmp` of the two files.
# Then a 2-second paced load burst against the same server must serve
# >0 requests with 0 client-visible errors (serve_load exits non-zero
# otherwise).
cargo build --release -p surgescope-bench --bin serve_load --bin remote_campaign
SERVE_TMP=$(mktemp -d)
./target/release/repro --serve 127.0.0.1:0 --quick >"$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$SCHED_TMP" "$SERVE_TMP"' EXIT
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^\[serve\] listening on //p' "$SERVE_TMP/serve.log" | head -1)
  [ -n "$ADDR" ] && break
  sleep 0.2
done
if [ -z "$ADDR" ]; then
  echo "serve gate: server never reported its address:" >&2
  cat "$SERVE_TMP/serve.log" >&2
  exit 1
fi
./target/release/remote_campaign --out "$SERVE_TMP/local.bin" --seed 70931 --faulted
./target/release/remote_campaign --out "$SERVE_TMP/remote.bin" --seed 70931 --faulted \
  --remote "$ADDR" --conns 2
cmp "$SERVE_TMP/local.bin" "$SERVE_TMP/remote.bin"
echo "remote campaign bytes identical to in-process ($(wc -c <"$SERVE_TMP/local.bin") bytes)"
./target/release/serve_load --addr "$ADDR" --conns 4 --rps 200 --secs 2

echo "== serve: chaos byte-identity (resilience gate) =="
# Same campaign, same server, but every connection sabotaged by the
# seeded reference chaos schedule: connection resets, truncated frames,
# write stalls. The retry/RESUME layer must absorb every fault — the
# binary reports the injected/reconnect counts — and the encoded bytes
# must still match the in-process run exactly.
./target/release/remote_campaign --out "$SERVE_TMP/chaos.bin" --seed 70931 --faulted \
  --remote "$ADDR" --conns 2 --chaos 3133
cmp "$SERVE_TMP/local.bin" "$SERVE_TMP/chaos.bin"
echo "chaotic remote campaign bytes identical to in-process"
kill "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null || true

echo "verify: all gates passed"
