#!/usr/bin/env bash
# Tier-1 verification gate plus the transport/fault determinism checks.
#
# Usage: scripts/verify.sh
# Runs from any directory; everything executes at the repository root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build =="
cargo build --release

echo "== tier 1: full test suite =="
cargo test -q

echo "== transport: parallelism determinism (clean + faulted) =="
# The campaign observation series must be bit-identical at any thread
# count, with and without transport faults (NaN gaps compare as bits).
cargo test -q --release --test determinism \
  parallel_fanout_matches_serial_bit_for_bit \
  faulted_campaign_bit_identical_across_parallelism

echo "== transport: fault-tolerance gate =="
cargo test -q --release --test fault_tolerance

echo "verify: all gates passed"
