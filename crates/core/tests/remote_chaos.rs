//! The resilience layer's determinism contract, regression-locked: a
//! remote campaign whose transport is being actively sabotaged by a
//! seeded [`ChaosStream`] schedule — connection resets, mid-frame
//! truncations, write stalls, delayed reads — still produces
//! [`CampaignData`] bytes identical to the in-process run, because every
//! reconnect re-attaches with `RESUME` and re-sends idempotent
//! operations against the barrier-frozen world. The oracle is
//! [`persist::campaign_encoded`] (raw IEEE-754 bits, NaN gaps included).
//!
//! With the retry budget forced to 0, the first injected fault trips the
//! circuit breaker instead: the run aborts with an error naming the
//! breaker, `resilience.breaker_trips` is nonzero, and falling back to
//! local execution (what `cache.campaign_custom` does on that error)
//! yields the same bytes the remote run would have produced.

use std::time::Duration;
use surgescope_city::CityModel;
use surgescope_core::persist::campaign_encoded;
use surgescope_core::{CampaignConfig, CampaignRunner, ChaosSpec, RemoteOptions, RetryPolicy};
use surgescope_obs::Snapshot;
use surgescope_serve::{ChaosPlan, ServeConfig, Server};
use surgescope_simcore::FaultPlan;

/// Same campaign shape as the lockstep suite: 1 simulated hour = 720
/// ticks = 12 surge intervals, coarse lattice, quarter-scale city.
fn chaos_cfg(seed: u64, faults: FaultPlan) -> CampaignConfig {
    let mut cfg = CampaignConfig::test_default(seed);
    cfg.hours = 1;
    cfg.scale = 0.25;
    cfg.spacing_override_m = Some(500.0);
    cfg.faults = faults;
    cfg
}

/// Fault chances tuned so a 720-tick campaign (tens of thousands of
/// frame writes) sees *many* of every class, while retries stay cheap.
/// Stall/delay durations are tiny — they only have to exercise the code
/// path, not simulate a real WAN.
fn chaos_plan() -> ChaosPlan {
    ChaosPlan {
        reset_chance: 0.003,
        truncate_chance: 0.003,
        stall_chance: 0.004,
        delay_chance: 0.002,
        stall: Duration::from_millis(2),
    }
}

/// Fast-converging retry policy for loopback tests: generous budget,
/// millisecond backoff.
fn test_policy(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        op_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
    }
}

fn run_local(cfg: &CampaignConfig) -> Vec<u8> {
    let mut runner = CampaignRunner::new(CityModel::san_francisco_downtown(), cfg)
        .expect("local campaign");
    runner.run_to_end().expect("local run");
    campaign_encoded(&runner.finish().expect("local finish"))
}

/// Runs the campaign remotely under chaos and returns the encoded bytes
/// plus the metrics snapshot read at the last tick boundary (the
/// `resilience.*` counters live there).
fn run_remote_chaos(
    addr: &str,
    cfg: &CampaignConfig,
    connections: usize,
    options: RemoteOptions,
) -> (Vec<u8>, Snapshot) {
    let mut runner = CampaignRunner::new_remote_with(
        CityModel::san_francisco_downtown(),
        cfg,
        addr,
        connections,
        options,
    )
    .expect("remote campaign");
    runner.run_to_end().expect("remote run");
    let snap = runner.metrics_snapshot();
    (campaign_encoded(&runner.finish().expect("remote finish")), snap)
}

fn count(snap: &Snapshot, key: &str) -> u64 {
    snap.value(key).unwrap_or_else(|| panic!("metric {key} missing from snapshot"))
}

#[test]
fn chaotic_remote_campaign_matches_local_bytes_clean_and_faulted() {
    let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let plans = [
        ("clean", FaultPlan::none()),
        ("faulted", FaultPlan { drop_chance: 0.05, delay_chance: 0.15, max_delay_secs: 20 }),
    ];
    for (label, faults) in plans {
        let cfg = chaos_cfg(7_0931, faults);
        let local = run_local(&cfg);
        for connections in [1usize, 4] {
            let options = RemoteOptions {
                policy: test_policy(8),
                chaos: Some(ChaosSpec { seed: 0xC4A05 ^ connections as u64, plan: chaos_plan() }),
            };
            let (remote, snap) = run_remote_chaos(&addr, &cfg, connections, options);
            assert_eq!(
                local, remote,
                "{label}: chaotic remote campaign over {connections} connection(s) \
                 diverged from the in-process bytes"
            );
            // The schedule must actually have fired: at least one
            // disconnect (reset), one truncated frame, and one stall
            // per campaign — otherwise this test pins nothing.
            let resets = count(&snap, "resilience.chaos_resets");
            let truncations = count(&snap, "resilience.chaos_truncations");
            let stalls = count(&snap, "resilience.chaos_stalls");
            assert!(resets >= 1, "{label}/{connections}: no connection reset injected");
            assert!(truncations >= 1, "{label}/{connections}: no truncation injected");
            assert!(stalls >= 1, "{label}/{connections}: no write stall injected");
            // Every killed stream forced a reconnect + RESUME.
            let reconnects = count(&snap, "resilience.reconnects");
            assert_eq!(
                count(&snap, "resilience.resumes"),
                reconnects,
                "every reconnect re-attaches via RESUME"
            );
            assert!(
                reconnects >= resets + truncations,
                "{label}/{connections}: {resets} resets + {truncations} truncations \
                 but only {reconnects} reconnects"
            );
            assert_eq!(
                count(&snap, "resilience.breaker_trips"),
                0,
                "{label}/{connections}: the breaker must not trip under a generous budget"
            );
        }
    }
    server.shutdown();
}

/// The chaos schedule is a pure function of (seed, connection,
/// incarnation): two identical runs inject identical fault counts and
/// read byte-identical deterministic metric sections.
#[test]
fn chaos_injection_counts_are_deterministic_per_seed() {
    let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let cfg = chaos_cfg(55, FaultPlan::none());
    let run = |addr: &str| {
        let options = RemoteOptions {
            policy: test_policy(8),
            chaos: Some(ChaosSpec { seed: 99, plan: chaos_plan() }),
        };
        let (bytes, snap) = run_remote_chaos(addr, &cfg, 2, options);
        (bytes, snap.deterministic_json())
    };
    let (bytes_a, det_a) = run(&addr);
    let (bytes_b, det_b) = run(&addr);
    assert_eq!(bytes_a, bytes_b, "chaotic runs must stay byte-identical");
    assert_eq!(det_a, det_b, "deterministic metric sections drifted across identical runs");
    server.shutdown();
}

/// Retry budget 0: the first injected fault trips the circuit breaker.
/// The run surfaces an error naming the breaker (what the experiments
/// cache keys its local fallback on), `resilience.breaker_trips` is
/// nonzero, and the local fallback produces the identical bytes.
#[test]
fn zero_retry_budget_trips_the_breaker_and_local_fallback_matches() {
    let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let cfg = chaos_cfg(7_0931, FaultPlan::none());
    let baseline = run_local(&cfg);

    // Every armed write dies instantly; budget 0 means no reconnect.
    let murder = ChaosPlan {
        reset_chance: 1.0,
        truncate_chance: 0.0,
        stall_chance: 0.0,
        delay_chance: 0.0,
        stall: Duration::ZERO,
    };
    let options = RemoteOptions {
        policy: test_policy(0),
        chaos: Some(ChaosSpec { seed: 7, plan: murder }),
    };
    let mut runner = CampaignRunner::new_remote_with(
        CityModel::san_francisco_downtown(),
        &cfg,
        &addr,
        1,
        options,
    )
    .expect("handshakes run clean (chaos arms after setup)");
    let err = runner.run_to_end().expect_err("the breaker must abort the campaign");
    assert!(
        err.to_string().contains("circuit breaker"),
        "the error must name the breaker so the cache's fallback can count it: {err}"
    );
    let snap = runner.metrics_snapshot();
    assert!(
        count(&snap, "resilience.breaker_trips") >= 1,
        "breaker_trips must be nonzero after the abort"
    );
    assert_eq!(count(&snap, "resilience.reconnects"), 0, "budget 0 permits no reconnect");
    drop(runner);

    // The fallback `cache.campaign_custom` takes on that error: run the
    // same config in-process. Identical bytes — the flaky wire cost the
    // topology, never the result.
    let fallback = run_local(&cfg);
    assert_eq!(baseline, fallback, "local fallback diverged from the in-process baseline");
    server.shutdown();
}
