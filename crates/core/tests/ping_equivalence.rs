//! Regression lock backing the `ping_one` doc claim: the measurement
//! fan-out renders observations straight from the snapshot (skipping the
//! wire response entirely), and that shortcut must stay **byte-identical**
//! to the honest pipeline — materialize a full `ping_client` wire
//! response, then convert its `TypeStatus` blocks into `TypeObservation`s
//! the way a real measurement client would. Any drift here (a missed
//! perturbation, a reordered tier, a different projection) silently
//! changes every downstream estimate.

use surgescope_api::{ApiService, ProtocolEra};
use surgescope_city::CityModel;
use surgescope_core::calibration::placement;
use surgescope_core::{
    response_to_observations, MeasuredSystem, TypeObservation, UberSystem,
};
use surgescope_marketplace::{Marketplace, MarketplaceConfig};
use surgescope_simcore::SimDuration;

#[test]
fn ping_all_matches_wire_response_conversion() {
    let city = CityModel::san_francisco_downtown();
    let proj = city.projection;
    let clients = placement(&city.measurement_region, city.client_spacing_m);
    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), 2026);
    // Midday-ish fleet so every tier shows cars and surge is in play.
    mp.run_for(SimDuration::hours(6));
    let api = ApiService::new(ProtocolEra::Apr2015, 2026);
    let ping = api.ping_config();
    let mut sys = UberSystem::new(mp, api);

    for tick in 0..24 {
        sys.advance_tick();
        let snap = sys.tick_snapshot();
        let obs = sys.ping_all(&clients);
        for (c, blocks) in clients.iter().zip(&obs) {
            let resp = ping.ping_client(&snap, c.key, proj.to_latlng(c.position));
            // The honest client-side pipeline — the exact conversion the
            // remote (socket) measurement client applies to each
            // `pingClient` response.
            let converted: Vec<TypeObservation> = response_to_observations(&resp, &proj);
            // Byte-level comparison (via serialization) rather than
            // `PartialEq`: a NaN gap must also match bit-for-bit.
            assert_eq!(
                serde_json::to_string(blocks).expect("serialize direct observations"),
                serde_json::to_string(&converted).expect("serialize converted response"),
                "tick {tick}: client {} diverged from its wire-response conversion",
                c.key
            );
        }
    }
}
