//! The serving layer's determinism contract, regression-locked: a
//! campaign measured **over the wire** (lockstep party of sockets to a
//! `surgescope-serve` server) produces byte-identical [`CampaignData`] to
//! the in-process run with the same config — clean and faulted, at any
//! connection count. The oracle is [`persist::campaign_encoded`], which
//! encodes floats as raw IEEE-754 bits, so NaN gaps must match too.

use surgescope_city::CityModel;
use surgescope_core::persist::campaign_encoded;
use surgescope_core::{CampaignConfig, CampaignRunner};
use surgescope_serve::{ServeConfig, Server};
use surgescope_simcore::FaultPlan;

/// Short but non-trivial: 1 simulated hour = 720 ticks = 12 surge
/// intervals, so interval probes, interval flushes and delayed responses
/// all fire. The coarse lattice keeps the fleet (and the frame volume)
/// small.
fn lockstep_cfg(seed: u64, faults: FaultPlan) -> CampaignConfig {
    let mut cfg = CampaignConfig::test_default(seed);
    cfg.hours = 1;
    cfg.scale = 0.25;
    cfg.spacing_override_m = Some(500.0);
    cfg.faults = faults;
    cfg
}

fn run_local(cfg: &CampaignConfig) -> Vec<u8> {
    let mut runner = CampaignRunner::new(CityModel::san_francisco_downtown(), cfg)
        .expect("local campaign");
    runner.run_to_end().expect("local run");
    campaign_encoded(&runner.finish().expect("local finish"))
}

fn run_remote(addr: &str, cfg: &CampaignConfig, connections: usize) -> Vec<u8> {
    let mut runner = CampaignRunner::new_remote(
        CityModel::san_francisco_downtown(),
        cfg,
        addr,
        connections,
    )
    .expect("remote campaign");
    runner.run_to_end().expect("remote run");
    campaign_encoded(&runner.finish().expect("remote finish"))
}

#[test]
fn remote_campaign_matches_local_bytes_clean_and_faulted() {
    let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let plans = [
        ("clean", FaultPlan::none()),
        // Drops, delays and in-flight responses all cross tick
        // boundaries under this plan.
        ("faulted", FaultPlan { drop_chance: 0.05, delay_chance: 0.15, max_delay_secs: 20 }),
    ];
    for (label, faults) in plans {
        let cfg = lockstep_cfg(7_0931, faults);
        let local = run_local(&cfg);
        for connections in [1usize, 4] {
            let remote = run_remote(&addr, &cfg, connections);
            assert_eq!(
                local, remote,
                "{label}: remote campaign over {connections} connection(s) \
                 diverged from the in-process bytes"
            );
        }
    }
    server.shutdown();
}

#[test]
fn remote_campaign_rejects_store_hooks() {
    let mut cfg = lockstep_cfg(1, FaultPlan::none());
    cfg.store.log_path = Some(std::path::PathBuf::from("/tmp/never-written.log"));
    let err = CampaignRunner::new_remote(
        CityModel::san_francisco_downtown(),
        &cfg,
        "127.0.0.1:1", // never dialed: the hook check comes first
        1,
    )
    .err()
    .expect("store hooks must be rejected before connecting");
    assert!(err.to_string().contains("store hooks"), "unexpected error: {err}");
}

/// The server's own deterministic-section counters (frames, bytes,
/// campaign bookkeeping) are part of the observability contract: two
/// fresh servers driven by identical lockstep campaigns must read
/// byte-identical deterministic snapshots. Wall-clock timers live in the
/// timing section, which is excluded.
#[test]
fn server_deterministic_counters_stable_across_reruns() {
    let cfg = lockstep_cfg(42, FaultPlan::laggy(0.1, 15));
    let mut jsons = Vec::new();
    for _ in 0..2 {
        let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let bytes = run_remote(&addr, &cfg, 2);
        assert!(!bytes.is_empty());
        // Shutdown joins the worker threads, so every in-flight counter
        // increment has landed before the snapshot is read.
        server.shutdown();
        jsons.push(server.metrics_snapshot().deterministic_json());
    }
    assert_eq!(jsons[0], jsons[1], "server deterministic counters drifted across reruns");
}
