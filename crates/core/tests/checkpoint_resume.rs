//! End-to-end checkpoint / resume / replay determinism.
//!
//! The contract under test: a campaign interrupted at a tick boundary and
//! resumed from its checkpoint produces a `CampaignData` that is
//! **bit-identical** (NaN payloads included) to the uninterrupted run —
//! under a clean transport AND under `FaultPlan::laggy` (non-empty
//! in-flight queue at the checkpoint), at parallelism 1 and 4 — and that
//! a finished event log replays into the same bytes without re-simulation.
//!
//! Equality is asserted on `persist::campaign_encoded`, the canonical
//! byte encoding in which equal bytes ⇔ deep bit-exact equality.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use surgescope_city::CityModel;
use surgescope_core::persist::{campaign_encoded, replay_campaign};
use surgescope_core::{CampaignConfig, CampaignRunner, StoreHooks};
use surgescope_simcore::FaultPlan;
use surgescope_store::StoreError;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "surgescope-ckpt-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn base_cfg(faults: FaultPlan, hours: u64) -> CampaignConfig {
    CampaignConfig { hours, faults, ..CampaignConfig::test_default(77) }
}

/// Runs the scenario end to end: uninterrupted baseline, interrupted run
/// checkpointed at the half-way tick boundary, resumes at parallelism
/// 1 and 4.
fn scenario(tag: &str, faults: FaultPlan, hours: u64) {
    let city = CityModel::manhattan_midtown();
    let half_ticks = hours as usize * 720 / 2; // 720 five-second ticks/hour

    // Uninterrupted baseline (serial), streamed into a log.
    let baseline_log = temp_path(&format!("{tag}-baseline.sslog"));
    let mut cfg = base_cfg(faults, hours);
    cfg.store.log_path = Some(baseline_log.clone());
    let mut runner = CampaignRunner::new(city.clone(), &cfg).unwrap();
    runner.run_to_end().unwrap();
    let baseline = runner.finish().unwrap();
    let baseline_bytes = campaign_encoded(&baseline);

    // Replay: the log alone reconstructs the same bytes, no simulation.
    let replayed = replay_campaign(&baseline_log).unwrap();
    assert_eq!(
        campaign_encoded(&replayed),
        baseline_bytes,
        "{tag}: replay of the event log diverged from the live campaign"
    );

    // Interrupted run: different parallelism, checkpoint at mid-campaign,
    // then the process "crashes" (runner dropped, only the file survives).
    let ckpt = temp_path(&format!("{tag}.ckpt"));
    let mut cfg = base_cfg(faults, hours);
    cfg.parallelism = 4;
    cfg.store.checkpoint_path = Some(ckpt.clone());
    let mut partial = CampaignRunner::new(city, &cfg).unwrap();
    for _ in 0..half_ticks {
        partial.tick().unwrap();
    }
    if faults.delay_chance > 0.0 {
        assert!(
            partial.in_flight() > 0,
            "{tag}: laggy plan should leave messages in flight at the checkpoint"
        );
    }
    partial.write_checkpoint().unwrap();
    drop(partial);

    // Resume at parallelism 1 and 4; both must hit the baseline bytes,
    // and the rewritten log must replay to them as well.
    for threads in [1usize, 4] {
        let log = temp_path(&format!("{tag}-resume{threads}.sslog"));
        let hooks = StoreHooks { log_path: Some(log.clone()), ..StoreHooks::none() };
        let mut resumed = CampaignRunner::resume_from_file(&ckpt, threads, hooks).unwrap();
        assert_eq!(resumed.ticks_done(), half_ticks);
        resumed.run_to_end().unwrap();
        let data = resumed.finish().unwrap();
        assert_eq!(
            campaign_encoded(&data),
            baseline_bytes,
            "{tag}: resume at parallelism {threads} diverged from the uninterrupted run"
        );
        let rewound = replay_campaign(&log).unwrap();
        assert_eq!(
            campaign_encoded(&rewound),
            baseline_bytes,
            "{tag}: log rewritten on resume (parallelism {threads}) replays differently"
        );
        let _ = std::fs::remove_file(&log);
    }
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&baseline_log);
}

#[test]
fn clean_campaign_checkpoint_resume_bit_identical() {
    scenario("clean", FaultPlan::none(), 2);
}

#[test]
fn laggy_campaign_checkpoint_resume_bit_identical() {
    // Delays park responses in the transport queue across the checkpoint
    // boundary; drops punch NaN gaps whose bit patterns must survive.
    scenario(
        "laggy",
        FaultPlan { drop_chance: 0.05, delay_chance: 0.25, max_delay_secs: 30 },
        2,
    );
}

/// The verify-script gate: a 4-hour campaign checkpointed at the 2-hour
/// boundary, resumed, and diffed bit-for-bit against the uninterrupted
/// run. Ignored by default (it simulates 4 campaign-hours four times
/// over); `scripts/verify.sh` runs it explicitly with `-- --ignored`.
#[test]
#[ignore = "release-mode gate, run by scripts/verify.sh"]
fn four_hour_campaign_checkpoint_at_two_hours_gate() {
    scenario(
        "gate-4h",
        FaultPlan { drop_chance: 0.05, delay_chance: 0.25, max_delay_secs: 30 },
        4,
    );
}

#[test]
fn truncated_log_errors_cleanly() {
    let city = CityModel::manhattan_midtown();
    let log = temp_path("trunc.sslog");
    let mut cfg = CampaignConfig { hours: 1, ..CampaignConfig::test_default(5) };
    cfg.store.log_path = Some(log.clone());
    let mut runner = CampaignRunner::new(city, &cfg).unwrap();
    runner.run_to_end().unwrap();
    runner.finish().unwrap();

    let full = std::fs::read(&log).unwrap();
    // Chop mid-record: an interrupted write must surface Truncated, and a
    // log cut before its FINISH record must be rejected as incomplete —
    // cleanly, never a panic.
    for cut in [full.len() - 7, full.len() / 2, 30] {
        let t = temp_path("trunc-cut.sslog");
        std::fs::write(&t, &full[..cut]).unwrap();
        let err = match replay_campaign(&t) {
            Err(e) => e,
            Ok(_) => panic!("truncated log must not replay (cut {cut})"),
        };
        assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::Schema(_)),
            "cut at {cut}: unexpected error {err}"
        );
        let _ = std::fs::remove_file(&t);
    }
    let _ = std::fs::remove_file(&log);
}

#[test]
fn corrupted_log_fails_crc_cleanly() {
    let city = CityModel::manhattan_midtown();
    let log = temp_path("crc.sslog");
    let mut cfg = CampaignConfig { hours: 1, ..CampaignConfig::test_default(6) };
    cfg.store.log_path = Some(log.clone());
    let mut runner = CampaignRunner::new(city, &cfg).unwrap();
    runner.run_to_end().unwrap();
    runner.finish().unwrap();

    let mut bytes = std::fs::read(&log).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&log, &bytes).unwrap();
    let err = match replay_campaign(&log) {
        Err(e) => e,
        Ok(_) => panic!("flipped bit must not replay"),
    };
    assert!(
        matches!(err, StoreError::CrcMismatch { .. } | StoreError::Schema(_) | StoreError::Codec(_)),
        "unexpected error {err}"
    );
    let _ = std::fs::remove_file(&log);
}
