//! The surge-avoidance strategy (§6, Figs. 23–24).
//!
//! Since short-term surge cannot be forecast, the paper proposes
//! exploiting *current* cross-area price differences: if an adjacent surge
//! area has a lower multiplier `m_a < m_0` and the walk there takes no
//! longer than that area's EWT (`w_a ≤ e_a`), the rider can reserve a car
//! in the adjacent area immediately and walk to the pickup point before
//! it arrives — paying `m_a` instead of `m_0`.
//!
//! The evaluator replays a campaign's per-area API series against each
//! client position: API data only (multipliers change on the 5-minute
//! clock and carry no jitter), walking at 83 m/min.

use crate::observe::ClientSpec;
use surgescope_city::CityModel;
use surgescope_geo::{Meters, WALKING_SPEED_M_PER_MIN};

/// One client's §6 evaluation.
#[derive(Debug, Clone)]
pub struct ClientAvoidance {
    /// Client index.
    pub client: usize,
    /// Intervals where the client's own area surged (m0 > 1).
    pub surged_intervals: usize,
    /// Of those, intervals where walking beat the local price.
    pub beatable: usize,
    /// Multiplier reductions achieved (one per beatable interval,
    /// choosing the cheapest qualifying adjacent area).
    pub savings: Vec<f64>,
    /// Walking times (minutes) for the chosen areas.
    pub walk_minutes: Vec<f64>,
}

impl ClientAvoidance {
    /// Fraction of surged intervals the strategy could beat.
    pub fn success_fraction(&self) -> f64 {
        if self.surged_intervals == 0 {
            return 0.0;
        }
        self.beatable as f64 / self.surged_intervals as f64
    }
}

/// Walking time from a point to the nearest edge of an area polygon, plus
/// a fixed 30 m inset so the pickup is unambiguously inside the area.
pub fn walk_minutes_to_area(city: &CityModel, from: Meters, area: usize) -> f64 {
    let poly = &city.areas[area].polygon;
    let d = if poly.contains(from) { 0.0 } else { poly.distance_to_boundary(from) + 30.0 };
    d / WALKING_SPEED_M_PER_MIN
}

/// Evaluates the strategy for every client against per-area interval
/// series of multipliers (`api_surge[area][interval]`) and EWTs
/// (`api_ewt[area][interval]`, minutes).
pub fn evaluate(
    city: &CityModel,
    clients: &[ClientSpec],
    client_area: &[Option<usize>],
    api_surge: &[Vec<f32>],
    api_ewt: &[Vec<f32>],
) -> Vec<ClientAvoidance> {
    let intervals = api_surge.first().map_or(0, Vec::len);
    clients
        .iter()
        .enumerate()
        .map(|(ci, spec)| {
            let mut out = ClientAvoidance {
                client: ci,
                surged_intervals: 0,
                beatable: 0,
                savings: Vec::new(),
                walk_minutes: Vec::new(),
            };
            let Some(home) = client_area[ci] else { return out };
            for iv in 0..intervals {
                let m0 = api_surge[home][iv] as f64;
                if m0 <= 1.0 {
                    continue;
                }
                out.surged_intervals += 1;
                // Cheapest adjacent area reachable within its EWT.
                let mut best: Option<(f64, f64)> = None; // (multiplier, walk)
                for n in &city.adjacency[home] {
                    let a = n.0;
                    let ma = api_surge[a][iv] as f64;
                    if ma >= m0 {
                        continue;
                    }
                    let walk = walk_minutes_to_area(city, spec.position, a);
                    let ewt = api_ewt[a][iv] as f64;
                    if walk <= ewt && best.map_or(true, |(bm, _)| ma < bm) {
                        best = Some((ma, walk));
                    }
                }
                if let Some((ma, walk)) = best {
                    out.beatable += 1;
                    out.savings.push(m0 - ma);
                    out.walk_minutes.push(walk);
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::placement;

    fn setup() -> (CityModel, Vec<ClientSpec>, Vec<Option<usize>>) {
        let city = CityModel::manhattan_midtown();
        let clients = placement(&city.measurement_region, city.client_spacing_m);
        let areas: Vec<Option<usize>> =
            clients.iter().map(|c| city.area_of(c.position).map(|a| a.0)).collect();
        (city, clients, areas)
    }

    #[test]
    fn walk_time_zero_inside_area() {
        let (city, clients, areas) = setup();
        let ci = 0;
        let home = areas[ci].unwrap();
        assert_eq!(walk_minutes_to_area(&city, clients[ci].position, home), 0.0);
    }

    #[test]
    fn walk_time_positive_to_other_area() {
        let (city, clients, areas) = setup();
        let home = areas[0].unwrap();
        let other = city.adjacency[home][0].0;
        let w = walk_minutes_to_area(&city, clients[0].position, other);
        assert!(w > 0.0 && w < 60.0, "walk {w} minutes");
    }

    #[test]
    fn strategy_wins_when_neighbour_cheaper_and_close() {
        let (city, clients, areas) = setup();
        let n_areas = city.area_count();
        // Area of client 0 surges at 2.0 every interval; its neighbours
        // stay at 1.0 with generous EWTs.
        let home = areas[0].unwrap();
        let mut api_surge = vec![vec![1.0f32; 10]; n_areas];
        api_surge[home] = vec![2.0; 10];
        let api_ewt = vec![vec![30.0f32; 10]; n_areas];
        let result = evaluate(&city, &clients, &areas, &api_surge, &api_ewt);
        let r0 = &result[0];
        assert_eq!(r0.surged_intervals, 10);
        assert_eq!(r0.beatable, 10);
        assert!((r0.success_fraction() - 1.0).abs() < 1e-12);
        assert!(r0.savings.iter().all(|&s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn strategy_fails_when_walk_exceeds_ewt() {
        let (city, clients, areas) = setup();
        let n_areas = city.area_count();
        let home = areas[0].unwrap();
        let mut api_surge = vec![vec![1.0f32; 5]; n_areas];
        api_surge[home] = vec![2.0; 5];
        // EWT of 0.1 min: nobody can walk anywhere that fast.
        let api_ewt = vec![vec![0.1f32; 5]; n_areas];
        let result = evaluate(&city, &clients, &areas, &api_surge, &api_ewt);
        assert_eq!(result[0].beatable, 0);
        assert_eq!(result[0].success_fraction(), 0.0);
    }

    #[test]
    fn strategy_no_op_when_everywhere_surges_equally() {
        let (city, clients, areas) = setup();
        let n_areas = city.area_count();
        let api_surge = vec![vec![1.5f32; 5]; n_areas];
        let api_ewt = vec![vec![30.0f32; 5]; n_areas];
        let result = evaluate(&city, &clients, &areas, &api_surge, &api_ewt);
        for r in &result {
            assert_eq!(r.surged_intervals, 5);
            assert_eq!(r.beatable, 0, "no cheaper neighbour exists");
        }
    }

    #[test]
    fn chooses_cheapest_qualifying_neighbour() {
        let (city, clients, areas) = setup();
        let n_areas = city.area_count();
        let home = areas[0].unwrap();
        let neighbours = &city.adjacency[home];
        assert!(neighbours.len() >= 2, "test needs two neighbours");
        let mut api_surge = vec![vec![1.0f32; 1]; n_areas];
        api_surge[home] = vec![3.0];
        api_surge[neighbours[0].0] = vec![1.5];
        api_surge[neighbours[1].0] = vec![1.2];
        let api_ewt = vec![vec![60.0f32; 1]; n_areas];
        let result = evaluate(&city, &clients, &areas, &api_surge, &api_ewt);
        assert_eq!(result[0].beatable, 1);
        assert!((result[0].savings[0] - 1.8).abs() < 1e-6, "should pick the 1.2 area");
    }
}
