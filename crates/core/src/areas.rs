//! Surge-area inference (§5.3, Figs. 18–19).
//!
//! The paper probes the API over a lattice of locations for days, then
//! "look[s] for clusters of adjacent locations that always had equal
//! surge multipliers". Here that is: build the probe lattice, collect a
//! per-probe multiplier series (the experiment harness does the
//! collection), union-find adjacent probes with identical series, and —
//! something the paper could not do — score the recovered partition
//! against the simulator's ground-truth areas.

use surgescope_analysis::UnionFind;
use surgescope_city::CityModel;
use surgescope_geo::{grid, Meters, Polygon};

/// A recovered partition of the probe lattice.
#[derive(Debug, Clone)]
pub struct AreaInference {
    /// Probe positions.
    pub probes: Vec<Meters>,
    /// Cluster label per probe (dense, 0-based, in first-seen order).
    pub assignment: Vec<usize>,
    /// Number of clusters found.
    pub clusters: usize,
}

/// Builds the probe lattice over a region.
pub fn probe_lattice(region: &Polygon, spacing_m: f64) -> Vec<Meters> {
    grid::cover_polygon(region, spacing_m)
        .into_iter()
        .map(|s| s.position)
        .collect()
}

/// Clusters probes whose multiplier series are identical, merging only
/// *adjacent* probes (within `adjacency_dist_m`). Identical but
/// non-adjacent probes stay separate — matching the paper, which found
/// spatially contiguous areas.
pub fn infer_areas(
    probes: &[Meters],
    series: &[Vec<f32>],
    adjacency_dist_m: f64,
) -> AreaInference {
    infer_areas_tolerant(probes, series, adjacency_dist_m, 0.0)
}

/// Like [`infer_areas`], but merges adjacent probes whose series agree in
/// all but a `mismatch_tolerance` fraction of intervals. Probing through
/// a jittery client stream (rather than the clean API) leaves a few
/// stale samples per series; exact lock-step would then shatter every
/// area into singletons, while a small tolerance (≈1–2%) recovers them.
pub fn infer_areas_tolerant(
    probes: &[Meters],
    series: &[Vec<f32>],
    adjacency_dist_m: f64,
    mismatch_tolerance: f64,
) -> AreaInference {
    assert_eq!(probes.len(), series.len(), "one series per probe");
    assert!((0.0..1.0).contains(&mismatch_tolerance), "tolerance in [0,1)");
    let n = probes.len();
    let mut uf = UnionFind::new(n);
    let d2 = adjacency_dist_m * adjacency_dist_m;
    let in_lockstep = |a: &[f32], b: &[f32]| -> bool {
        if a.len() != b.len() || a.is_empty() {
            return false;
        }
        if mismatch_tolerance == 0.0 {
            return a == b;
        }
        let mismatches = a.iter().zip(b).filter(|(x, y)| x != y).count();
        (mismatches as f64) <= mismatch_tolerance * a.len() as f64
    };
    for i in 0..n {
        for j in (i + 1)..n {
            if probes[i].dist2(probes[j]) <= d2 && in_lockstep(&series[i], &series[j]) {
                uf.union(i, j);
            }
        }
    }
    let groups = uf.groups();
    let mut assignment = vec![0usize; n];
    for (label, group) in groups.iter().enumerate() {
        for &i in group {
            assignment[i] = label;
        }
    }
    AreaInference { probes: probes.to_vec(), assignment, clusters: groups.len() }
}

/// Scores an inference against the city's ground-truth partition with the
/// Rand index: the fraction of probe pairs on which the two partitions
/// agree (together in both, or apart in both). 1.0 = exact recovery.
pub fn rand_index(city: &CityModel, inference: &AreaInference) -> f64 {
    let truth: Vec<Option<usize>> = inference
        .probes
        .iter()
        .map(|p| city.area_of(*p).map(|a| a.0))
        .collect();
    let n = inference.probes.len();
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let (Some(ti), Some(tj)) = (truth[i], truth[j]) else { continue };
            total += 1;
            let same_truth = ti == tj;
            let same_inferred = inference.assignment[i] == inference.assignment[j];
            if same_truth == same_inferred {
                agree += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic series: two ground-truth halves with different streams.
    fn synthetic(probes: &[Meters], split_x: f64) -> Vec<Vec<f32>> {
        probes
            .iter()
            .map(|p| {
                if p.x < split_x {
                    vec![1.0, 1.5, 1.0, 2.0]
                } else {
                    vec![1.0, 1.0, 1.3, 2.0]
                }
            })
            .collect()
    }

    #[test]
    fn lattice_covers_region() {
        let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(1000.0, 500.0));
        let probes = probe_lattice(&region, 250.0);
        assert!(!probes.is_empty());
        assert!(probes.iter().all(|p| region.contains(*p)));
    }

    #[test]
    fn recovers_two_halves() {
        let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(1000.0, 400.0));
        let probes = probe_lattice(&region, 200.0);
        let series = synthetic(&probes, 500.0);
        let inf = infer_areas(&probes, &series, 300.0);
        assert_eq!(inf.clusters, 2, "expected the two halves");
        // All probes left of the split share a label.
        let left_label = inf.assignment[probes.iter().position(|p| p.x < 500.0).unwrap()];
        for (p, &a) in probes.iter().zip(&inf.assignment) {
            if p.x < 500.0 {
                assert_eq!(a, left_label);
            } else {
                assert_ne!(a, left_label);
            }
        }
    }

    #[test]
    fn non_adjacent_identical_series_stay_apart() {
        // Three probes in a row; outer two share a series but are not
        // adjacent (middle differs): they must remain distinct clusters.
        let probes = vec![
            Meters::new(0.0, 0.0),
            Meters::new(200.0, 0.0),
            Meters::new(400.0, 0.0),
        ];
        let series = vec![
            vec![1.0f32, 1.5],
            vec![1.0, 1.0],
            vec![1.0, 1.5],
        ];
        let inf = infer_areas(&probes, &series, 250.0);
        assert_eq!(inf.clusters, 3);
        assert_ne!(inf.assignment[0], inf.assignment[2]);
    }

    #[test]
    fn rand_index_perfect_and_degraded() {
        let city = surgescope_city::CityModel::manhattan_midtown();
        let probes = probe_lattice(&city.measurement_region, 300.0);
        // Perfect: assign by ground truth.
        let perfect = AreaInference {
            probes: probes.clone(),
            assignment: probes
                .iter()
                .map(|p| city.area_of(*p).map(|a| a.0).unwrap_or(0))
                .collect(),
            clusters: 4,
        };
        assert!((rand_index(&city, &perfect) - 1.0).abs() < 1e-12);
        // Degenerate: everything in one cluster scores below perfect.
        let lumped = AreaInference {
            probes: probes.clone(),
            assignment: vec![0; probes.len()],
            clusters: 1,
        };
        assert!(rand_index(&city, &lumped) < 0.9);
    }

    #[test]
    fn tolerant_clustering_survives_sample_noise() {
        let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(1000.0, 400.0));
        let probes = probe_lattice(&region, 200.0);
        let mut series = synthetic(&probes, 500.0);
        // Corrupt one sample in one probe (a stale jitter reading).
        series[0][1] = 9.9;
        let strict = infer_areas(&probes, &series, 300.0);
        let tolerant = infer_areas_tolerant(&probes, &series, 300.0, 0.3);
        assert!(
            strict.clusters > 2,
            "strict lock-step should shatter on noise, got {}",
            strict.clusters
        );
        assert_eq!(tolerant.clusters, 2, "tolerant clustering should recover both halves");
    }

    #[test]
    #[should_panic(expected = "one series per probe")]
    fn mismatched_lengths_panic() {
        let probes = vec![Meters::new(0.0, 0.0)];
        let _ = infer_areas(&probes, &[], 100.0);
    }
}
