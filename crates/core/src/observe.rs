//! Observation records: what one emulated client sees in one ping.

use serde::{Deserialize, Serialize};
use surgescope_api::PingClientResponse;
use surgescope_city::CarType;
use surgescope_geo::{LocalProjection, Meters};
use surgescope_simcore::SimTime;

/// A client slot in the measurement fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Account/identity key (drives jitter identity and rate limiting).
    pub key: u64,
    /// Fixed position in the city's planar frame.
    pub position: Meters,
}

/// One car as observed by a client (already projected into planar space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedCar {
    /// The randomized session ID the protocol exposes.
    pub id: u64,
    /// Reported position.
    pub position: Meters,
    /// Net displacement over the car's reported path vector, if the path
    /// had at least two points — the input to the edge filter.
    pub displacement: Option<Meters>,
}

/// One tier's worth of a ping response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeObservation {
    /// Tier.
    pub car_type: CarType,
    /// Nearest cars (≤ 8).
    pub cars: Vec<ObservedCar>,
    /// Estimated wait time, minutes.
    pub ewt_min: f64,
    /// Surge multiplier shown to this client.
    pub surge: f64,
}

/// A full ping observation from one client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingObservation {
    /// When the ping happened.
    pub at: SimTime,
    /// Index of the client in the fleet.
    pub client: usize,
    /// Per-tier blocks.
    pub types: Vec<TypeObservation>,
}

impl PingObservation {
    /// The block for one tier, if present.
    pub fn of_type(&self, t: CarType) -> Option<&TypeObservation> {
        self.types.iter().find(|b| b.car_type == t)
    }
}

/// Converts a full `pingClient` wire response into the per-tier blocks a
/// measurement client records: positions projected into the city's planar
/// frame, path vectors reduced to their net displacement. This is the
/// honest client-side pipeline — the in-process fan-out's snapshot
/// shortcut is regression-locked byte-identical to it, and the remote
/// (socket) client uses it directly.
pub fn response_to_observations(
    resp: &PingClientResponse,
    proj: &LocalProjection,
) -> Vec<TypeObservation> {
    resp.statuses
        .iter()
        .map(|s| TypeObservation {
            car_type: s.car_type,
            cars: s
                .cars
                .iter()
                .map(|ci| ObservedCar {
                    id: ci.id,
                    position: proj.to_meters(ci.position),
                    displacement: ci.path.displacement(proj),
                })
                .collect(),
            ewt_min: s.ewt_min,
            surge: s.surge,
        })
        .collect()
}

/// The last block of tier `t` in arrival order — what the client app
/// displays at the end of a tick. Blocks are ordered by arrival (fresh
/// response first, then transport-delayed responses in send order), so a
/// stale late block genuinely displaces fresh data on the display; with a
/// fault-free transport there is exactly one block per tier and this is
/// identical to a forward lookup.
pub fn latest_of_type(blocks: &[TypeObservation], t: CarType) -> Option<&TypeObservation> {
    blocks.iter().rev().find(|b| b.car_type == t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_type_lookup() {
        let obs = PingObservation {
            at: SimTime(5),
            client: 2,
            types: vec![TypeObservation {
                car_type: CarType::UberX,
                cars: vec![],
                ewt_min: 3.0,
                surge: 1.2,
            }],
        };
        assert_eq!(obs.of_type(CarType::UberX).unwrap().surge, 1.2);
        assert!(obs.of_type(CarType::UberPool).is_none());
    }

    #[test]
    fn latest_of_type_prefers_last_arrival() {
        let block = |surge: f64| TypeObservation {
            car_type: CarType::UberX,
            cars: vec![],
            ewt_min: 0.0,
            surge,
        };
        // Fresh 2.0× first, then a stale delayed 1.5× arrives — the
        // display ends the tick showing the stale value.
        let blocks = vec![block(2.0), block(1.5)];
        assert_eq!(latest_of_type(&blocks, CarType::UberX).unwrap().surge, 1.5);
        assert!(latest_of_type(&blocks, CarType::UberPool).is_none());
        assert!(latest_of_type(&[], CarType::UberX).is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let obs = PingObservation {
            at: SimTime(10),
            client: 0,
            types: vec![TypeObservation {
                car_type: CarType::UberBlack,
                cars: vec![ObservedCar {
                    id: 7,
                    position: Meters::new(1.0, 2.0),
                    displacement: Some(Meters::new(10.0, 0.0)),
                }],
                ewt_min: 5.5,
                surge: 1.0,
            }],
        };
        let json = serde_json::to_string(&obs).unwrap();
        assert_eq!(serde_json::from_str::<PingObservation>(&json).unwrap(), obs);
    }
}
