//! Adapters between the measurement fleet and the systems it can measure.
//!
//! The methodology is system-agnostic: §3.5 validates the *same* client
//! logic against a taxi replay before trusting its Uber numbers. The
//! [`MeasuredSystem`] trait captures the minimal contract (advance one
//! 5-second tick; answer a batch of client pings), with implementations
//! for the simulated marketplace ([`UberSystem`]) and the taxi replay
//! ([`TaxiSystem`]).

use crate::observe::{ClientSpec, ObservedCar, TypeObservation};
use std::sync::{mpsc, Arc};
use surgescope_api::{ApiService, PingConfig, PingScratch, WorldSnapshot, NEAREST_CARS_SHOWN};
use surgescope_city::CarType;
use surgescope_geo::{LocalProjection, Meters};
use surgescope_marketplace::Marketplace;
use surgescope_obs::{Counter, MetricsRegistry, Timer};
use surgescope_simcore::{ticks_late, FaultOutcome, FaultPlan, SimRng, SimTime, Transport};
use surgescope_taxi::{TaxiReplay, TaxiTrace};

/// Telemetry handles owned by an [`UberSystem`]: fault-outcome counters
/// for the ping fan-out plus wall-clock timers for snapshot capture and
/// the ping pipeline. Counter totals come from the serial fault pre-pass,
/// so they are identical at any `parallelism`; the timers land in the
/// snapshot's timing section.
#[derive(Debug, Clone, Default)]
pub struct SystemMetrics {
    /// Pings whose response reached the client within its send tick.
    pub pings_delivered: Counter,
    /// Pings answered but parked in the transport queue (`Delay` faults).
    pub pings_delayed: Counter,
    /// Pings lost outright (`Drop` faults).
    pub pings_dropped: Counter,
    /// Wall clock spent (re)capturing the per-tick world snapshot.
    pub capture: Timer,
    /// Wall clock spent in `ping_all_into` (fault draws, fan-out, merge).
    pub ping: Timer,
}

/// Anything the client fleet can measure.
pub trait MeasuredSystem {
    /// Advances the system by one 5-second tick.
    fn advance_tick(&mut self);

    /// Current system time.
    fn now(&self) -> SimTime;

    /// Answers one ping per client, in order. Positions are planar.
    ///
    /// `out` is resized to `clients.len()` and overwritten slot by slot;
    /// passing last tick's buffer back in lets implementations reuse the
    /// per-client block and car vectors instead of reallocating them
    /// every tick. The contents are byte-identical to a fresh buffer.
    fn ping_all_into(&mut self, clients: &[ClientSpec], out: &mut Vec<Vec<TypeObservation>>);

    /// Allocating convenience wrapper around [`Self::ping_all_into`].
    fn ping_all(&mut self, clients: &[ClientSpec]) -> Vec<Vec<TypeObservation>> {
        let mut out = Vec::new();
        self.ping_all_into(clients, &mut out);
        out
    }
}

/// The simulated ride-sharing marketplace behind its protocol layer.
pub struct UberSystem {
    /// The world. Public so experiments can consult ground truth after a
    /// campaign (the paper could not; we can score ourselves).
    pub marketplace: Marketplace,
    /// The protocol endpoint used by the fleet.
    pub api: ApiService,
    /// Transport fault injection between clients and the service
    /// (smoltcp-style; [`FaultPlan::none`] by default). A dropped ping
    /// yields no observation blocks for that client this tick, ever; a
    /// delayed ping is answered against the send-time snapshot and parked
    /// in [`UberSystem::transport`] until its delivery tick.
    faults: FaultPlan,
    fault_rng: SimRng,
    /// In-flight delayed responses, keyed by delivery tick. Drained at the
    /// top of every `ping_all`; late arrivals append to the destination
    /// client's observation vector in `(sent_tick, client)` order.
    transport: Transport<Vec<TypeObservation>>,
    /// Worker threads for the per-client fan-out in `ping_all`; 1 means
    /// fully serial. Any value produces bit-identical observations: fault
    /// draws happen on a serial pre-pass, each ping is a pure function
    /// of the tick snapshot written back by client index, and the
    /// transport queue is fed and drained serially in client order.
    parallelism: usize,
    /// The fan-out worker pool, created lazily on the first parallel
    /// `ping_all` and reused for the rest of the campaign (previously a
    /// fresh `thread::scope` spawned `parallelism` OS threads per tick).
    pool: Option<PingPool>,
    /// Snapshot taken this tick, shared between `ping_all` and any
    /// same-tick probes (campaign estimates, experiment price probes).
    /// Invalidated at the top of `advance_tick`.
    last_snap: Option<Arc<WorldSnapshot>>,
    /// The snapshot arena: last tick's snapshot shell, reclaimed once its
    /// refcount drops back to 1, with car handles released but every
    /// buffer held at capacity. `tick_snapshot` re-captures into it, so
    /// steady-state snapshot construction performs zero heap allocation
    /// (including the `Arc` box itself).
    arena: Option<Arc<WorldSnapshot>>,
    /// Query scratch for the serial ping path (pool workers own theirs).
    scratch: PingScratch,
    /// Reused fault-outcome buffer for the serial pre-pass.
    outcomes: Vec<FaultOutcome>,
    /// Retired observation blocks. A tier that drops out of the snapshot
    /// (zero visible cars) shrinks every client's block list; parking the
    /// surplus blocks here — `cars` capacity intact — and reclaiming them
    /// when the tier returns keeps the serial ping path allocation-free
    /// across tier-count fluctuations, not just in the strict steady
    /// state.
    spare_blocks: Vec<TypeObservation>,
    /// Fan-out telemetry (fault-outcome counters + capture/ping timers).
    metrics: SystemMetrics,
}

/// One chunk of a tick's fan-out, shipped to a pool worker.
struct PingJob {
    snap: Arc<WorldSnapshot>,
    ping: PingConfig,
    proj: LocalProjection,
    clients: Arc<Vec<ClientSpec>>,
    outcomes: Arc<Vec<FaultOutcome>>,
    /// Client range `start..end` this job covers.
    start: usize,
    end: usize,
    /// Chunk ordinal — results are written back at
    /// `chunk * chunk_size + offset`, so arrival order is irrelevant.
    chunk: usize,
}

/// A persistent worker pool for the per-client ping fan-out. Workers idle
/// on their job channels between ticks; dropping the pool closes the
/// channels and joins every thread.
struct PingPool {
    job_txs: Vec<mpsc::Sender<PingJob>>,
    result_rx: mpsc::Receiver<(usize, Vec<Vec<TypeObservation>>)>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PingPool {
    fn new(threads: usize) -> Self {
        let (result_tx, result_rx) = mpsc::channel();
        let mut job_txs = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (job_tx, job_rx) = mpsc::channel::<PingJob>();
            let result_tx = result_tx.clone();
            workers.push(std::thread::spawn(move || {
                // Per-worker scratch: every ping on this thread reuses
                // the same candidate and index buffers.
                let mut scratch = PingScratch::new();
                for job in job_rx {
                    let mut out = Vec::with_capacity(job.end - job.start);
                    for (c, &oc) in job.clients[job.start..job.end]
                        .iter()
                        .zip(&job.outcomes[job.start..job.end])
                    {
                        out.push(ping_one(&job.ping, &job.snap, &job.proj, c, oc, &mut scratch));
                    }
                    if result_tx.send((job.chunk, out)).is_err() {
                        return;
                    }
                }
            }));
            job_txs.push(job_tx);
        }
        PingPool { job_txs, result_rx, workers }
    }

    fn threads(&self) -> usize {
        self.job_txs.len()
    }

    /// Fans `clients` out over the workers in contiguous chunks and
    /// reassembles the answers in client order — every byte of the result
    /// matches the serial path regardless of scheduling.
    fn run(
        &self,
        snap: &Arc<WorldSnapshot>,
        ping: PingConfig,
        proj: LocalProjection,
        clients: &[ClientSpec],
        outcomes: &[FaultOutcome],
    ) -> Vec<Vec<TypeObservation>> {
        let n = clients.len();
        let chunk_size = n.div_ceil(self.threads());
        let clients = Arc::new(clients.to_vec());
        let outcomes = Arc::new(outcomes.to_vec());
        let mut chunks = 0;
        for (i, start) in (0..n).step_by(chunk_size).enumerate() {
            let job = PingJob {
                snap: Arc::clone(snap),
                // Arc-handle bump (shared jitter counter), not a deep copy.
                ping: ping.clone(),
                proj,
                clients: Arc::clone(&clients),
                outcomes: Arc::clone(&outcomes),
                start,
                end: (start + chunk_size).min(n),
                chunk: i,
            };
            self.job_txs[i].send(job).expect("ping worker exited");
            chunks += 1;
        }
        let mut answered: Vec<Vec<TypeObservation>> = Vec::new();
        answered.resize_with(n, Vec::new);
        for _ in 0..chunks {
            let (chunk, results) = self.result_rx.recv().expect("ping worker exited");
            for (j, r) in results.into_iter().enumerate() {
                answered[chunk * chunk_size + j] = r;
            }
        }
        answered
    }
}

impl Drop for PingPool {
    fn drop(&mut self) {
        self.job_txs.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl UberSystem {
    /// Couples a marketplace with a protocol endpoint. The fault RNG is
    /// derived from the marketplace's root seed (formerly a hardcoded
    /// constant, which made every campaign share one fault pattern).
    pub fn new(marketplace: Marketplace, api: ApiService) -> Self {
        let fault_rng =
            SimRng::seed_from_u64(marketplace.seed()).split("transport-faults");
        UberSystem {
            marketplace,
            api,
            faults: FaultPlan::none(),
            fault_rng,
            transport: Transport::new(),
            parallelism: 1,
            pool: None,
            last_snap: None,
            arena: None,
            scratch: PingScratch::new(),
            outcomes: Vec::new(),
            spare_blocks: Vec::new(),
            metrics: SystemMetrics::default(),
        }
    }

    /// This system's own telemetry handles.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// Registers every instrument this system (and its layers) owns into
    /// `reg` under stable names. Call after construction is complete —
    /// in particular after any [`UberSystem::set_transport`] /
    /// [`ApiService::set_limiter`] restore calls, which install fresh
    /// counter cells.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        reg.adopt_counter("pings.delivered", &self.metrics.pings_delivered);
        reg.adopt_counter("pings.delayed", &self.metrics.pings_delayed);
        reg.adopt_counter("pings.dropped", &self.metrics.pings_dropped);
        reg.adopt_timer("phase.capture", &self.metrics.capture);
        reg.adopt_timer("phase.ping", &self.metrics.ping);
        self.marketplace.tick_timers().register(reg);
        self.transport.metrics().register(reg);
        reg.adopt_counter("api.rate_limited", self.api.limiter().throttled());
        reg.adopt_counter("api.jitter_window_hits", self.api.jitter_hits());
    }

    /// The world snapshot for the current tick, captured on first use and
    /// shared (via `Arc`) by every consumer until the next `advance_tick`
    /// — `ping_all` and same-tick probes see literally the same object.
    pub fn tick_snapshot(&mut self) -> Arc<WorldSnapshot> {
        if self.last_snap.is_none() {
            let _span = self.metrics.capture.start();
            let snap = match self.arena.take() {
                // Steady state: re-capture into the reclaimed shell —
                // tier buckets, grid slabs and the Arc box all reused.
                Some(mut arc) => {
                    Arc::get_mut(&mut arc)
                        .expect("arena snapshot is uniquely owned")
                        .capture(&self.marketplace);
                    arc
                }
                None => Arc::new(WorldSnapshot::of(&self.marketplace)),
            };
            self.last_snap = Some(snap);
        }
        Arc::clone(self.last_snap.as_ref().expect("just populated"))
    }

    /// Enables transport fault injection on client pings. Panics on an
    /// invalid plan (probabilities outside `[0, 1]` or NaN) — this is the
    /// boundary where struct-literal plans enter the system.
    pub fn with_faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.faults = plan.validated();
        self.fault_rng = SimRng::seed_from_u64(seed).split("transport-faults");
        self
    }

    /// Number of delayed responses currently in flight (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.transport.in_flight()
    }

    /// Sets the `ping_all` worker-thread count (clamped to at least 1).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    fn projection(&self) -> LocalProjection {
        self.marketplace.city().projection
    }

    /// Fault plan in force (checkpoint access).
    pub fn faults(&self) -> FaultPlan {
        self.faults
    }

    /// Transport fault RNG (checkpoint access).
    pub fn fault_rng(&self) -> &SimRng {
        &self.fault_rng
    }

    /// Restores the fault RNG mid-stream (checkpoint resume).
    pub fn set_fault_rng(&mut self, rng: SimRng) {
        self.fault_rng = rng;
    }

    /// In-flight delayed responses (checkpoint access).
    pub fn transport(&self) -> &Transport<Vec<TypeObservation>> {
        &self.transport
    }

    /// Restores the in-flight queue (checkpoint resume).
    pub fn set_transport(&mut self, transport: Transport<Vec<TypeObservation>>) {
        self.transport = transport;
    }
}

/// Answers (or drops) one client's ping against the tick snapshot. Pure
/// apart from `scratch` reuse: the serial path and every pool worker run
/// exactly this function, and its observations are byte-identical to
/// converting a full `ping_client` wire response (regression-tested) —
/// it just skips materializing the response, rendering observations
/// straight from the snapshot via the fused per-tier kernel.
fn ping_one(
    ping: &PingConfig,
    snap: &WorldSnapshot,
    proj: &LocalProjection,
    c: &ClientSpec,
    outcome: FaultOutcome,
    scratch: &mut PingScratch,
) -> Vec<TypeObservation> {
    let mut out = Vec::new();
    ping_one_into(ping, snap, proj, c, outcome, scratch, &mut Vec::new(), &mut out);
    out
}

/// In-place variant of [`ping_one`]: overwrites `out` block by block,
/// reusing its per-tier `cars` vectors. Clients see the same tier list
/// every tick, so in steady state nothing here allocates; when the tier
/// count shrinks the surplus blocks retire into `spare`, and a growing
/// tier count reclaims from it before allocating.
#[allow(clippy::too_many_arguments)]
fn ping_one_into(
    ping: &PingConfig,
    snap: &WorldSnapshot,
    proj: &LocalProjection,
    c: &ClientSpec,
    outcome: FaultOutcome,
    scratch: &mut PingScratch,
    spare: &mut Vec<TypeObservation>,
    out: &mut Vec<TypeObservation>,
) {
    let mut n = 0;
    if outcome != FaultOutcome::Drop {
        // Delivered now or later, the answer is frozen against the
        // send-time snapshot — a delayed response carries stale data.
        // (A dropped ping is never answered: nothing to compute.)
        let loc = proj.to_latlng(c.position);
        ping.ping_visit(snap, c.key, loc, scratch, |tier| {
            if n == out.len() {
                out.push(spare.pop().unwrap_or_else(|| TypeObservation {
                    car_type: tier.car_type,
                    // Full capacity up front: a tier shows at most
                    // NEAREST_CARS_SHOWN cars, so this vector never
                    // grows again even as the local fleet fills in.
                    cars: Vec::with_capacity(NEAREST_CARS_SHOWN),
                    ewt_min: 0.0,
                    surge: 0.0,
                }));
            }
            let block = &mut out[n];
            block.car_type = tier.car_type;
            block.ewt_min = tier.ewt_min;
            block.surge = tier.surge;
            block.cars.clear();
            block.cars.extend(tier.cars().map(|(id, position, path)| ObservedCar {
                id,
                position: proj.to_meters(position),
                displacement: path.displacement(proj),
            }));
            n += 1;
        });
    }
    while out.len() > n {
        spare.push(out.pop().expect("len > n"));
    }
}

impl MeasuredSystem for UberSystem {
    fn advance_tick(&mut self) {
        // The cached snapshot describes the outgoing tick. Reclaim its
        // shell for the arena if nothing else still holds it (true in
        // steady state: pings and probes drop their handles within the
        // tick), releasing the driver-shared path handles *before* the
        // world moves — a retained handle would turn every driver's next
        // path append into a copy-on-write clone.
        if let Some(mut arc) = self.last_snap.take() {
            if let Some(snap) = Arc::get_mut(&mut arc) {
                snap.release_cars();
                self.arena = Some(arc);
            }
        }
        self.marketplace.tick();
        self.transport.advance_tick();
    }

    fn now(&self) -> SimTime {
        self.marketplace.now()
    }

    /// Answers this tick's pings and merges in any delayed responses that
    /// are due. Per client the returned vector is ordered by *arrival*:
    /// the fresh response first (its round trip is negligible, it lands at
    /// the top of the tick), then late messages in send order — so the
    /// last block of a tier is what the client app displays at the end of
    /// the tick, and a stale response genuinely displaces fresh data on
    /// the screen, which is the §5.2 staleness channel.
    fn ping_all_into(&mut self, clients: &[ClientSpec], out: &mut Vec<Vec<TypeObservation>>) {
        let _ping_span = self.metrics.ping.start();
        let proj = self.projection();
        let snap = self.tick_snapshot();
        let tick_secs = self.marketplace.config().tick_secs;

        // Serial pre-pass: fault draws consume `fault_rng` in client order,
        // so the fault pattern is independent of the thread count. The
        // outcome buffer is reused across ticks.
        let faults = self.faults;
        let fault_rng = &mut self.fault_rng;
        self.outcomes.clear();
        self.outcomes.extend(clients.iter().map(|_| {
            if faults.is_none() {
                FaultOutcome::Deliver
            } else {
                faults.decide(fault_rng)
            }
        }));
        // Tally the draws locally, then publish in three atomic adds —
        // the counts come from the serial pre-pass, so they are the same
        // at any parallelism.
        let (mut delivered, mut delayed, mut dropped) = (0u64, 0u64, 0u64);
        for oc in &self.outcomes {
            match oc {
                FaultOutcome::Deliver => delivered += 1,
                FaultOutcome::Delay(_) => delayed += 1,
                FaultOutcome::Drop => dropped += 1,
            }
        }
        self.metrics.pings_delivered.add(delivered);
        self.metrics.pings_delayed.add(delayed);
        self.metrics.pings_dropped.add(dropped);

        let ping = self.api.ping_config();
        let threads = self.parallelism.min(clients.len().max(1)).max(1);
        out.resize_with(clients.len(), Vec::new);
        out.truncate(clients.len());
        if threads <= 1 {
            // Serial path: answer straight into the caller's slots,
            // reusing their block/car vectors tick over tick. A delayed
            // response is computed into a fresh vector (it must outlive
            // this tick inside the in-flight queue) and its slot cleared.
            let scratch = &mut self.scratch;
            let transport = &mut self.transport;
            let spare = &mut self.spare_blocks;
            let fresh = clients.iter().zip(&self.outcomes).zip(out.iter_mut());
            for (i, ((c, &oc), slot)) in fresh.enumerate() {
                match oc {
                    FaultOutcome::Deliver => {
                        ping_one_into(&ping, &snap, &proj, c, oc, scratch, spare, slot)
                    }
                    FaultOutcome::Delay(d) => {
                        spare.extend(slot.drain(..));
                        let resp = ping_one(&ping, &snap, &proj, c, oc, scratch);
                        transport.send_delayed(i, ticks_late(d, tick_secs), resp);
                    }
                    FaultOutcome::Drop => spare.extend(slot.drain(..)),
                }
            }
        } else {
            // Fan out over contiguous client chunks on the persistent
            // pool; results land by chunk index, so ordering (and every
            // byte of the result) matches the serial path.
            if self.pool.as_ref().map_or(true, |p| p.threads() != threads) {
                self.pool = Some(PingPool::new(threads));
            }
            let pool = self.pool.as_ref().expect("just populated");
            let mut answered = pool.run(&snap, ping, proj, clients, &self.outcomes);

            // Serial post-pass in client order: route each answered
            // response to its destination — now, or the in-flight queue.
            for (i, (resp, outcome)) in answered.drain(..).zip(&self.outcomes).enumerate() {
                match outcome {
                    FaultOutcome::Deliver => out[i] = resp,
                    FaultOutcome::Delay(d) => {
                        out[i].clear();
                        self.transport.send_delayed(i, ticks_late(*d, tick_secs), resp);
                    }
                    FaultOutcome::Drop => out[i].clear(),
                }
            }
        }
        // Merge late arrivals due this tick, `(sent_tick, client)` order.
        for env in self.transport.take_due() {
            if let Some(slot) = out.get_mut(env.client) {
                slot.extend(env.payload);
            }
        }
    }
}

/// The taxi replay exposed through the same contract. Taxis have a single
/// pseudo-tier ([`CarType::UberT`]), no EWT and no surge — the §3.5
/// validation only needs car identities and positions.
pub struct TaxiSystem<'a> {
    replay: TaxiReplay<'a>,
}

impl<'a> TaxiSystem<'a> {
    /// Wraps a replay of `trace`; ground truth accumulates against
    /// `region` (pass the measurement polygon).
    pub fn new(trace: &'a TaxiTrace, region: surgescope_geo::Polygon, seed: u64) -> Self {
        TaxiSystem { replay: TaxiReplay::new(trace, region, seed) }
    }

    /// Access to the replay (for ground truth after the campaign).
    pub fn replay(&self) -> &TaxiReplay<'a> {
        &self.replay
    }
}

impl MeasuredSystem for TaxiSystem<'_> {
    fn advance_tick(&mut self) {
        self.replay.tick();
    }

    fn now(&self) -> SimTime {
        self.replay.now()
    }

    fn ping_all_into(&mut self, clients: &[ClientSpec], out: &mut Vec<Vec<TypeObservation>>) {
        *out = clients
            .iter()
            .map(|c| {
                let cars = self
                    .replay
                    .nearest(c.position, NEAREST_CARS_SHOWN)
                    .into_iter()
                    .map(|t| {
                        // The taxi path stores planar metres encoded as
                        // micro-degree LatLngs; decode symmetrically.
                        let pts: Vec<Meters> = t
                            .path
                            .points()
                            .map(|ll| Meters::new(ll.lng * 1e5, ll.lat * 1e5))
                            .collect();
                        let displacement = if pts.len() >= 2 {
                            Some(pts[pts.len() - 1].sub(pts[0]))
                        } else {
                            None
                        };
                        ObservedCar { id: t.session, position: t.position, displacement }
                    })
                    .collect();
                vec![TypeObservation { car_type: CarType::UberT, cars, ewt_min: 0.0, surge: 1.0 }]
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_api::ProtocolEra;
    use surgescope_city::CityModel;
    use surgescope_marketplace::MarketplaceConfig;
    use surgescope_simcore::SimDuration;
    use surgescope_taxi::TraceGenerator;

    fn uber() -> UberSystem {
        let mut c = CityModel::manhattan_midtown();
        c.supply = c.supply.scaled(0.3);
        c.demand = c.demand.scaled(0.3);
        let mut mp = Marketplace::new(c, MarketplaceConfig::default(), 3);
        mp.run_for(SimDuration::hours(1));
        UberSystem::new(mp, ApiService::new(ProtocolEra::Feb2015, 3))
    }

    #[test]
    fn uber_ping_all_shapes() {
        let mut sys = uber();
        let center = sys.marketplace.city().measurement_region.centroid();
        let clients = vec![
            ClientSpec { key: 0, position: center },
            ClientSpec { key: 1, position: Meters::new(center.x + 300.0, center.y) },
        ];
        let obs = sys.ping_all(&clients);
        assert_eq!(obs.len(), 2);
        for per_client in &obs {
            assert!(!per_client.is_empty());
            let x = per_client.iter().find(|t| t.car_type == CarType::UberX).unwrap();
            assert!(x.cars.len() <= NEAREST_CARS_SHOWN);
            assert!(!x.cars.is_empty(), "midtown should have UberX in view");
        }
    }

    #[test]
    fn ping_all_parallel_matches_serial_with_faults() {
        use surgescope_simcore::FaultPlan;
        let run = |threads: usize| {
            let mut sys = uber()
                .with_faults(FaultPlan::lossy(0.3), 91)
                .with_parallelism(threads);
            let center = sys.marketplace.city().measurement_region.centroid();
            let clients: Vec<ClientSpec> = (0..24)
                .map(|i| ClientSpec {
                    key: i,
                    position: Meters::new(
                        center.x + 150.0 * (i % 6) as f64,
                        center.y + 150.0 * (i / 6) as f64,
                    ),
                })
                .collect();
            let mut all = Vec::new();
            for _ in 0..12 {
                all.push(sys.ping_all(&clients));
                sys.advance_tick();
            }
            all
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (tick, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            for (client, (oa, ob)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    oa, ob,
                    "tick {tick} client {client}: parallel fan-out diverged from serial"
                );
            }
        }
        // The lossy plan must actually have dropped some pings in both runs.
        assert!(
            serial.iter().flatten().any(|per_client| per_client.is_empty()),
            "fault plan never dropped a ping; test is vacuous"
        );
    }

    #[test]
    fn delayed_ping_surfaces_next_tick_with_send_time_content() {
        use surgescope_simcore::FaultPlan;
        // Twin systems over identical marketplaces: one clean, one whose
        // every ping is delayed 1..=5 s — exactly one 5-s tick late.
        let mut clean = uber();
        let mut laggy = uber().with_faults(FaultPlan::laggy(1.0, 5), 17);
        let center = clean.marketplace.city().measurement_region.centroid();
        let clients: Vec<ClientSpec> = (0..6)
            .map(|i| ClientSpec {
                key: i,
                position: Meters::new(center.x + 200.0 * (i % 3) as f64, center.y),
            })
            .collect();
        let mut clean_hist: Vec<Vec<Vec<TypeObservation>>> = Vec::new();
        for tick in 0..8 {
            let c = clean.ping_all(&clients);
            let l = laggy.ping_all(&clients);
            if tick == 0 {
                assert!(
                    l.iter().all(Vec::is_empty),
                    "a delayed response can never arrive within its send tick"
                );
                assert_eq!(laggy.in_flight(), clients.len());
            } else {
                // The delayed view equals the clean system's *previous*
                // tick — the payload was frozen at send time, not at
                // delivery time. Delay is therefore neither Drop (content
                // arrives) nor a fresh ping (content is one tick stale).
                assert_eq!(
                    &l,
                    clean_hist.last().unwrap(),
                    "tick {tick}: delayed payload must carry send-time content"
                );
            }
            clean_hist.push(c);
            clean.advance_tick();
            laggy.advance_tick();
        }
        // Nothing vanished: only the final tick's sends remain in flight.
        assert_eq!(laggy.in_flight(), clients.len());
        // Staleness is observable: the world moved between ticks, so the
        // send-time content differs from the delivery-tick truth.
        assert!(
            clean_hist.windows(2).any(|w| w[0] != w[1]),
            "world never changed between ticks; staleness assertion is vacuous"
        );
    }

    #[test]
    fn uber_advance_moves_time() {
        let mut sys = uber();
        let t0 = sys.now();
        sys.advance_tick();
        assert_eq!(sys.now(), t0 + SimDuration::secs(5));
    }

    #[test]
    fn uber_cars_have_displacement_after_settling() {
        let mut sys = uber();
        // A few ticks so path vectors fill.
        for _ in 0..5 {
            sys.advance_tick();
        }
        let center = sys.marketplace.city().measurement_region.centroid();
        let obs = sys.ping_all(&[ClientSpec { key: 0, position: center }]);
        let x = obs[0].iter().find(|t| t.car_type == CarType::UberX).unwrap();
        assert!(
            x.cars.iter().any(|c| c.displacement.is_some()),
            "settled cars should carry path displacement"
        );
    }

    #[test]
    fn taxi_system_single_pseudo_tier() {
        let city = CityModel::manhattan_midtown();
        let trace = TraceGenerator { taxis: 80, days: 1, ..Default::default() }
            .generate(&city, 5);
        let mut sys = TaxiSystem::new(&trace, city.measurement_region.clone(), 6);
        // Run to the evening peak so taxis are available.
        while sys.now() < SimTime(19 * 3600) {
            sys.advance_tick();
        }
        let center = city.measurement_region.centroid();
        let obs = sys.ping_all(&[ClientSpec { key: 0, position: center }]);
        assert_eq!(obs[0].len(), 1);
        let block = &obs[0][0];
        assert_eq!(block.car_type, CarType::UberT);
        assert!(!block.cars.is_empty(), "evening peak should show taxis");
        assert_eq!(block.surge, 1.0);
    }
}
