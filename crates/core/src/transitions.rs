//! Driver state-machine analysis (§5.5, Fig. 22).
//!
//! Cars are treated as state machines across 5-minute intervals: a car in
//! surge area *a* during interval *t* is classified relative to interval
//! *t−1* as **new** (first appearance), **old** (stayed in *a*),
//! **move-in** (came from another area), **move-out** (left to another
//! area) or **dying** (disappeared). Tallies are kept separately for
//! intervals where all areas had equal multipliers and intervals where the
//! area's multiplier was at least 0.2 above every neighbour's — the paper
//! compares the two to quantify surge's effect on supply and demand.

use serde::{Deserialize, Serialize, Value};
use surgescope_simcore::FastHashSet;
use surgescope_geo::{Meters, Polygon};

/// The five per-interval car states of Fig. 22.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarState {
    /// First appearance anywhere, in this area.
    New,
    /// Present in this area in both intervals.
    Old,
    /// Present elsewhere before, here now.
    MoveIn,
    /// Present here before, elsewhere now.
    MoveOut,
    /// Present here before, gone everywhere now.
    Dying,
}

impl CarState {
    /// All states in Fig. 22's display order.
    pub const ALL: [CarState; 5] =
        [CarState::New, CarState::Old, CarState::MoveIn, CarState::MoveOut, CarState::Dying];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CarState::New => "New",
            CarState::Old => "Old",
            CarState::MoveIn => "In",
            CarState::MoveOut => "Out",
            CarState::Dying => "Dying",
        }
    }
}

/// Surge context of an (area, interval) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurgeContext {
    /// All areas shared (≈) one multiplier: no monetary incentive to move.
    Equal,
    /// This area was ≥ 0.2 above all its neighbours.
    Surging,
    /// Anything else (ignored by the analysis).
    Mixed,
}

/// Classifies the surge context for `area` given all areas' multipliers
/// and the adjacency lists.
pub fn classify_context(
    area: usize,
    multipliers: &[f64],
    adjacency: &[Vec<usize>],
) -> SurgeContext {
    let m = multipliers[area];
    let all_equal = multipliers
        .iter()
        .all(|x| (x - multipliers[0]).abs() < 0.05);
    if all_equal {
        return SurgeContext::Equal;
    }
    let above_neighbours = adjacency[area]
        .iter()
        .all(|&n| m >= multipliers[n] + 0.2);
    if above_neighbours {
        SurgeContext::Surging
    } else {
        SurgeContext::Mixed
    }
}

/// Streaming transition tally over a campaign.
#[derive(Debug)]
pub struct TransitionTracker {
    areas: Vec<Polygon>,
    adjacency: Vec<Vec<usize>>,
    prev_sets: Vec<FastHashSet<u64>>,
    cur_sets: Vec<FastHashSet<u64>>,
    prev_multipliers: Option<Vec<f64>>,
    /// `counts[area][context][state]`, context 0 = Equal, 1 = Surging.
    counts: Vec<[[u64; 5]; 2]>,
}

impl TransitionTracker {
    /// Creates a tracker over the given area polygons and adjacency.
    pub fn new(areas: Vec<Polygon>, adjacency: Vec<Vec<usize>>) -> Self {
        assert_eq!(areas.len(), adjacency.len());
        let n = areas.len();
        TransitionTracker {
            areas,
            adjacency,
            prev_sets: vec![FastHashSet::default(); n],
            cur_sets: vec![FastHashSet::default(); n],
            prev_multipliers: None,
            counts: vec![[[0; 5]; 2]; n],
        }
    }

    /// Records a car sighting during the open interval.
    pub fn observe(&mut self, id: u64, position: Meters) {
        for (ai, poly) in self.areas.iter().enumerate() {
            if poly.contains(position) {
                self.cur_sets[ai].insert(id);
                break;
            }
        }
    }

    /// Closes an interval. `multipliers` are the values in force during
    /// the interval that just *closed*; transitions are tallied between
    /// the previous and the closed interval, conditioned on the previous
    /// interval's multipliers (matching §5.5: incentives precede moves).
    pub fn close_interval(&mut self, multipliers: &[f64]) {
        if let Some(prev_m) = &self.prev_multipliers {
            let prev_all: FastHashSet<u64> =
                self.prev_sets.iter().flat_map(|s| s.iter().copied()).collect();
            let cur_all: FastHashSet<u64> =
                self.cur_sets.iter().flat_map(|s| s.iter().copied()).collect();
            for ai in 0..self.areas.len() {
                let ctx = match classify_context(ai, prev_m, &self.adjacency) {
                    SurgeContext::Equal => 0usize,
                    SurgeContext::Surging => 1,
                    SurgeContext::Mixed => continue,
                };
                let prev_a = &self.prev_sets[ai];
                let cur_a = &self.cur_sets[ai];
                let tally = &mut self.counts[ai][ctx];
                for id in cur_a {
                    if prev_a.contains(id) {
                        tally[1] += 1; // Old
                    } else if prev_all.contains(id) {
                        tally[2] += 1; // MoveIn
                    } else {
                        tally[0] += 1; // New
                    }
                }
                for id in prev_a {
                    if !cur_a.contains(id) {
                        if cur_all.contains(id) {
                            tally[3] += 1; // MoveOut
                        } else {
                            tally[4] += 1; // Dying
                        }
                    }
                }
            }
        }
        self.prev_sets = std::mem::take(&mut self.cur_sets);
        self.cur_sets = vec![FastHashSet::default(); self.areas.len()];
        self.prev_multipliers = Some(multipliers.to_vec());
    }

    /// Probability of each state for `(area, context)`; `None` when that
    /// cell has no observations. Context: 0 = Equal, 1 = Surging.
    pub fn probabilities(&self, area: usize, context: usize) -> Option<[f64; 5]> {
        let tally = &self.counts[area][context];
        let total: u64 = tally.iter().sum();
        if total == 0 {
            return None;
        }
        let mut out = [0.0; 5];
        for (i, c) in tally.iter().enumerate() {
            out[i] = *c as f64 / total as f64;
        }
        Some(out)
    }

    /// Raw counts for `(area, context)`.
    pub fn counts(&self, area: usize, context: usize) -> [u64; 5] {
        self.counts[area][context]
    }

    /// Number of areas tracked.
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }

    /// Serializes the mutable tally state. Areas and adjacency are derived
    /// from the city model and are *not* stored; [`restore_state`] takes
    /// them as arguments (same split as `Marketplace::save_state`).
    /// ID sets are emitted sorted so the bytes are canonical.
    ///
    /// [`restore_state`]: TransitionTracker::restore_state
    pub fn save_state(&self) -> Value {
        let sets = |v: &[FastHashSet<u64>]| -> Value {
            v.iter()
                .map(|s| {
                    let mut ids: Vec<u64> = s.iter().copied().collect();
                    ids.sort_unstable();
                    ids
                })
                .collect::<Vec<_>>()
                .to_value()
        };
        Value::Map(vec![
            ("prev_sets".into(), sets(&self.prev_sets)),
            ("cur_sets".into(), sets(&self.cur_sets)),
            ("prev_multipliers".into(), self.prev_multipliers.to_value()),
            ("counts".into(), self.counts.to_value()),
        ])
    }

    /// Rebuilds a tracker from `save_state` output plus the (re-derived)
    /// areas and adjacency.
    pub fn restore_state(
        areas: Vec<Polygon>,
        adjacency: Vec<Vec<usize>>,
        v: &Value,
    ) -> Result<Self, serde::Error> {
        let mut tr = TransitionTracker::new(areas, adjacency);
        let sets = |v: &Value| -> Result<Vec<FastHashSet<u64>>, serde::Error> {
            Ok(Vec::<Vec<u64>>::from_value(v)?
                .into_iter()
                .map(|ids| ids.into_iter().collect())
                .collect())
        };
        tr.prev_sets = sets(v.field("prev_sets")?)?;
        tr.cur_sets = sets(v.field("cur_sets")?)?;
        tr.prev_multipliers = Option::<Vec<f64>>::from_value(v.field("prev_multipliers")?)?;
        tr.counts = Vec::<[[u64; 5]; 2]>::from_value(v.field("counts")?)?;
        if tr.prev_sets.len() != tr.areas.len() || tr.cur_sets.len() != tr.areas.len() {
            return Err(serde::Error::custom("transition set count mismatch"));
        }
        if tr.counts.len() != tr.areas.len() {
            return Err(serde::Error::custom("transition counts length mismatch"));
        }
        Ok(tr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_areas() -> TransitionTracker {
        let areas = vec![
            Polygon::rect(Meters::new(0.0, 0.0), Meters::new(100.0, 100.0)),
            Polygon::rect(Meters::new(100.0, 0.0), Meters::new(200.0, 100.0)),
        ];
        TransitionTracker::new(areas, vec![vec![1], vec![0]])
    }

    #[test]
    fn context_classification() {
        let adj = vec![vec![1], vec![0]];
        assert_eq!(classify_context(0, &[1.0, 1.0], &adj), SurgeContext::Equal);
        assert_eq!(classify_context(0, &[1.5, 1.2], &adj), SurgeContext::Surging);
        assert_eq!(classify_context(1, &[1.5, 1.2], &adj), SurgeContext::Mixed);
        assert_eq!(classify_context(0, &[1.3, 1.2], &adj), SurgeContext::Mixed);
    }

    #[test]
    fn transition_states_tallied() {
        let mut tr = two_areas();
        // Interval 0: cars 1, 2 in area 0; car 3 in area 1.
        tr.observe(1, Meters::new(50.0, 50.0));
        tr.observe(2, Meters::new(60.0, 50.0));
        tr.observe(3, Meters::new(150.0, 50.0));
        tr.close_interval(&[1.0, 1.0]);
        // Interval 1: car 1 stays (Old); car 2 moves to area 1 (MoveOut
        // from 0 / MoveIn to 1); car 3 vanishes (Dying in 1); car 4
        // appears in area 0 (New).
        tr.observe(1, Meters::new(55.0, 50.0));
        tr.observe(2, Meters::new(150.0, 60.0));
        tr.observe(4, Meters::new(40.0, 40.0));
        tr.close_interval(&[1.0, 1.0]);

        // Equal context, area 0: New=1 (car4), Old=1 (car1), Out=1 (car2).
        assert_eq!(tr.counts(0, 0), [1, 1, 0, 1, 0]);
        // Area 1: In=1 (car2), Dying=1 (car3).
        assert_eq!(tr.counts(1, 0), [0, 0, 1, 0, 1]);
    }

    #[test]
    fn surging_context_counted_separately() {
        let mut tr = two_areas();
        tr.observe(1, Meters::new(50.0, 50.0));
        // Area 0 surging 0.5 above area 1 during interval 0.
        tr.close_interval(&[1.5, 1.0]);
        tr.observe(1, Meters::new(50.0, 50.0));
        tr.close_interval(&[1.5, 1.0]);
        // Transition conditioned on interval 0's multipliers → surging ctx.
        assert_eq!(tr.counts(0, 1), [0, 1, 0, 0, 0], "Old under surging context");
        assert_eq!(tr.counts(0, 0), [0; 5]);
    }

    #[test]
    fn probabilities_normalize() {
        let mut tr = two_areas();
        for id in 0..10 {
            tr.observe(id, Meters::new(50.0, 50.0));
        }
        tr.close_interval(&[1.0, 1.0]);
        for id in 0..5 {
            tr.observe(id, Meters::new(50.0, 50.0));
        }
        tr.close_interval(&[1.0, 1.0]);
        let p = tr.probabilities(0, 0).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // 5 Old, 5 Dying.
        assert!((p[1] - 0.5).abs() < 1e-12);
        assert!((p[4] - 0.5).abs() < 1e-12);
        assert!(tr.probabilities(1, 1).is_none(), "empty cell");
    }

    #[test]
    fn save_restore_continues_identically() {
        let mut a = two_areas();
        // One closed interval plus a half-open one so both prev and cur
        // sets are non-empty at checkpoint time.
        a.observe(1, Meters::new(50.0, 50.0));
        a.observe(2, Meters::new(150.0, 50.0));
        a.close_interval(&[1.5, 1.0]);
        a.observe(1, Meters::new(55.0, 50.0));
        a.observe(3, Meters::new(150.0, 60.0));

        let v = a.save_state();
        let mut b = {
            let areas = vec![
                Polygon::rect(Meters::new(0.0, 0.0), Meters::new(100.0, 100.0)),
                Polygon::rect(Meters::new(100.0, 0.0), Meters::new(200.0, 100.0)),
            ];
            TransitionTracker::restore_state(areas, vec![vec![1], vec![0]], &v).unwrap()
        };
        assert_eq!(b.save_state(), v, "canonical round trip");

        for tr in [&mut a, &mut b] {
            tr.close_interval(&[1.5, 1.0]);
            tr.observe(1, Meters::new(150.0, 50.0));
            tr.close_interval(&[1.0, 1.0]);
        }
        for area in 0..2 {
            for ctx in 0..2 {
                assert_eq!(a.counts(area, ctx), b.counts(area, ctx));
            }
        }
        assert_eq!(a.save_state(), b.save_state());
    }

    #[test]
    fn first_interval_produces_no_transitions() {
        let mut tr = two_areas();
        tr.observe(1, Meters::new(50.0, 50.0));
        tr.close_interval(&[1.0, 1.0]);
        assert_eq!(tr.counts(0, 0), [0; 5], "no previous interval to compare");
    }
}
