//! The measurement and audit toolkit — the paper's contribution.
//!
//! This crate implements the methodology of *Peeking Beneath the Hood of
//! Uber* (IMC 2015) against any [`MeasuredSystem`] (the simulated
//! marketplace, or the ground-truth taxi replay used for validation):
//!
//! * [`calibration`] — §3.4: the determinism experiment, the
//!   surge-induction check, the four-walker **visibility-radius**
//!   estimation, and lattice placement of the 43 clients;
//! * [`campaign`] — §3.3/§4.1: run a fleet of emulated clients pinging
//!   every 5 s and stream their observations into estimators;
//! * [`estimate`] — §3.3: supply from unique car IDs, fulfilled demand
//!   from car disappearances with the edge filter, short-lived-car
//!   cleaning, per-ID lifespans;
//! * [`surge_obs`] — §5.1–5.2: surge episode segmentation, update-moment
//!   timing, jitter detection and cross-client simultaneity;
//! * [`areas`] — §5.3: surge-area inference by lock-step clustering of
//!   API probes;
//! * [`forecast`] — §5.4 / Table 1: the Raw / Threshold / Rush linear
//!   forecasting models;
//! * [`transitions`] — §5.5 / Fig. 22: the driver state-machine analysis
//!   of surge's effect on supply and demand;
//! * [`avoidance`] — §6: the surge-avoidance strategy (reserve in a
//!   cheaper adjacent area and walk to it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod areas;
pub mod avoidance;
pub mod calibration;
pub mod campaign;
pub mod estimate;
pub mod forecast;
pub mod logs;
pub mod persist;
pub mod surge_obs;
pub mod transitions;

mod observe;
mod remote;
mod systems;

pub use campaign::{Campaign, CampaignConfig, CampaignData, CampaignRunner, StoreHooks};
pub use observe::{
    response_to_observations, ClientSpec, ObservedCar, PingObservation, TypeObservation,
};
pub use remote::{ChaosSpec, RemoteMeasuredSystem, RemoteOptions, RemoteWorldSpec, RetryPolicy};
pub use systems::{MeasuredSystem, SystemMetrics, TaxiSystem, UberSystem};
