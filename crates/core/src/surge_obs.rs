//! Surge-stream analysis (§5.1–5.2, Figs. 12–17).
//!
//! Operates on the per-client 5-second multiplier series a campaign
//! records, plus the per-interval API reference series:
//!
//! * [`episodes`] — contiguous runs with multiplier > 1, for the duration
//!   CDFs of Fig. 13;
//! * [`change_moments`] — the offset within each 5-minute interval at
//!   which the observed value first changed (Fig. 15);
//! * [`detect_jitter`] — windows where a client deviated from the API
//!   reference toward the *previous* interval's value (Figs. 14, 16);
//! * [`simultaneity`] — how many clients jitter at the same instant
//!   (Fig. 17).

/// Duration (seconds) of every maximal run of multiplier > 1.
///
/// `NaN` entries are transport gaps (dropped pings), not observations: a
/// gap inside a surge episode extends it (the surge did not end just
/// because a ping was lost), but a gap never *starts* an episode.
pub fn episodes(values: &[f32], tick_secs: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut run = 0u64;
    for &v in values {
        if v.is_nan() {
            if run > 0 {
                run += tick_secs;
            }
        } else if v > 1.0 {
            run += tick_secs;
        } else if run > 0 {
            out.push(run);
            run = 0;
        }
    }
    if run > 0 {
        out.push(run);
    }
    out
}

/// For each 5-minute interval (after the first), the offset in seconds at
/// which the observed series first changed value, or `None` if it did not
/// change during that interval.
///
/// `NaN` gaps cannot witness a change: a change is only registered between
/// two *delivered* observations (`NaN != x` is vacuously true and would
/// otherwise turn every gap edge into a spurious change moment).
pub fn change_moments(values: &[f32], tick_secs: u64) -> Vec<Option<u64>> {
    let ticks_per_interval = (300 / tick_secs) as usize;
    let intervals = values.len() / ticks_per_interval;
    let mut out = Vec::with_capacity(intervals.saturating_sub(1));
    for iv in 1..intervals {
        let start = iv * ticks_per_interval;
        // Last delivered value before this interval, if any.
        let mut prev = values[..start].iter().rev().copied().find(|v| !v.is_nan());
        let mut moment = None;
        for k in 0..ticks_per_interval {
            let v = values[start + k];
            if v.is_nan() {
                continue;
            }
            if let Some(p) = prev {
                if v != p {
                    moment = Some(k as u64 * tick_secs);
                    break;
                }
            }
            prev = Some(v);
        }
        out.push(moment);
    }
    out
}

/// One detected stale-data window in a client's stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterEvent {
    /// Interval index in which the window occurred.
    pub interval: u64,
    /// Offset of the window start within the interval, seconds.
    pub start_offset: u64,
    /// Window duration, seconds.
    pub duration: u64,
    /// The (stale) multiplier served during the window.
    pub stale_value: f32,
    /// The interval's settled multiplier per the API.
    pub consensus: f32,
}

impl JitterEvent {
    /// Did the stale value *reduce* the price versus the consensus?
    /// (§5.2: jitter lowered prices 64–74% of the time.)
    pub fn is_price_drop(&self) -> bool {
        self.stale_value < self.consensus
    }
}

/// Detects jitter in one client series against the API reference.
///
/// `api_by_interval[iv]` is the settled multiplier of interval `iv`. A run
/// of ticks inside interval `iv` counts as jitter when it (a) does not
/// touch the interval start (that's the ordinary propagation delay),
/// (b) differs from the interval's consensus, (c) equals the *previous*
/// interval's consensus (the signature the paper confirmed with Uber's
/// engineers), and (d) is shorter than 90 s.
///
/// `NaN` gaps cannot witness jitter: a dropped ping says nothing about
/// what the client would have seen, so gaps neither start, extend, nor
/// join deviating runs (`NaN != x` is vacuously true and would otherwise
/// make every gap look like a stale window).
pub fn detect_jitter(
    values: &[f32],
    api_by_interval: &[f32],
    tick_secs: u64,
) -> Vec<JitterEvent> {
    let ticks_per_interval = (300 / tick_secs) as usize;
    let intervals = (values.len() / ticks_per_interval).min(api_by_interval.len());
    let mut out = Vec::new();
    for iv in 1..intervals {
        let consensus = api_by_interval[iv];
        let previous = api_by_interval[iv - 1];
        if consensus == previous {
            continue; // stale data is invisible when nothing changed
        }
        let start = iv * ticks_per_interval;
        let mut k = 0usize;
        while k < ticks_per_interval {
            let v = values[start + k];
            if v.is_nan() || v == consensus {
                k += 1;
                continue;
            }
            // A maximal run of delivered, consensus-deviating ticks; a
            // gap ends the run just as a consensus tick does.
            let run_start = k;
            while k < ticks_per_interval
                && !values[start + k].is_nan()
                && values[start + k] != consensus
            {
                k += 1;
            }
            let run_len = (k - run_start) as u64 * tick_secs;
            let is_delay_run = run_start == 0;
            let matches_previous = values[start + run_start] == previous;
            if !is_delay_run && matches_previous && run_len < 90 {
                out.push(JitterEvent {
                    interval: iv as u64,
                    start_offset: run_start as u64 * tick_secs,
                    duration: run_len,
                    stale_value: values[start + run_start],
                    consensus,
                });
            }
        }
    }
    out
}

/// Histogram of simultaneity: `result[k]` = number of jitter *moments*
/// (5-second ticks inside some client's jitter window) during which
/// exactly `k+1` clients were jittering. Fig. 17 plots the CDF of this.
pub fn simultaneity(per_client_events: &[Vec<JitterEvent>], tick_secs: u64) -> Vec<u64> {
    use std::collections::HashMap;
    // Count jittering clients per absolute tick.
    let mut per_tick: HashMap<u64, u32> = HashMap::new();
    for events in per_client_events {
        for e in events {
            let base = e.interval * 300 + e.start_offset;
            let mut off = 0;
            while off < e.duration {
                *per_tick.entry(base + off).or_insert(0) += 1;
                off += tick_secs;
            }
        }
    }
    let max_k = per_tick.values().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max_k];
    for (_, k) in per_tick {
        hist[(k - 1) as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 5;

    #[test]
    fn episodes_basic() {
        // 1.0×3, 1.5×4, 1.0×2, 2.0×1
        let mut v = vec![1.0f32; 3];
        v.extend(vec![1.5; 4]);
        v.extend(vec![1.0; 2]);
        v.push(2.0);
        assert_eq!(episodes(&v, T), vec![20, 5]);
    }

    #[test]
    fn episodes_empty_and_flat() {
        assert!(episodes(&[], T).is_empty());
        assert!(episodes(&[1.0; 100], T).is_empty());
        assert_eq!(episodes(&[1.2; 10], T), vec![50]);
    }

    #[test]
    fn change_moment_found() {
        let tpi = 60usize; // ticks per interval at 5 s
        let mut v = vec![1.0f32; tpi]; // interval 0
        let mut iv1 = vec![1.0f32; tpi]; // interval 1: change at tick 7
        for x in iv1.iter_mut().skip(7) {
            *x = 1.5;
        }
        v.extend(iv1);
        let moments = change_moments(&v, T);
        assert_eq!(moments, vec![Some(35)]);
    }

    #[test]
    fn change_moment_none_when_flat() {
        let v = vec![1.3f32; 120];
        assert_eq!(change_moments(&v, T), vec![None]);
    }

    #[test]
    fn jitter_detected_mid_interval() {
        let tpi = 60usize;
        // Interval 0 at 1.5, interval 1 at 1.0, with a 25 s stale window
        // back to 1.5 at offset 100 s.
        let mut v = vec![1.5f32; tpi];
        let mut iv1 = vec![1.0f32; tpi];
        for k in 20..25 {
            iv1[k] = 1.5;
        }
        v.extend(iv1);
        let api = vec![1.5f32, 1.0];
        let events = detect_jitter(&v, &api, T);
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.interval, 1);
        assert_eq!(e.start_offset, 100);
        assert_eq!(e.duration, 25);
        assert_eq!(e.stale_value, 1.5);
        assert!(!e.is_price_drop(), "stale 1.5 vs consensus 1.0 raises price");
    }

    #[test]
    fn jitter_price_drop_case() {
        let tpi = 60usize;
        // Interval 0 at 1.0, interval 1 surged to 2.0; stale window back
        // to 1.0 is a price drop for the lucky client.
        let mut v = vec![1.0f32; tpi];
        let mut iv1 = vec![2.0f32; tpi];
        for k in 30..35 {
            iv1[k] = 1.0;
        }
        v.extend(iv1);
        let events = detect_jitter(&v, &[1.0, 2.0], T);
        assert_eq!(events.len(), 1);
        assert!(events[0].is_price_drop());
    }

    #[test]
    fn propagation_delay_not_jitter() {
        let tpi = 60usize;
        // Interval 1 changes value, but the client only catches up after
        // 20 s — a delay run touching the interval start, not jitter.
        let mut v = vec![1.0f32; tpi];
        let mut iv1 = vec![2.0f32; tpi];
        for k in 0..4 {
            iv1[k] = 1.0;
        }
        v.extend(iv1);
        let events = detect_jitter(&v, &[1.0, 2.0], T);
        assert!(events.is_empty(), "delay runs must not count as jitter");
    }

    #[test]
    fn unchanged_interval_hides_stale_data() {
        let v = vec![1.0f32; 120];
        let events = detect_jitter(&v, &[1.0, 1.0], T);
        assert!(events.is_empty());
    }

    #[test]
    fn episodes_gap_extends_but_never_starts() {
        // Surge run 1.5×3 with a NaN gap inside: one episode, not two,
        // and the gap tick counts toward its duration.
        let v = [1.0, 1.5, f32::NAN, 1.5, 1.5, 1.0];
        assert_eq!(episodes(&v, T), vec![20]);
        // Gaps in flat territory never open an episode.
        let flat = [1.0, f32::NAN, f32::NAN, 1.0];
        assert!(episodes(&flat, T).is_empty());
    }

    #[test]
    fn change_moment_gap_is_not_a_change() {
        let tpi = 60usize;
        let mut v = vec![1.0f32; tpi];
        // Interval 1 is flat 1.0 except for dropped pings — no change.
        let mut iv1 = vec![1.0f32; tpi];
        iv1[10] = f32::NAN;
        iv1[11] = f32::NAN;
        v.extend(iv1);
        assert_eq!(change_moments(&v, T), vec![None]);
        // A real change after a gap is stamped at the delivered tick.
        let mut v2 = vec![1.0f32; tpi];
        let mut iv = vec![1.0f32; tpi];
        iv[5] = f32::NAN;
        for x in iv.iter_mut().skip(6) {
            *x = 1.5;
        }
        v2.extend(iv);
        assert_eq!(change_moments(&v2, T), vec![Some(30)]);
    }

    #[test]
    fn jitter_gap_is_not_a_stale_window() {
        let tpi = 60usize;
        // Interval 0 at 1.5, interval 1 at 1.0: dropped pings mid-interval
        // must not masquerade as a stale window.
        let mut v = vec![1.5f32; tpi];
        let mut iv1 = vec![1.0f32; tpi];
        for k in 20..25 {
            iv1[k] = f32::NAN;
        }
        v.extend(iv1);
        assert!(detect_jitter(&v, &[1.5, 1.0], T).is_empty());
        // A genuine stale window flanked by gaps is still detected.
        let mut v2 = vec![1.5f32; tpi];
        let mut iv = vec![1.0f32; tpi];
        iv[19] = f32::NAN;
        for k in 20..25 {
            iv[k] = 1.5;
        }
        iv[25] = f32::NAN;
        v2.extend(iv);
        let events = detect_jitter(&v2, &[1.5, 1.0], T);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].duration, 25);
        assert_eq!(events[0].stale_value, 1.5);
    }

    #[test]
    fn simultaneity_histogram() {
        let e = |interval: u64, start: u64, dur: u64| JitterEvent {
            interval,
            start_offset: start,
            duration: dur,
            stale_value: 1.0,
            consensus: 1.5,
        };
        // Client 0 jitters 100–125; client 1 jitters 110–135: overlap
        // covers 110–125 (3 ticks of 5 s).
        let per_client = vec![vec![e(1, 100, 25)], vec![e(1, 110, 25)]];
        let hist = simultaneity(&per_client, T);
        // Singleton ticks: 100,105 (c0) + 125,130 (c1) = 4; doubles:
        // 110,115,120 = 3.
        assert_eq!(hist, vec![4, 3]);
    }

    #[test]
    fn simultaneity_empty() {
        assert!(simultaneity(&[], T).is_empty());
        assert!(simultaneity(&[vec![], vec![]], T).is_empty());
    }
}
