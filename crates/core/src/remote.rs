//! The remote measurement client: [`MeasuredSystem`] over TCP sockets.
//!
//! The paper's apparatus talked to a production API over a real network;
//! [`RemoteMeasuredSystem`] reproduces that topology against a
//! `surgescope-serve` endpoint. The campaign runner drives it through the
//! exact same trait surface as the in-process [`crate::UberSystem`], and
//! the combination of the server's lockstep barrier, the serial fault
//! pre-pass here, and the shared wire/local observation conversion
//! ([`crate::observe::response_to_observations`]) makes the resulting
//! `CampaignData` **byte-identical** to the in-process run — clean or
//! faulted, at any connection count.
//!
//! Fault injection stays client-side: the fault RNG is seeded exactly as
//! `UberSystem` seeds it, draws happen in client order before any I/O, a
//! `Drop` outcome suppresses the request entirely, and a `Delay(d)`
//! response is fetched at its send tick (the barrier guarantees the
//! server still holds the send-time snapshot) and parked in the same
//! [`Transport`] queue until its delivery tick.

use crate::observe::{response_to_observations, ClientSpec, TypeObservation};
use crate::systems::{MeasuredSystem, SystemMetrics};
use serde::{Deserialize, Serialize, Value};
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;
use surgescope_api::{PingClientResponse, PriceEstimate, RateLimitError, TimeEstimate};
use surgescope_city::CityModel;
use surgescope_geo::{LatLng, LocalProjection};
use surgescope_marketplace::GroundTruth;
use surgescope_obs::MetricsRegistry;
use surgescope_serve::wire;
use surgescope_simcore::{
    ticks_late, FaultOutcome, FaultPlan, SimRng, SimTime, Transport,
};

/// Parameters a remote campaign ships to the server when opening its
/// lockstep world. Deliberately a subset of `CampaignConfig`: everything
/// the *server* needs to build the marketplace; client lattice, fault
/// plan and estimator tuning stay client-side.
pub struct RemoteWorldSpec<'a> {
    /// The measured city, **post-scale** (the client applies `cfg.scale`
    /// before connecting so both sides agree on the exact model).
    pub city: &'a CityModel,
    /// Campaign root seed.
    pub seed: u64,
    /// Protocol era the fleet speaks.
    pub era: surgescope_api::ProtocolEra,
    /// Surge publication policy of the measured marketplace.
    pub surge_policy: surgescope_marketplace::SurgePolicy,
}

/// One blocking request/response exchange on a connection.
fn rpc(stream: &mut TcpStream, kind: u8, payload: &Value) -> io::Result<(u8, Value)> {
    wire::write_frame(stream, kind, payload)?;
    read_reply(stream)
}

/// Reads one response frame, surfacing server-side `RESP_ERR` as an error.
fn read_reply(stream: &mut TcpStream) -> io::Result<(u8, Value)> {
    let (kind, value, _) =
        wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).map_err(|e| e.into_io())?;
    if kind == wire::RESP_ERR {
        let msg = value
            .field("error")
            .ok()
            .and_then(|v| String::from_value(v).ok())
            .unwrap_or_else(|| "unspecified server error".into());
        return Err(io::Error::new(io::ErrorKind::Other, format!("server: {msg}")));
    }
    Ok((kind, value))
}

fn connect_one(addr: &str) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let hello = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
    let (kind, _) = rpc(&mut stream, wire::REQ_HELLO, &hello)?;
    if kind != wire::RESP_HELLO {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("handshake answered with {kind:#04x}"),
        ));
    }
    Ok(stream)
}

/// A measurement fleet whose pings travel over real sockets to a
/// `surgescope-serve` lockstep campaign. See the module docs for the
/// determinism contract.
pub struct RemoteMeasuredSystem {
    /// Party connections; `conns[0]` opened the campaign and carries the
    /// probe traffic. Clients are fanned out over all of them.
    conns: Vec<TcpStream>,
    campaign: u64,
    tick: u64,
    tick_secs: u64,
    proj: LocalProjection,
    faults: FaultPlan,
    fault_rng: SimRng,
    transport: Transport<Vec<TypeObservation>>,
    outcomes: Vec<FaultOutcome>,
    metrics: SystemMetrics,
}

impl RemoteMeasuredSystem {
    /// Connects a lockstep party of `connections` sockets to `addr` and
    /// opens a campaign world there. Fault injection (if any) runs
    /// client-side with the same seeding as the in-process system.
    pub fn connect(
        addr: &str,
        spec: &RemoteWorldSpec<'_>,
        faults: FaultPlan,
        connections: usize,
    ) -> io::Result<Self> {
        let connections = connections.max(1);
        let mut conns = Vec::with_capacity(connections);
        conns.push(connect_one(addr)?);

        let open = Value::Map(vec![
            ("city".into(), spec.city.to_value()),
            ("seed".into(), spec.seed.to_value()),
            ("era".into(), spec.era.to_value()),
            ("surge_policy".into(), spec.surge_policy.to_value()),
            ("party".into(), (connections as u64).to_value()),
        ]);
        let (kind, v) = rpc(&mut conns[0], wire::REQ_OPEN, &open)?;
        if kind != wire::RESP_OPEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("OPEN answered with {kind:#04x}"),
            ));
        }
        let campaign = u64::from_value(v.field("campaign").map_err(invalid)?)
            .map_err(invalid)?;

        let join = Value::Map(vec![("campaign".into(), campaign.to_value())]);
        for _ in 1..connections {
            let mut stream = connect_one(addr)?;
            let (kind, _) = rpc(&mut stream, wire::REQ_JOIN, &join)?;
            if kind != wire::RESP_OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("JOIN answered with {kind:#04x}"),
                ));
            }
            conns.push(stream);
        }

        Ok(RemoteMeasuredSystem {
            conns,
            campaign,
            tick: 0,
            tick_secs: 5,
            proj: spec.city.projection,
            faults: faults.validated(),
            fault_rng: SimRng::seed_from_u64(spec.seed).split("transport-faults"),
            transport: Transport::new(),
            outcomes: Vec::new(),
            metrics: SystemMetrics::default(),
        })
    }

    /// Number of party connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Delayed responses currently in flight client-side (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.transport.in_flight()
    }

    /// Registers the client-side instruments (ping fault outcomes,
    /// transport queue, phase timers). Server-side counters live in the
    /// server's own registry.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        reg.adopt_counter("pings.delivered", &self.metrics.pings_delivered);
        reg.adopt_counter("pings.delayed", &self.metrics.pings_delayed);
        reg.adopt_counter("pings.dropped", &self.metrics.pings_dropped);
        reg.adopt_timer("phase.ping", &self.metrics.ping);
        self.transport.metrics().register(reg);
    }

    /// `estimates/price` probe on the campaign's current tick snapshot.
    /// A server-side throttle comes back as the same [`RateLimitError`]
    /// the in-process limiter raises. Panics on transport failure, like
    /// every mid-campaign wire operation.
    pub fn probe_price(
        &mut self,
        account: u64,
        loc: LatLng,
    ) -> Result<Vec<PriceEstimate>, RateLimitError> {
        let v = Value::Map(vec![
            ("campaign".into(), self.campaign.to_value()),
            ("account".into(), account.to_value()),
            ("lat".into(), loc.lat.to_value()),
            ("lng".into(), loc.lng.to_value()),
        ]);
        let (kind, v) = rpc(&mut self.conns[0], wire::REQ_PRICE, &v)
            .expect("remote campaign: price probe failed");
        decode_estimates(kind, &v, wire::RESP_PRICE, account)
    }

    /// `estimates/time` probe; see [`RemoteMeasuredSystem::probe_price`].
    pub fn probe_time(
        &mut self,
        account: u64,
        loc: LatLng,
    ) -> Result<Vec<TimeEstimate>, RateLimitError> {
        let v = Value::Map(vec![
            ("campaign".into(), self.campaign.to_value()),
            ("account".into(), account.to_value()),
            ("lat".into(), loc.lat.to_value()),
            ("lng".into(), loc.lng.to_value()),
        ]);
        let (kind, v) = rpc(&mut self.conns[0], wire::REQ_TIME, &v)
            .expect("remote campaign: time probe failed");
        decode_estimates(kind, &v, wire::RESP_TIME, account)
    }

    /// Finalizes the remote campaign and fetches the marketplace ground
    /// truth the server accumulated.
    pub fn finish(mut self) -> io::Result<GroundTruth> {
        let v = Value::Map(vec![("campaign".into(), self.campaign.to_value())]);
        let (kind, v) = rpc(&mut self.conns[0], wire::REQ_FINISH, &v)?;
        if kind != wire::RESP_FINISH {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("FINISH answered with {kind:#04x}"),
            ));
        }
        GroundTruth::from_value(v.field("truth").map_err(invalid)?).map_err(invalid)
    }
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn decode_estimates<T: Deserialize>(
    kind: u8,
    v: &Value,
    want: u8,
    account: u64,
) -> Result<Vec<T>, RateLimitError> {
    if kind == wire::RESP_THROTTLED {
        let retry = v
            .field("retry_after_secs")
            .ok()
            .and_then(|r| u64::from_value(r).ok())
            .unwrap_or(0);
        return Err(RateLimitError { account, retry_after_secs: retry });
    }
    assert_eq!(kind, want, "estimates probe answered with {kind:#04x}");
    Ok(Vec::<T>::from_value(v.field("estimates").expect("estimates payload"))
        .expect("estimates decode"))
}

/// Sends one chunk's pings down one connection (pipelined: all requests
/// written, then all responses read in order) and routes each response by
/// its fault outcome. Returns the delayed payloads in client order.
#[allow(clippy::too_many_arguments)]
fn ping_chunk(
    stream: &mut TcpStream,
    campaign: u64,
    proj: &LocalProjection,
    clients: &[ClientSpec],
    outcomes: &[FaultOutcome],
    out: &mut [Vec<TypeObservation>],
    base: usize,
    tick_secs: u64,
) -> io::Result<Vec<(usize, u64, Vec<TypeObservation>)>> {
    let mut sent = 0usize;
    for (c, oc) in clients.iter().zip(outcomes) {
        if *oc == FaultOutcome::Drop {
            continue;
        }
        let loc = proj.to_latlng(c.position);
        let v = Value::Map(vec![
            ("campaign".into(), campaign.to_value()),
            ("key".into(), c.key.to_value()),
            ("lat".into(), loc.lat.to_value()),
            ("lng".into(), loc.lng.to_value()),
        ]);
        stream.write_all(&wire::frame_bytes(wire::REQ_PING, &v))?;
        sent += 1;
    }
    stream.flush()?;
    let _ = sent;

    let mut delayed = Vec::new();
    for (i, (slot, oc)) in out.iter_mut().zip(outcomes).enumerate() {
        match oc {
            FaultOutcome::Drop => slot.clear(),
            outcome => {
                let (kind, v) = read_reply(stream)?;
                if kind != wire::RESP_PING {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("PING answered with {kind:#04x}"),
                    ));
                }
                let resp = PingClientResponse::from_value(&v).map_err(invalid)?;
                let blocks = response_to_observations(&resp, proj);
                match outcome {
                    FaultOutcome::Deliver => *slot = blocks,
                    FaultOutcome::Delay(d) => {
                        slot.clear();
                        delayed.push((base + i, ticks_late(*d, tick_secs), blocks));
                    }
                    FaultOutcome::Drop => unreachable!("filtered above"),
                }
            }
        }
    }
    Ok(delayed)
}

impl MeasuredSystem for RemoteMeasuredSystem {
    /// Hits the lockstep barrier: every connection requests the advance
    /// (all writes first — the server releases nobody until the whole
    /// party arrives), then all acknowledgements are read back.
    fn advance_tick(&mut self) {
        self.tick += 1;
        let v = Value::Map(vec![
            ("campaign".into(), self.campaign.to_value()),
            ("tick".into(), self.tick.to_value()),
        ]);
        let frame = wire::frame_bytes(wire::REQ_ADVANCE, &v);
        for conn in &mut self.conns {
            conn.write_all(&frame).expect("remote campaign: ADVANCE send failed");
            conn.flush().expect("remote campaign: ADVANCE flush failed");
        }
        for conn in &mut self.conns {
            let (kind, _) =
                read_reply(conn).expect("remote campaign: ADVANCE barrier failed");
            assert_eq!(kind, wire::RESP_OK, "ADVANCE answered with {kind:#04x}");
        }
        self.transport.advance_tick();
    }

    fn now(&self) -> SimTime {
        SimTime(self.tick * self.tick_secs)
    }

    /// Same contract as the in-process system: serial fault pre-pass in
    /// client order, per-connection fan-out over contiguous client
    /// chunks, delayed responses queued and merged in `(sent_tick,
    /// client)` order. The barrier froze the server's world, so the
    /// interleaving of requests across connections cannot change what
    /// any ping observes.
    fn ping_all_into(&mut self, clients: &[ClientSpec], out: &mut Vec<Vec<TypeObservation>>) {
        let _span = self.metrics.ping.start();
        let faults = self.faults;
        let fault_rng = &mut self.fault_rng;
        self.outcomes.clear();
        self.outcomes.extend(clients.iter().map(|_| {
            if faults.is_none() {
                FaultOutcome::Deliver
            } else {
                faults.decide(fault_rng)
            }
        }));
        let (mut delivered, mut delayed, mut dropped) = (0u64, 0u64, 0u64);
        for oc in &self.outcomes {
            match oc {
                FaultOutcome::Deliver => delivered += 1,
                FaultOutcome::Delay(_) => delayed += 1,
                FaultOutcome::Drop => dropped += 1,
            }
        }
        self.metrics.pings_delivered.add(delivered);
        self.metrics.pings_delayed.add(delayed);
        self.metrics.pings_dropped.add(dropped);

        let n = clients.len();
        out.resize_with(n, Vec::new);
        out.truncate(n);

        let n_conns = self.conns.len().min(n.max(1));
        let chunk_size = n.div_ceil(n_conns.max(1)).max(1);
        let late: Vec<(usize, u64, Vec<TypeObservation>)> = if n_conns <= 1 {
            ping_chunk(
                &mut self.conns[0],
                self.campaign,
                &self.proj,
                clients,
                &self.outcomes,
                out,
                0,
                self.tick_secs,
            )
            .expect("remote campaign: ping exchange failed")
        } else {
            // One thread per connection, each owning a contiguous chunk
            // of clients and the matching slice of `out`. Chunks are
            // client-ordered and so is the concatenation of their
            // delayed lists.
            let proj = self.proj;
            let campaign = self.campaign;
            let tick_secs = self.tick_secs;
            let outcomes = &self.outcomes;
            let mut results: Vec<Vec<(usize, u64, Vec<TypeObservation>)>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut rest = &mut out[..];
                let mut base = 0usize;
                for conn in self.conns.iter_mut().take(n_conns) {
                    let take = chunk_size.min(rest.len());
                    let (chunk_out, tail) = rest.split_at_mut(take);
                    rest = tail;
                    let chunk_clients = &clients[base..base + take];
                    let chunk_outcomes = &outcomes[base..base + take];
                    let chunk_base = base;
                    base += take;
                    handles.push(scope.spawn(move || {
                        ping_chunk(
                            conn,
                            campaign,
                            &proj,
                            chunk_clients,
                            chunk_outcomes,
                            chunk_out,
                            chunk_base,
                            tick_secs,
                        )
                    }));
                }
                for h in handles {
                    results.push(
                        h.join()
                            .expect("remote ping thread panicked")
                            .expect("remote campaign: ping exchange failed"),
                    );
                }
            });
            results.into_iter().flatten().collect()
        };

        // Serial post-pass in client order, exactly like the local path.
        for (client, ticks, payload) in late {
            self.transport.send_delayed(client, ticks, payload);
        }
        for env in self.transport.take_due() {
            if let Some(slot) = out.get_mut(env.client) {
                slot.extend(env.payload);
            }
        }
    }
}
