//! The remote measurement client: [`MeasuredSystem`] over TCP sockets.
//!
//! The paper's apparatus talked to a production API over a real network;
//! [`RemoteMeasuredSystem`] reproduces that topology against a
//! `surgescope-serve` endpoint. The campaign runner drives it through the
//! exact same trait surface as the in-process [`crate::UberSystem`], and
//! the combination of the server's lockstep barrier, the serial fault
//! pre-pass here, and the shared wire/local observation conversion
//! ([`crate::observe::response_to_observations`]) makes the resulting
//! `CampaignData` **byte-identical** to the in-process run — clean or
//! faulted, at any connection count.
//!
//! Fault injection stays client-side: the fault RNG is seeded exactly as
//! `UberSystem` seeds it, draws happen in client order before any I/O, a
//! `Drop` outcome suppresses the request entirely, and a `Delay(d)`
//! response is fetched at its send tick (the barrier guarantees the
//! server still holds the send-time snapshot) and parked in the same
//! [`Transport`] queue until its delivery tick.
//!
//! ## Resilience
//!
//! No wire failure panics. Every mid-campaign operation runs under a
//! [`RetryPolicy`]: on error the connection is torn down, the client
//! sleeps a capped-exponential-backoff delay (jitter drawn from a seeded
//! [`SimRng`] stream, so retry *schedules* are deterministic in tests),
//! reconnects, re-attaches to the campaign with the `RESUME` verb, and
//! re-sends the failed operation. Re-sends are safe because every verb is
//! idempotent against the barrier-frozen world: pings and probes are pure
//! reads, `ADVANCE` to the current tick acks immediately, and `FINISH`
//! returns a cached truth. Once the per-op retry budget is exhausted a
//! circuit breaker trips: the system marks itself broken, the runner's
//! next fault check aborts the campaign with an `io::Error`, and the
//! caller (the experiments cache) falls back to local execution — counted
//! in `resilience.breaker_trips`, never silent. An optional [`ChaosSpec`]
//! wires a [`ChaosStream`] fault schedule under the whole stack for the
//! chaos byte-identity gates.

use crate::observe::{response_to_observations, ClientSpec, TypeObservation};
use crate::systems::{MeasuredSystem, SystemMetrics};
use serde::{Deserialize, Serialize, Value};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use surgescope_api::{PingClientResponse, PriceEstimate, RateLimitError, TimeEstimate};
use surgescope_city::CityModel;
use surgescope_geo::{LatLng, LocalProjection};
use surgescope_marketplace::GroundTruth;
use surgescope_obs::{Counter, Histogram, MetricsRegistry};
use surgescope_serve::chaos::{ChaosCounters, ChaosPlan, ChaosStream};
use surgescope_serve::wire;
use surgescope_simcore::{
    ticks_late, Backoff, FaultOutcome, FaultPlan, SimRng, SimTime, Transport,
};

/// Parameters a remote campaign ships to the server when opening its
/// lockstep world. Deliberately a subset of `CampaignConfig`: everything
/// the *server* needs to build the marketplace; client lattice, fault
/// plan and estimator tuning stay client-side.
pub struct RemoteWorldSpec<'a> {
    /// The measured city, **post-scale** (the client applies `cfg.scale`
    /// before connecting so both sides agree on the exact model).
    pub city: &'a CityModel,
    /// Campaign root seed.
    pub seed: u64,
    /// Protocol era the fleet speaks.
    pub era: surgescope_api::ProtocolEra,
    /// Surge publication policy of the measured marketplace.
    pub surge_policy: surgescope_marketplace::SurgePolicy,
}

/// How hard the remote client fights for a flaky connection before the
/// circuit breaker trips and the campaign falls back to local execution.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Reconnect attempts per failed operation; 0 means the first wire
    /// failure trips the breaker immediately.
    pub max_retries: u32,
    /// Per-operation socket deadline (connect, read and write timeouts).
    /// A hung server costs at most this long per attempt, never forever.
    pub op_timeout: Duration,
    /// First backoff ceiling; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            op_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// A seeded client-side transport fault schedule (see
/// [`surgescope_serve::chaos`]). Independent of the campaign seed so
/// chaos can vary without touching the measured world.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Seed of the fault schedule streams (split per connection and
    /// per reconnect incarnation).
    pub seed: u64,
    /// Per-op fault probabilities.
    pub plan: ChaosPlan,
}

/// Everything tunable about a remote campaign's transport behavior.
#[derive(Debug, Clone, Default)]
pub struct RemoteOptions {
    /// Retry/reconnect/breaker policy.
    pub policy: RetryPolicy,
    /// Optional deterministic chaos injection under the whole stack.
    pub chaos: Option<ChaosSpec>,
}

/// Client-side resilience telemetry. Counters are pure functions of the
/// (seeded) fault schedule, so they live in the deterministic snapshot
/// section; reconnect *latency* is wall clock and renders in timing.
struct ResilienceMetrics {
    /// Operation re-attempts after a wire failure.
    retries: Counter,
    /// Connections successfully re-established.
    reconnects: Counter,
    /// `RESUME` handshakes completed.
    resumes: Counter,
    /// Retry budgets exhausted (the campaign aborts and falls back).
    breaker_trips: Counter,
    /// Reconnect recovery latency (connect + HELLO + RESUME), µs.
    reconnect_us: Histogram,
}

/// Reconnect-latency buckets, µs: loopback reconnects land around 100 µs
/// – 1 ms; the tail covers a WAN with backoff sleeps folded in.
const RECONNECT_US_BOUNDS: &[u64] =
    &[100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000];

impl ResilienceMetrics {
    fn new() -> Self {
        ResilienceMetrics {
            retries: Counter::new(),
            reconnects: Counter::new(),
            resumes: Counter::new(),
            breaker_trips: Counter::new(),
            reconnect_us: Histogram::new(RECONNECT_US_BOUNDS),
        }
    }
}

/// One blocking request/response exchange on a connection.
fn rpc<S: Read + Write>(stream: &mut S, kind: u8, payload: &Value) -> io::Result<(u8, Value)> {
    wire::write_frame(stream, kind, payload)?;
    read_reply(stream)
}

/// Reads one response frame, surfacing server-side `RESP_ERR` as an error.
fn read_reply<S: Read>(stream: &mut S) -> io::Result<(u8, Value)> {
    let (kind, value, _) =
        wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).map_err(|e| e.into_io())?;
    if kind == wire::RESP_ERR {
        let msg = value
            .field("error")
            .ok()
            .and_then(|v| String::from_value(v).ok())
            .unwrap_or_else(|| "unspecified server error".into());
        return Err(io::Error::new(io::ErrorKind::Other, format!("server: {msg}")));
    }
    Ok((kind, value))
}

/// Raw TCP connect with every deadline bounded by `op_timeout`.
fn connect_raw(addr: &str, op_timeout: Duration) -> io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let sa = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("cannot resolve {addr}"))
    })?;
    let stream = TcpStream::connect_timeout(&sa, op_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(op_timeout))?;
    stream.set_write_timeout(Some(op_timeout))?;
    Ok(stream)
}

fn hello<S: Read + Write>(stream: &mut S) -> io::Result<()> {
    let hello = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
    let (kind, _) = rpc(stream, wire::REQ_HELLO, &hello)?;
    if kind != wire::RESP_HELLO {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("handshake answered with {kind:#04x}"),
        ));
    }
    Ok(())
}

/// One party connection plus its per-connection deterministic streams.
struct Conn {
    stream: ChaosStream<TcpStream>,
    /// Party slot (stable across reconnects; seeds the chaos stream).
    index: usize,
    /// Bumped per reconnect so each incarnation draws a fresh fault
    /// schedule instead of replaying the one that just killed it.
    incarnation: u64,
    /// Backoff jitter stream — per connection, so the threaded ping
    /// fan-out retries without sharing RNG state.
    jitter: SimRng,
}

/// The shared context a retry loop needs to re-establish a connection.
/// Borrows only immutable/`Sync` state, so ping threads each retrying
/// their own [`Conn`] can share one.
struct RetryCtx<'a> {
    addr: &'a str,
    campaign: u64,
    policy: &'a RetryPolicy,
    chaos: Option<&'a ChaosSpec>,
    chaos_counters: &'a ChaosCounters,
    res: &'a ResilienceMetrics,
}

/// Wraps a fresh socket in the (per-connection, per-incarnation) chaos
/// schedule, or a passthrough when chaos is off.
fn wrap_stream(
    stream: TcpStream,
    chaos: Option<&ChaosSpec>,
    counters: &ChaosCounters,
    index: usize,
    incarnation: u64,
) -> ChaosStream<TcpStream> {
    match chaos {
        Some(spec) => {
            let rng = SimRng::seed_from_u64(spec.seed)
                .split("chaos")
                .split_index("conn", index as u64)
                .split_index("incarnation", incarnation);
            ChaosStream::with_plan(stream, spec.plan, rng, counters.clone())
        }
        None => ChaosStream::passthrough(stream),
    }
}

/// Tears down and re-establishes one party connection: connect, HELLO,
/// RESUME (re-attach to the campaign without consuming a party slot),
/// then arm the chaos schedule of the new incarnation.
fn reconnect(conn: &mut Conn, ctx: &RetryCtx<'_>) -> io::Result<()> {
    let t0 = Instant::now();
    let raw = connect_raw(ctx.addr, ctx.policy.op_timeout)?;
    let inc = conn.incarnation + 1;
    let mut stream = wrap_stream(raw, ctx.chaos, ctx.chaos_counters, conn.index, inc);
    hello(&mut stream)?;
    let v = Value::Map(vec![("campaign".into(), ctx.campaign.to_value())]);
    let (kind, _) = rpc(&mut stream, wire::REQ_RESUME, &v)?;
    if kind != wire::RESP_OK {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("RESUME answered with {kind:#04x}"),
        ));
    }
    stream.arm();
    conn.stream = stream;
    conn.incarnation = inc;
    ctx.res.resumes.incr();
    ctx.res.reconnects.incr();
    ctx.res.reconnect_us.record(t0.elapsed().as_micros() as u64);
    Ok(())
}

/// Runs `op` against `conn`, reconnecting and re-sending on failure until
/// it succeeds or the retry budget is spent — at which point the returned
/// error is the circuit breaker tripping. Failed *reconnects* burn budget
/// too, so a dead server cannot loop forever. `op` must be safe to
/// re-send blind (every campaign verb is; see the module docs).
fn with_retry<T>(
    conn: &mut Conn,
    ctx: &RetryCtx<'_>,
    mut op: impl FnMut(&mut Conn) -> io::Result<T>,
) -> io::Result<T> {
    let mut backoff = Backoff::new(ctx.policy.backoff_base, ctx.policy.backoff_cap);
    let mut attempts = 0u32;
    let mut last;
    loop {
        match op(conn) {
            Ok(v) => return Ok(v),
            Err(e) => last = e,
        }
        loop {
            if attempts >= ctx.policy.max_retries {
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    format!(
                        "circuit breaker open: retry budget of {} exhausted (last: {last})",
                        ctx.policy.max_retries
                    ),
                ));
            }
            attempts += 1;
            ctx.res.retries.incr();
            std::thread::sleep(backoff.next_delay(&mut conn.jitter));
            match reconnect(conn, ctx) {
                Ok(()) => break,
                Err(e) => last = e,
            }
        }
    }
}

/// A measurement fleet whose pings travel over real sockets to a
/// `surgescope-serve` lockstep campaign. See the module docs for the
/// determinism and resilience contracts.
pub struct RemoteMeasuredSystem {
    addr: String,
    /// Party connections; `conns[0]` opened the campaign and carries the
    /// probe traffic. Clients are fanned out over all of them.
    conns: Vec<Conn>,
    campaign: u64,
    tick: u64,
    tick_secs: u64,
    proj: LocalProjection,
    faults: FaultPlan,
    fault_rng: SimRng,
    transport: Transport<Vec<TypeObservation>>,
    outcomes: Vec<FaultOutcome>,
    metrics: SystemMetrics,
    policy: RetryPolicy,
    chaos: Option<ChaosSpec>,
    chaos_counters: ChaosCounters,
    res: ResilienceMetrics,
    /// Breaker state: the message of the failure that exhausted a retry
    /// budget. Once set, every wire op is a no-op and
    /// [`RemoteMeasuredSystem::fault`] reports the campaign as dead.
    broken: Option<String>,
}

impl RemoteMeasuredSystem {
    /// Connects a lockstep party of `connections` sockets to `addr` and
    /// opens a campaign world there, with default transport options.
    pub fn connect(
        addr: &str,
        spec: &RemoteWorldSpec<'_>,
        faults: FaultPlan,
        connections: usize,
    ) -> io::Result<Self> {
        Self::connect_with(addr, spec, faults, connections, RemoteOptions::default())
    }

    /// [`RemoteMeasuredSystem::connect`] with explicit retry policy and
    /// optional chaos injection. The initial handshakes (HELLO, OPEN,
    /// JOIN) run clean — chaos arms once the party is up — and an
    /// initial connect failure surfaces immediately (the caller's local
    /// fallback is cheaper than a campaign that never existed).
    pub fn connect_with(
        addr: &str,
        spec: &RemoteWorldSpec<'_>,
        faults: FaultPlan,
        connections: usize,
        options: RemoteOptions,
    ) -> io::Result<Self> {
        let connections = connections.max(1);
        let mut policy = options.policy;
        policy.op_timeout = policy.op_timeout.max(Duration::from_millis(10));
        let chaos = options.chaos;
        let chaos_counters = ChaosCounters::new();
        let jitter_root = SimRng::seed_from_u64(spec.seed).split("remote-retry");

        let mk_conn = |index: usize, stream: TcpStream| Conn {
            stream: wrap_stream(stream, chaos.as_ref(), &chaos_counters, index, 0),
            index,
            incarnation: 0,
            jitter: jitter_root.split_index("conn", index as u64),
        };

        let mut conns = Vec::with_capacity(connections);
        let mut first = mk_conn(0, connect_raw(addr, policy.op_timeout)?);
        hello(&mut first.stream)?;

        let open = Value::Map(vec![
            ("city".into(), spec.city.to_value()),
            ("seed".into(), spec.seed.to_value()),
            ("era".into(), spec.era.to_value()),
            ("surge_policy".into(), spec.surge_policy.to_value()),
            ("party".into(), (connections as u64).to_value()),
        ]);
        let (kind, v) = rpc(&mut first.stream, wire::REQ_OPEN, &open)?;
        if kind != wire::RESP_OPEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("OPEN answered with {kind:#04x}"),
            ));
        }
        let campaign =
            u64::from_value(v.field("campaign").map_err(invalid)?).map_err(invalid)?;
        conns.push(first);

        let join = Value::Map(vec![("campaign".into(), campaign.to_value())]);
        for index in 1..connections {
            let mut conn = mk_conn(index, connect_raw(addr, policy.op_timeout)?);
            hello(&mut conn.stream)?;
            let (kind, _) = rpc(&mut conn.stream, wire::REQ_JOIN, &join)?;
            if kind != wire::RESP_OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("JOIN answered with {kind:#04x}"),
                ));
            }
            conns.push(conn);
        }
        for conn in &mut conns {
            conn.stream.arm();
        }

        Ok(RemoteMeasuredSystem {
            addr: addr.to_string(),
            conns,
            campaign,
            tick: 0,
            tick_secs: 5,
            proj: spec.city.projection,
            faults: faults.validated(),
            fault_rng: SimRng::seed_from_u64(spec.seed).split("transport-faults"),
            transport: Transport::new(),
            outcomes: Vec::new(),
            metrics: SystemMetrics::default(),
            policy,
            chaos,
            chaos_counters,
            res: ResilienceMetrics::new(),
            broken: None,
        })
    }

    /// Number of party connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Delayed responses currently in flight client-side (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.transport.in_flight()
    }

    /// The tripped circuit breaker, if any: the campaign can no longer
    /// make wire progress and must abort (the runner checks this after
    /// every phase). `io::Error` is not `Clone`, so the stored message is
    /// re-wrapped per call.
    pub fn fault(&self) -> Option<io::Error> {
        self.broken
            .as_ref()
            .map(|m| io::Error::new(io::ErrorKind::Other, m.clone()))
    }

    fn trip(&mut self, e: &io::Error) {
        if self.broken.is_none() {
            self.res.breaker_trips.incr();
            self.broken = Some(e.to_string());
        }
    }

    /// Registers the client-side instruments (ping fault outcomes,
    /// transport queue, phase timers, resilience counters). Server-side
    /// counters live in the server's own registry.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        reg.adopt_counter("pings.delivered", &self.metrics.pings_delivered);
        reg.adopt_counter("pings.delayed", &self.metrics.pings_delayed);
        reg.adopt_counter("pings.dropped", &self.metrics.pings_dropped);
        reg.adopt_timer("phase.ping", &self.metrics.ping);
        self.transport.metrics().register(reg);
        reg.adopt_counter("resilience.retries", &self.res.retries);
        reg.adopt_counter("resilience.reconnects", &self.res.reconnects);
        reg.adopt_counter("resilience.resumes", &self.res.resumes);
        reg.adopt_counter("resilience.breaker_trips", &self.res.breaker_trips);
        reg.adopt_timing_histogram("resilience.reconnect_us", &self.res.reconnect_us);
        self.chaos_counters.register(reg);
    }

    /// `estimates/price` probe on the campaign's current tick snapshot.
    /// A server-side throttle comes back as the same [`RateLimitError`]
    /// the in-process limiter raises; a wire failure retries under the
    /// policy and, if the budget runs out, trips the breaker (the probe
    /// then reports nothing — the runner's fault check aborts before the
    /// gap is ever consumed).
    pub fn probe_price(
        &mut self,
        account: u64,
        loc: LatLng,
    ) -> Result<Vec<PriceEstimate>, RateLimitError> {
        self.probe(account, loc, wire::REQ_PRICE, wire::RESP_PRICE)
    }

    /// `estimates/time` probe; see [`RemoteMeasuredSystem::probe_price`].
    pub fn probe_time(
        &mut self,
        account: u64,
        loc: LatLng,
    ) -> Result<Vec<TimeEstimate>, RateLimitError> {
        self.probe(account, loc, wire::REQ_TIME, wire::RESP_TIME)
    }

    fn probe<T: Deserialize>(
        &mut self,
        account: u64,
        loc: LatLng,
        req: u8,
        resp: u8,
    ) -> Result<Vec<T>, RateLimitError> {
        if self.broken.is_some() {
            return Ok(Vec::new());
        }
        let payload = Value::Map(vec![
            ("campaign".into(), self.campaign.to_value()),
            ("account".into(), account.to_value()),
            ("lat".into(), loc.lat.to_value()),
            ("lng".into(), loc.lng.to_value()),
        ]);
        let ctx = RetryCtx {
            addr: &self.addr,
            campaign: self.campaign,
            policy: &self.policy,
            chaos: self.chaos.as_ref(),
            chaos_counters: &self.chaos_counters,
            res: &self.res,
        };
        let r = with_retry(&mut self.conns[0], &ctx, |c| {
            let (kind, v) = rpc(&mut c.stream, req, &payload)?;
            decode_estimates::<T>(kind, &v, resp, account)
        });
        match r {
            Ok(inner) => inner,
            Err(e) => {
                self.trip(&e);
                Ok(Vec::new())
            }
        }
    }

    /// Finalizes the remote campaign and fetches the marketplace ground
    /// truth the server accumulated. Idempotent server-side (the truth is
    /// cached), so a FINISH cut off mid-reply retries safely.
    pub fn finish(mut self) -> io::Result<GroundTruth> {
        if let Some(e) = self.fault() {
            return Err(e);
        }
        let payload = Value::Map(vec![("campaign".into(), self.campaign.to_value())]);
        let ctx = RetryCtx {
            addr: &self.addr,
            campaign: self.campaign,
            policy: &self.policy,
            chaos: self.chaos.as_ref(),
            chaos_counters: &self.chaos_counters,
            res: &self.res,
        };
        let v = with_retry(&mut self.conns[0], &ctx, |c| {
            let (kind, v) = rpc(&mut c.stream, wire::REQ_FINISH, &payload)?;
            if kind != wire::RESP_FINISH {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("FINISH answered with {kind:#04x}"),
                ));
            }
            Ok(v)
        })?;
        GroundTruth::from_value(v.field("truth").map_err(invalid)?).map_err(invalid)
    }
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Decodes an estimates reply. The outer `Result` is a wire/protocol
/// failure (routable through the retry policy); the inner one is the
/// in-protocol throttle answer.
fn decode_estimates<T: Deserialize>(
    kind: u8,
    v: &Value,
    want: u8,
    account: u64,
) -> io::Result<Result<Vec<T>, RateLimitError>> {
    if kind == wire::RESP_THROTTLED {
        let retry = v
            .field("retry_after_secs")
            .ok()
            .and_then(|r| u64::from_value(r).ok())
            .unwrap_or(0);
        return Ok(Err(RateLimitError { account, retry_after_secs: retry }));
    }
    if kind != want {
        return Err(invalid(format!("estimates probe answered with {kind:#04x}")));
    }
    let est = Vec::<T>::from_value(v.field("estimates").map_err(invalid)?)
        .map_err(invalid)?;
    Ok(Ok(est))
}

/// Sends one chunk's pings down one connection (pipelined: all requests
/// written, then all responses read in order) and routes each response by
/// its fault outcome. Returns the delayed payloads in client order.
///
/// Safe to re-run wholesale after a reconnect: every `out` slot is
/// overwritten (or cleared) per attempt, the `delayed` list is rebuilt
/// from scratch, and the barrier-frozen snapshot answers byte-identically
/// however often it is asked.
#[allow(clippy::too_many_arguments)]
fn ping_chunk(
    stream: &mut ChaosStream<TcpStream>,
    campaign: u64,
    proj: &LocalProjection,
    clients: &[ClientSpec],
    outcomes: &[FaultOutcome],
    out: &mut [Vec<TypeObservation>],
    base: usize,
    tick_secs: u64,
) -> io::Result<Vec<(usize, u64, Vec<TypeObservation>)>> {
    for (c, oc) in clients.iter().zip(outcomes) {
        if *oc == FaultOutcome::Drop {
            continue;
        }
        let loc = proj.to_latlng(c.position);
        let v = Value::Map(vec![
            ("campaign".into(), campaign.to_value()),
            ("key".into(), c.key.to_value()),
            ("lat".into(), loc.lat.to_value()),
            ("lng".into(), loc.lng.to_value()),
        ]);
        stream.write_all(&wire::frame_bytes(wire::REQ_PING, &v))?;
    }
    stream.flush()?;

    let mut delayed = Vec::new();
    for (i, (slot, oc)) in out.iter_mut().zip(outcomes).enumerate() {
        match oc {
            FaultOutcome::Drop => slot.clear(),
            outcome => {
                let (kind, v) = read_reply(stream)?;
                if kind != wire::RESP_PING {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("PING answered with {kind:#04x}"),
                    ));
                }
                let resp = PingClientResponse::from_value(&v).map_err(invalid)?;
                let blocks = response_to_observations(&resp, proj);
                match outcome {
                    FaultOutcome::Deliver => *slot = blocks,
                    FaultOutcome::Delay(d) => {
                        slot.clear();
                        delayed.push((base + i, ticks_late(*d, tick_secs), blocks));
                    }
                    FaultOutcome::Drop => unreachable!("filtered above"),
                }
            }
        }
    }
    Ok(delayed)
}

impl MeasuredSystem for RemoteMeasuredSystem {
    /// Hits the lockstep barrier: every connection requests the advance
    /// (all writes first — the server releases nobody until the whole
    /// party arrives), then all acknowledgements are read back. Each
    /// phase retries per connection; a read-phase reconnect re-sends the
    /// ADVANCE, which the server acks idempotently if the barrier already
    /// completed. A retry budget running out trips the breaker instead of
    /// panicking — the runner's fault check aborts the campaign.
    fn advance_tick(&mut self) {
        if self.broken.is_some() {
            return;
        }
        self.tick += 1;
        let v = Value::Map(vec![
            ("campaign".into(), self.campaign.to_value()),
            ("tick".into(), self.tick.to_value()),
        ]);
        let frame = wire::frame_bytes(wire::REQ_ADVANCE, &v);
        let err = 'wire: {
            let ctx = RetryCtx {
                addr: &self.addr,
                campaign: self.campaign,
                policy: &self.policy,
                chaos: self.chaos.as_ref(),
                chaos_counters: &self.chaos_counters,
                res: &self.res,
            };
            // Phase 1: put every party member's ADVANCE on the wire. A
            // reconnect mid-phase re-sends on the fresh socket; nobody
            // blocks, because no response is awaited yet.
            for conn in &mut self.conns {
                let sent = with_retry(conn, &ctx, |c| {
                    c.stream.write_all(&frame)?;
                    c.stream.flush()
                });
                if let Err(e) = sent {
                    break 'wire Some(e);
                }
            }
            // Phase 2: collect the acks. On a retry the connection is
            // fresh (no request pending), so the op re-sends the
            // ADVANCE first — idempotent against the completed barrier.
            for conn in &mut self.conns {
                let mut resend = false;
                let acked = with_retry(conn, &ctx, |c| {
                    if resend {
                        c.stream.write_all(&frame)?;
                        c.stream.flush()?;
                    }
                    resend = true;
                    let (kind, _) = read_reply(&mut c.stream)?;
                    if kind != wire::RESP_OK {
                        return Err(invalid(format!("ADVANCE answered with {kind:#04x}")));
                    }
                    Ok(())
                });
                if let Err(e) = acked {
                    break 'wire Some(e);
                }
            }
            None
        };
        if let Some(e) = err {
            self.trip(&e);
            return;
        }
        self.transport.advance_tick();
    }

    fn now(&self) -> SimTime {
        SimTime(self.tick * self.tick_secs)
    }

    /// Same contract as the in-process system: serial fault pre-pass in
    /// client order, per-connection fan-out over contiguous client
    /// chunks, delayed responses queued and merged in `(sent_tick,
    /// client)` order. The barrier froze the server's world, so the
    /// interleaving of requests across connections cannot change what
    /// any ping observes — which is also why a whole chunk can be
    /// re-sent blind after a reconnect.
    fn ping_all_into(&mut self, clients: &[ClientSpec], out: &mut Vec<Vec<TypeObservation>>) {
        if self.broken.is_some() {
            return;
        }
        let _span = self.metrics.ping.start();
        let faults = self.faults;
        let fault_rng = &mut self.fault_rng;
        self.outcomes.clear();
        self.outcomes.extend(clients.iter().map(|_| {
            if faults.is_none() {
                FaultOutcome::Deliver
            } else {
                faults.decide(fault_rng)
            }
        }));
        let (mut delivered, mut delayed, mut dropped) = (0u64, 0u64, 0u64);
        for oc in &self.outcomes {
            match oc {
                FaultOutcome::Deliver => delivered += 1,
                FaultOutcome::Delay(_) => delayed += 1,
                FaultOutcome::Drop => dropped += 1,
            }
        }
        self.metrics.pings_delivered.add(delivered);
        self.metrics.pings_delayed.add(delayed);
        self.metrics.pings_dropped.add(dropped);

        let n = clients.len();
        out.resize_with(n, Vec::new);
        out.truncate(n);

        let n_conns = self.conns.len().min(n.max(1));
        let chunk_size = n.div_ceil(n_conns.max(1)).max(1);
        let ctx = RetryCtx {
            addr: &self.addr,
            campaign: self.campaign,
            policy: &self.policy,
            chaos: self.chaos.as_ref(),
            chaos_counters: &self.chaos_counters,
            res: &self.res,
        };
        let proj = self.proj;
        let campaign = self.campaign;
        let tick_secs = self.tick_secs;
        let outcomes = &self.outcomes;
        let late: io::Result<Vec<(usize, u64, Vec<TypeObservation>)>> = if n_conns <= 1 {
            with_retry(&mut self.conns[0], &ctx, |c| {
                ping_chunk(
                    &mut c.stream,
                    campaign,
                    &proj,
                    clients,
                    outcomes,
                    out,
                    0,
                    tick_secs,
                )
            })
        } else {
            // One thread per connection, each owning a contiguous chunk
            // of clients, the matching slice of `out`, and its own retry
            // loop (per-connection jitter streams keep the schedules
            // deterministic under the fan-out). Chunks are
            // client-ordered and so is the concatenation of their
            // delayed lists.
            let ctx = &ctx;
            let mut results: Vec<io::Result<Vec<(usize, u64, Vec<TypeObservation>)>>> =
                Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut rest = &mut out[..];
                let mut base = 0usize;
                for conn in self.conns.iter_mut().take(n_conns) {
                    let take = chunk_size.min(rest.len());
                    let (chunk_out, tail) = rest.split_at_mut(take);
                    rest = tail;
                    let chunk_clients = &clients[base..base + take];
                    let chunk_outcomes = &outcomes[base..base + take];
                    let chunk_base = base;
                    base += take;
                    handles.push(scope.spawn(move || {
                        with_retry(conn, ctx, |c| {
                            ping_chunk(
                                &mut c.stream,
                                campaign,
                                &proj,
                                chunk_clients,
                                chunk_outcomes,
                                chunk_out,
                                chunk_base,
                                tick_secs,
                            )
                        })
                    }));
                }
                for h in handles {
                    results.push(h.join().unwrap_or_else(|_| {
                        Err(io::Error::new(
                            io::ErrorKind::Other,
                            "remote ping thread panicked",
                        ))
                    }));
                }
            });
            results.into_iter().collect::<io::Result<Vec<_>>>().map(|chunks| {
                chunks.into_iter().flatten().collect()
            })
        };

        let late = match late {
            Ok(late) => late,
            Err(e) => {
                self.trip(&e);
                return;
            }
        };

        // Serial post-pass in client order, exactly like the local path.
        for (client, ticks, payload) in late {
            self.transport.send_delayed(client, ticks, payload);
        }
        for env in self.transport.take_due() {
            if let Some(slot) = out.get_mut(env.client) {
                slot.extend(env.payload);
            }
        }
    }
}
