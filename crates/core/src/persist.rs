//! Campaign persistence: the on-disk schema shared by the durable event
//! log, checkpoints and deterministic replay.
//!
//! A campaign log (see [`surgescope_store::LogWriter`]) is a header
//! followed by one [`REC_TICK`] record per simulated tick and a single
//! trailing [`REC_FINISH`] record:
//!
//! * **TICK** carries the per-client displayed UberX surge and EWT for
//!   that tick, as raw `f32` bit patterns — `NaN` gaps survive byte-exact.
//! * **FINISH** carries every other [`CampaignData`] field (estimator,
//!   transition tallies, API probe series, ground truth, …).
//!
//! [`replay_campaign`] folds the TICK records back into the per-client
//! series and merges the FINISH record, reconstructing the `CampaignData`
//! **without re-running the simulation**. Because every collection is
//! serialized in a canonical order (maps sorted, sets sorted, floats as
//! bit patterns), two `CampaignData` values are bit-identical iff their
//! [`campaign_encoded`] bytes are equal — which is how the
//! checkpoint/resume tests assert equality down to NaN payloads.

use crate::campaign::CampaignData;
use crate::estimate::SupplyDemandEstimator;
use crate::observe::ClientSpec;
use crate::transitions::TransitionTracker;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;
use surgescope_city::CityModel;
use surgescope_geo::Polygon;
use surgescope_marketplace::GroundTruth;
use surgescope_store::{encode_to_vec, LogReader, StoreError};

/// Record kind: one simulated tick's per-client surge/EWT row.
pub const REC_TICK: u8 = 0x10;
/// Record kind: the closing record carrying the rest of `CampaignData`.
pub const REC_FINISH: u8 = 0x20;

/// Encodes an `f32` slice as its exact bit patterns (`NaN`-safe).
pub(crate) fn f32s_to_bits(xs: &[f32]) -> Value {
    Value::Seq(xs.iter().map(|x| Value::U64(x.to_bits() as u64)).collect())
}

/// Decodes [`f32s_to_bits`] output.
pub(crate) fn bits_to_f32s(v: &Value) -> Result<Vec<f32>, serde::Error> {
    Ok(Vec::<u32>::from_value(v)?.into_iter().map(f32::from_bits).collect())
}

/// Encodes a ragged `f32` matrix as bit patterns.
pub(crate) fn f32_rows_to_bits(rows: &[Vec<f32>]) -> Value {
    Value::Seq(rows.iter().map(|r| f32s_to_bits(r)).collect())
}

/// Decodes [`f32_rows_to_bits`] output.
pub(crate) fn bits_to_f32_rows(v: &Value) -> Result<Vec<Vec<f32>>, serde::Error> {
    match v {
        Value::Seq(rows) => rows.iter().map(bits_to_f32s).collect(),
        _ => Err(serde::Error::custom("expected seq of f32 bit rows")),
    }
}

/// Surge-area polygons of a city, in area order.
pub(crate) fn area_polys(city: &CityModel) -> Vec<Polygon> {
    city.areas.iter().map(|a| a.polygon.clone()).collect()
}

/// Surge-area adjacency lists of a city, as plain indices.
pub(crate) fn area_adjacency(city: &CityModel) -> Vec<Vec<usize>> {
    city.adjacency.iter().map(|v| v.iter().map(|a| a.0).collect()).collect()
}

/// Builds one TICK record from this tick's per-client rows.
pub(crate) fn tick_record(surge_row: &[f32], ewt_row: &[f32]) -> Value {
    Value::Map(vec![
        ("s".into(), f32s_to_bits(surge_row)),
        ("e".into(), f32s_to_bits(ewt_row)),
    ])
}

/// Parses a TICK record back into `(surge_row, ewt_row)`.
pub(crate) fn parse_tick(v: &Value) -> Result<(Vec<f32>, Vec<f32>), serde::Error> {
    Ok((bits_to_f32s(v.field("s")?)?, bits_to_f32s(v.field("e")?)?))
}

/// Serializes everything in a [`CampaignData`] *except* the per-tick
/// `client_surge`/`client_ewt` series (those live in the TICK records).
pub(crate) fn finish_value(data: &CampaignData) -> Value {
    Value::Map(vec![
        ("city".into(), data.city.to_value()),
        ("clients".into(), data.clients.to_value()),
        ("client_area".into(), data.client_area.to_value()),
        ("estimator".into(), data.estimator.to_value()),
        ("api_surge".into(), f32_rows_to_bits(&data.api_surge)),
        ("api_ewt".into(), f32_rows_to_bits(&data.api_ewt)),
        ("avg_visible".into(), f32_rows_to_bits(&data.avg_visible)),
        ("transitions".into(), data.transitions.save_state()),
        ("client_daily_cars".into(), data.client_daily_cars.to_value()),
        ("client_interval_cars".into(), data.client_interval_cars.to_value()),
        ("client_mean_ewt".into(), data.client_mean_ewt.to_value()),
        ("client_delivered".into(), data.client_delivered.to_value()),
        ("tick_secs".into(), data.tick_secs.to_value()),
        ("ticks".into(), (data.ticks as u64).to_value()),
        ("intervals".into(), (data.intervals as u64).to_value()),
        ("truth".into(), data.truth.to_value()),
    ])
}

/// Full canonical serialization of a [`CampaignData`] (finish fields plus
/// the per-tick series). Equal values ⇔ equal bytes under
/// [`campaign_encoded`].
pub fn campaign_to_value(data: &CampaignData) -> Value {
    let Value::Map(mut fields) = finish_value(data) else { unreachable!() };
    fields.push(("client_surge".into(), f32_rows_to_bits(&data.client_surge)));
    fields.push(("client_ewt".into(), f32_rows_to_bits(&data.client_ewt)));
    Value::Map(fields)
}

/// Canonical byte encoding of a campaign; two campaigns are bit-identical
/// (down to NaN payloads) iff these byte strings are equal.
pub fn campaign_encoded(data: &CampaignData) -> Vec<u8> {
    encode_to_vec(&campaign_to_value(data))
}

/// Rebuilds a [`CampaignData`] from a FINISH record plus the per-client
/// series (either replayed from TICK records or parsed from a full value).
fn campaign_from_parts(
    finish: &Value,
    client_surge: Vec<Vec<f32>>,
    client_ewt: Vec<Vec<f32>>,
) -> Result<CampaignData, StoreError> {
    let city = CityModel::from_value(finish.field("city")?)?;
    let transitions = TransitionTracker::restore_state(
        area_polys(&city),
        area_adjacency(&city),
        finish.field("transitions")?,
    )?;
    let data = CampaignData {
        clients: Vec::<ClientSpec>::from_value(finish.field("clients")?)?,
        client_area: Vec::<Option<usize>>::from_value(finish.field("client_area")?)?,
        estimator: SupplyDemandEstimator::from_value(finish.field("estimator")?)?,
        client_surge,
        client_ewt,
        api_surge: bits_to_f32_rows(finish.field("api_surge")?)?,
        api_ewt: bits_to_f32_rows(finish.field("api_ewt")?)?,
        avg_visible: bits_to_f32_rows(finish.field("avg_visible")?)?,
        transitions,
        client_daily_cars: Vec::<Vec<u32>>::from_value(finish.field("client_daily_cars")?)?,
        client_interval_cars: Vec::<f64>::from_value(finish.field("client_interval_cars")?)?,
        client_mean_ewt: Vec::<f64>::from_value(finish.field("client_mean_ewt")?)?,
        client_delivered: Vec::<u64>::from_value(finish.field("client_delivered")?)?,
        tick_secs: u64::from_value(finish.field("tick_secs")?)?,
        ticks: u64::from_value(finish.field("ticks")?)? as usize,
        intervals: u64::from_value(finish.field("intervals")?)? as usize,
        truth: GroundTruth::from_value(finish.field("truth")?)?,
        city,
    };
    if data.client_surge.len() != data.clients.len()
        || data.client_ewt.len() != data.clients.len()
    {
        return Err(StoreError::Schema(format!(
            "series cover {} clients, campaign has {}",
            data.client_surge.len(),
            data.clients.len()
        )));
    }
    if data.client_surge.iter().chain(&data.client_ewt).any(|s| s.len() != data.ticks) {
        return Err(StoreError::Schema("per-client series length != ticks".into()));
    }
    Ok(data)
}

/// Parses [`campaign_to_value`] output back into a [`CampaignData`].
pub fn campaign_from_value(v: &Value) -> Result<CampaignData, StoreError> {
    campaign_from_parts(
        v,
        bits_to_f32_rows(v.field("client_surge")?)?,
        bits_to_f32_rows(v.field("client_ewt")?)?,
    )
}

/// Deterministically replays a campaign log into the [`CampaignData`] it
/// recorded, **without re-running the simulation**: TICK records are
/// transposed into the per-client series and the FINISH record supplies
/// everything else. Errors cleanly (no panic) on truncated or corrupt
/// logs, or if the FINISH record is missing (an interrupted run — resume
/// from its checkpoint instead).
pub fn replay_campaign(path: &Path) -> Result<CampaignData, StoreError> {
    let reader = LogReader::open(path)?;
    let mut surge_rows: Vec<Vec<f32>> = Vec::new();
    let mut ewt_rows: Vec<Vec<f32>> = Vec::new();
    let mut finish: Option<Value> = None;
    for rec in reader.iter() {
        let rec = rec?;
        match rec.kind {
            REC_TICK => {
                if finish.is_some() {
                    return Err(StoreError::Schema("TICK record after FINISH".into()));
                }
                let (s, e) = parse_tick(&rec.value()?)?;
                surge_rows.push(s);
                ewt_rows.push(e);
            }
            REC_FINISH => {
                if finish.replace(rec.value()?).is_some() {
                    return Err(StoreError::Schema("duplicate FINISH record".into()));
                }
            }
            k => return Err(StoreError::Schema(format!("unknown record kind {k:#04x}"))),
        }
    }
    let finish = finish.ok_or_else(|| {
        StoreError::Schema("log has no FINISH record (interrupted run?)".into())
    })?;
    // Transpose [tick][client] rows into [client][tick] series.
    let n = surge_rows.first().map_or(0, Vec::len);
    if surge_rows.iter().chain(&ewt_rows).any(|r| r.len() != n) {
        return Err(StoreError::Schema("ragged TICK rows".into()));
    }
    let ticks = surge_rows.len();
    let transpose = |rows: &[Vec<f32>]| -> Vec<Vec<f32>> {
        (0..n)
            .map(|c| {
                let mut series = Vec::with_capacity(ticks);
                series.extend(rows.iter().map(|r| r[c]));
                series
            })
            .collect()
    };
    campaign_from_parts(&finish, transpose(&surge_rows), transpose(&ewt_rows))
}
