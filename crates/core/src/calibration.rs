//! Measurement-apparatus calibration (§3.4).
//!
//! Before trusting a client fleet, the paper runs three calibrations:
//!
//! 1. **Determinism**: 43 clients at one location for an hour must see
//!    exactly the same vehicles, multipliers and EWTs.
//! 2. **No observer effect**: clients parked in a quiet residential spot
//!    at 4 a.m. must record multiplier 1 throughout — measurement must not
//!    *induce* surge.
//! 3. **Visibility radius**: four clients walk 20 m NE/NW/SE/SW every 5 s
//!    from a common origin until they no longer share any visible car;
//!    the radius is `r = (1/√2)·mean(D_c) ≈ 0.1768·ΣD_c` (45-45-90
//!    triangle, §3.4). The radius then fixes the client lattice spacing.

use crate::observe::{ClientSpec, TypeObservation};
use crate::systems::MeasuredSystem;
use std::collections::HashSet;
use surgescope_city::CarType;
use surgescope_geo::{grid, Meters, Polygon};

/// Outcome of the determinism calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeterminismReport {
    /// Total co-located ping rounds compared.
    pub rounds: usize,
    /// Rounds where at least one client disagreed with client 0.
    pub divergent_rounds: usize,
}

impl DeterminismReport {
    /// The §3.4 conclusion: pingClient data is deterministic.
    pub fn is_deterministic(&self) -> bool {
        self.divergent_rounds == 0
    }
}

/// Runs the §3.4 determinism experiment: `n_clients` co-located clients
/// ping for `ticks` rounds; responses are compared field-for-field.
pub fn determinism_check<S: MeasuredSystem>(
    sys: &mut S,
    position: Meters,
    n_clients: usize,
    ticks: usize,
) -> DeterminismReport {
    assert!(n_clients >= 2, "need at least two clients to compare");
    let clients: Vec<ClientSpec> =
        (0..n_clients).map(|i| ClientSpec { key: i as u64, position }).collect();
    let mut divergent = 0;
    for _ in 0..ticks {
        sys.advance_tick();
        let obs = sys.ping_all(&clients);
        let baseline = &obs[0];
        if obs[1..].iter().any(|o| o != baseline) {
            divergent += 1;
        }
    }
    DeterminismReport { rounds: ticks, divergent_rounds: divergent }
}

/// Runs the observer-effect check: fraction of pings reporting surge > 1
/// while `n_clients` sit at `position` for `ticks` rounds. The check
/// passes when the system under measurement is genuinely quiet and the
/// fleet does not push prices up (the paper expected and saw all 1s).
pub fn surge_induction_fraction<S: MeasuredSystem>(
    sys: &mut S,
    position: Meters,
    n_clients: usize,
    ticks: usize,
) -> f64 {
    let clients: Vec<ClientSpec> =
        (0..n_clients).map(|i| ClientSpec { key: i as u64, position }).collect();
    let mut surged = 0usize;
    let mut total = 0usize;
    for _ in 0..ticks {
        sys.advance_tick();
        for blocks in sys.ping_all(&clients) {
            if let Some(x) = blocks.iter().find(|b| b.car_type == CarType::UberX) {
                total += 1;
                if x.surge > 1.0 {
                    surged += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        surged as f64 / total as f64
    }
}

/// The visibility-radius walk. Returns the measured radius in metres, or
/// `None` when the walkers never shared a car to begin with (area too
/// sparse to calibrate — try a denser time of day, as the paper did).
pub fn visibility_radius<S: MeasuredSystem>(
    sys: &mut S,
    origin: Meters,
    car_type: CarType,
    max_steps: usize,
) -> Option<f64> {
    // Bearings NE, NW, SE, SW in unit-vector form.
    const DIAG: f64 = std::f64::consts::FRAC_1_SQRT_2;
    let dirs = [
        Meters::new(DIAG, DIAG),
        Meters::new(-DIAG, DIAG),
        Meters::new(DIAG, -DIAG),
        Meters::new(-DIAG, -DIAG),
    ];
    const STEP_M: f64 = 20.0;

    let visible_ids = |blocks: &[TypeObservation]| -> HashSet<u64> {
        blocks
            .iter()
            .filter(|b| b.car_type == car_type)
            .flat_map(|b| b.cars.iter().map(|c| c.id))
            .collect()
    };

    let mut ever_shared = false;
    for step in 0..max_steps {
        let d = STEP_M * step as f64;
        let clients: Vec<ClientSpec> = dirs
            .iter()
            .enumerate()
            .map(|(i, dir)| ClientSpec {
                key: i as u64,
                position: Meters::new(origin.x + dir.x * d, origin.y + dir.y * d),
            })
            .collect();
        sys.advance_tick();
        let obs = sys.ping_all(&clients);
        let mut shared = visible_ids(&obs[0]);
        for o in &obs[1..] {
            let ids = visible_ids(o);
            shared.retain(|id| ids.contains(id));
        }
        if shared.is_empty() {
            if !ever_shared {
                return None;
            }
            // Each walker is D = step·20 m from the origin; r = D/√2
            // averaged over the four walkers (≈ 0.1768·ΣD_c).
            let sum_d = 4.0 * d;
            return Some(0.1768 * sum_d);
        }
        ever_shared = true;
    }
    // Never diverged within the budget: radius at least the final D/√2.
    Some(0.1768 * 4.0 * STEP_M * max_steps as f64)
}

/// Places measurement clients on a lattice over `region` (§3.4's final
/// step). Keys are assigned in row-major order.
pub fn placement(region: &Polygon, spacing_m: f64) -> Vec<ClientSpec> {
    grid::cover_polygon(region, spacing_m)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| ClientSpec { key: i as u64, position: slot.position })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::UberSystem;
    use surgescope_api::{ApiService, ProtocolEra};
    use surgescope_city::CityModel;
    use surgescope_marketplace::{Marketplace, MarketplaceConfig};
    use surgescope_simcore::SimDuration;

    fn uber(seed: u64, warm_hours: u64) -> UberSystem {
        let mut c = CityModel::manhattan_midtown();
        // Ample idle cars: calibration semantics are about visibility
        // geometry, not load (heavy demand empties the idle pool and
        // makes the shared-visibility walk degenerate).
        c.supply = c.supply.scaled(0.3);
        c.demand = c.demand.scaled(0.1);
        let mut mp = Marketplace::new(c, MarketplaceConfig::default(), seed);
        mp.run_for(SimDuration::hours(warm_hours));
        UberSystem::new(mp, ApiService::new(ProtocolEra::Feb2015, seed))
    }

    #[test]
    fn feb_era_is_deterministic_across_clients() {
        let mut sys = uber(1, 12);
        let center = sys.marketplace.city().measurement_region.centroid();
        let report = determinism_check(&mut sys, center, 8, 60);
        assert!(report.is_deterministic(), "{report:?}");
        assert_eq!(report.rounds, 60);
    }

    #[test]
    fn quiet_hours_do_not_surge() {
        // 3–4 a.m., demand trough: Manhattan at low scale shouldn't surge.
        let mut sys = uber(2, 3);
        let center = sys.marketplace.city().measurement_region.centroid();
        let frac = surge_induction_fraction(&mut sys, center, 43, 120);
        assert!(frac < 0.1, "surge fraction at 3am was {frac}");
    }

    #[test]
    fn visibility_radius_measured_at_midday() {
        let mut sys = uber(3, 12);
        let center = sys.marketplace.city().measurement_region.centroid();
        let r = visibility_radius(&mut sys, center, CarType::UberX, 200)
            .expect("midtown at noon must have shared visibility");
        // Sanity: hundreds of metres to a few km for our densities.
        assert!(r > 50.0 && r < 5_000.0, "radius {r}");
    }

    #[test]
    fn visibility_radius_none_when_empty() {
        // A cold world (nobody online yet) has no cars to share.
        let mut sys = uber(4, 0);
        let center = sys.marketplace.city().measurement_region.centroid();
        // UberWAV is so rare that even a warm world often lacks one.
        let r = visibility_radius(&mut sys, center, CarType::UberWav, 10);
        assert!(r.is_none());
    }

    #[test]
    fn placement_is_row_major_and_in_region() {
        let city = CityModel::manhattan_midtown();
        let clients = placement(&city.measurement_region, city.client_spacing_m);
        assert!((40..=48).contains(&clients.len()), "{}", clients.len());
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(c.key, i as u64);
            assert!(city.measurement_region.contains(c.position));
        }
    }
}
