//! Measurement campaigns (§3.3, §4.1).
//!
//! A campaign deploys a lattice of emulated clients over a city's
//! measurement region and runs them for days of simulated time, pinging
//! every 5 seconds. Observations stream into the estimators as they
//! arrive (the paper stored 996 GB of raw responses; we keep only what
//! the analyses need):
//!
//! * the supply/demand estimator ([`crate::estimate`]);
//! * per-client UberX surge and EWT series (the jitter and duration
//!   analyses need full 5-second resolution);
//! * one API probe per surge area per interval (the API stream is the
//!   jitter-free reference, §5.2–5.3);
//! * the driver transition tracker ([`crate::transitions`]);
//! * per-client daily unique-car counts and mean EWTs (the Fig. 9–10
//!   heatmaps).
//!
//! Because the measured system is simulated, the campaign also captures
//! the marketplace's ground truth — the paper validated against taxis
//! (§3.5, [`Campaign::run_taxi`]); we can additionally score every
//! estimator against the real answer.

use crate::calibration::placement;
use crate::estimate::{EstimatorConfig, SupplyDemandEstimator};
use crate::observe::{latest_of_type, ClientSpec, TypeObservation};
use crate::persist;
use crate::remote::{RemoteMeasuredSystem, RemoteOptions, RemoteWorldSpec};
use crate::systems::{MeasuredSystem, TaxiSystem, UberSystem};
use crate::transitions::TransitionTracker;
use serde::{Deserialize, Serialize, Value};
use surgescope_simcore::FastHashSet;
use std::path::{Path, PathBuf};
use surgescope_api::{
    ApiService, PriceEstimate, ProtocolEra, RateLimitError, RateLimiter, TimeEstimate,
};
use surgescope_city::{CarType, CityModel};
use surgescope_geo::{LatLng, Meters, Polygon};
use surgescope_marketplace::{GroundTruth, Marketplace, MarketplaceConfig};
use surgescope_obs::{Counter, MetricsRegistry, Snapshot, Timer};
use surgescope_simcore::{FaultPlan, SimRng, SimTime, Transport};
use surgescope_store::{LogWriter, StoreError};

use surgescope_taxi::{TaxiGroundTruth, TaxiTrace};

/// Durable-store hooks for a campaign run. All fields default to off;
/// the campaign then runs fully in memory, exactly as before the store
/// existed.
#[derive(Debug, Clone, Default)]
pub struct StoreHooks {
    /// Stream the campaign into an append-only event log at this path
    /// (one TICK record per simulated tick, a FINISH record at the end).
    /// The finished log replays into the same `CampaignData` via
    /// [`crate::persist::replay_campaign`] without re-simulation.
    pub log_path: Option<PathBuf>,
    /// Write a full-state checkpoint to this path (atomically, via a
    /// `.tmp` sibling and rename) every [`StoreHooks::checkpoint_every_ticks`].
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint cadence in ticks; `None` disables periodic checkpoints
    /// even when a path is set (explicit [`CampaignRunner::write_checkpoint`]
    /// calls still work).
    pub checkpoint_every_ticks: Option<u64>,
}

impl StoreHooks {
    /// Hooks with everything disabled (the `Default`).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed for the whole run.
    pub seed: u64,
    /// Measured duration in hours (the paper ran 2 weeks per city; 72 h
    /// reproduces every distributional shape at a fraction of the cost).
    pub hours: u64,
    /// Protocol era the client fleet speaks.
    pub era: ProtocolEra,
    /// Estimator tuning.
    pub estimator: EstimatorConfig,
    /// Override the client lattice spacing (defaults to the city's).
    pub spacing_override_m: Option<f64>,
    /// Scale the city's fleet and demand (tests use ~0.3 for speed).
    pub scale: f64,
    /// Surge publication policy of the measured marketplace (`Threshold`
    /// is measured Uber; `Smoothed` evaluates the paper's §8 proposal —
    /// see the `ext01` experiment).
    pub surge_policy: surgescope_marketplace::SurgePolicy,
    /// Worker threads for the per-tick client fan-out (1 = serial). The
    /// observation series is bit-identical at any value; this only trades
    /// wall time.
    pub parallelism: usize,
    /// Transport fault injection on client pings ([`FaultPlan::none`] by
    /// default). Dropped pings leave `NaN` gaps in the per-client series;
    /// delayed pings arrive ticks late carrying send-time content.
    pub faults: FaultPlan,
    /// Durable-store hooks (event log / checkpoints); off by default.
    /// Runtime-only: excluded from serialization and [`CampaignConfig::config_hash`].
    pub store: StoreHooks,
}

impl CampaignConfig {
    /// A fast configuration for tests: scaled-down city, short horizon.
    pub fn test_default(seed: u64) -> Self {
        CampaignConfig {
            seed,
            hours: 6,
            era: ProtocolEra::Apr2015,
            estimator: EstimatorConfig::default(),
            spacing_override_m: None,
            scale: 0.3,
            surge_policy: surgescope_marketplace::SurgePolicy::Threshold,
            parallelism: 1,
            faults: FaultPlan::none(),
            store: StoreHooks::none(),
        }
    }

    /// The full-fidelity configuration used by the experiment harness.
    pub fn paper_default(seed: u64, era: ProtocolEra, hours: u64) -> Self {
        CampaignConfig {
            seed,
            hours,
            era,
            estimator: EstimatorConfig::default(),
            spacing_override_m: None,
            scale: 1.0,
            surge_policy: surgescope_marketplace::SurgePolicy::Threshold,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            faults: FaultPlan::none(),
            store: StoreHooks::none(),
        }
    }

    /// Identity hash of the *measured* configuration: every field that
    /// changes what a campaign observes (seed, horizon, era, estimator
    /// tuning, spacing, scale, surge policy, fault plan) and none that
    /// only change how it runs (`parallelism` — the series is
    /// bit-identical at any thread count — and the store hooks). Two
    /// configs with equal hashes produce bit-identical campaigns; the
    /// disk cache and the log/checkpoint headers key on this.
    pub fn config_hash(&self) -> u64 {
        surgescope_store::value_hash(&self.semantic_value())
    }

    /// The hash-relevant subset of the config (see [`CampaignConfig::config_hash`]).
    fn semantic_value(&self) -> Value {
        Value::Map(vec![
            ("seed".into(), self.seed.to_value()),
            ("hours".into(), self.hours.to_value()),
            ("era".into(), self.era.to_value()),
            ("estimator".into(), self.estimator.to_value()),
            ("spacing_override_m".into(), self.spacing_override_m.to_value()),
            ("scale".into(), self.scale.to_value()),
            ("surge_policy".into(), self.surge_policy.to_value()),
            ("faults".into(), self.faults.to_value()),
        ])
    }
}

impl Serialize for CampaignConfig {
    fn to_value(&self) -> Value {
        let Value::Map(mut fields) = self.semantic_value() else { unreachable!() };
        // Parallelism is carried for information but overridden on
        // resume; store hooks are runtime-only and never serialized.
        fields.push(("parallelism".into(), (self.parallelism as u64).to_value()));
        Value::Map(fields)
    }
}

impl Deserialize for CampaignConfig {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(CampaignConfig {
            seed: u64::from_value(v.field("seed")?)?,
            hours: u64::from_value(v.field("hours")?)?,
            era: ProtocolEra::from_value(v.field("era")?)?,
            estimator: EstimatorConfig::from_value(v.field("estimator")?)?,
            spacing_override_m: Option::<f64>::from_value(v.field("spacing_override_m")?)?,
            scale: f64::from_value(v.field("scale")?)?,
            surge_policy: surgescope_marketplace::SurgePolicy::from_value(
                v.field("surge_policy")?,
            )?,
            parallelism: u64::from_value(v.field("parallelism")?)? as usize,
            faults: FaultPlan::from_value(v.field("faults")?)?,
            store: StoreHooks::none(),
        })
    }
}

/// Everything a campaign produces.
pub struct CampaignData {
    /// The city measured (post-scaling).
    pub city: CityModel,
    /// The client lattice.
    pub clients: Vec<ClientSpec>,
    /// Surge area of each client (by lattice position).
    pub client_area: Vec<Option<usize>>,
    /// Finished supply/demand estimator.
    pub estimator: SupplyDemandEstimator,
    /// `[client][tick]` UberX multiplier seen in pings. A tick on which
    /// the client received no response (dropped or still-in-flight ping)
    /// records `f32::NAN` — a gap, never a fabricated 1.0×.
    pub client_surge: Vec<Vec<f32>>,
    /// `[client][tick]` UberX EWT (minutes) seen in pings. Undelivered
    /// ticks record `f32::NAN` (see [`CampaignData::client_surge`]).
    pub client_ewt: Vec<Vec<f32>>,
    /// `[area][interval]` UberX multiplier from the API probe.
    pub api_surge: Vec<Vec<f32>>,
    /// `[area][interval]` UberX EWT (minutes) at the area centroid.
    pub api_ewt: Vec<Vec<f32>>,
    /// `[area][interval]` mean *instantaneous* visible UberX count — the
    /// per-ping car count averaged over the window, which is how §5.4
    /// constructs its supply series ("averaging each quantity over the
    /// 5-minute window"). Unlike the unique-ID union it dips when cars
    /// get booked, which is what the (supply − demand) correlation keys
    /// on.
    pub avg_visible: Vec<Vec<f32>>,
    /// Driver transition tally.
    pub transitions: TransitionTracker,
    /// `[client][day]` unique UberX ids seen.
    pub client_daily_cars: Vec<Vec<u32>>,
    /// Mean unique UberX ids seen per 5-minute interval, per client —
    /// a spatial density proxy (the per-day counts homogenize once every
    /// car has wandered past every client). Intervals in which the client
    /// received no ping at all are excluded from the denominator.
    pub client_interval_cars: Vec<f64>,
    /// Mean UberX EWT per client over the whole campaign, averaged over
    /// *delivered* pings only — gaps do not dilute the mean toward zero.
    pub client_mean_ewt: Vec<f64>,
    /// Delivered-ping count per client (ticks whose response actually
    /// reached the client, fresh or late). `ticks - client_delivered[i]`
    /// is the number of `NaN` gaps in that client's series.
    pub client_delivered: Vec<u64>,
    /// Simulation tick length (5 s).
    pub tick_secs: u64,
    /// Total ticks run.
    pub ticks: usize,
    /// Closed 5-minute intervals.
    pub intervals: usize,
    /// Marketplace ground truth (what the paper could not see).
    pub truth: GroundTruth,
}

impl CampaignData {
    /// Per-area measured UberX surge series at interval resolution,
    /// taken from the API probe (jitter-free by construction).
    pub fn area_surge_series(&self, area: usize) -> &[f32] {
        &self.api_surge[area]
    }

    /// Clients located in `area`.
    pub fn clients_in_area(&self, area: usize) -> Vec<usize> {
        self.client_area
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(area))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Offset into each interval at which the API probe fires: past the
/// maximum API propagation delay (40 s) so the probe reads the interval's
/// settled multiplier.
const PROBE_OFFSET_SECS: u64 = 45;

/// The measured system behind a campaign: the in-process simulated
/// marketplace, or a lockstep party of sockets to a `surgescope-serve`
/// endpoint. Both expose the same [`MeasuredSystem`] surface plus the
/// interval API probes; every byte the runner accumulates is identical
/// across the two (that is the serving layer's determinism contract,
/// regression-locked by the lockstep integration tests).
enum SystemBackend {
    /// Everything in this process: [`UberSystem`] over the marketplace.
    Local(UberSystem),
    /// The marketplace lives behind a wire; pings, probes and ground
    /// truth travel over TCP. Fault injection stays client-side.
    Remote(RemoteMeasuredSystem),
}

impl SystemBackend {
    fn advance_tick(&mut self) {
        match self {
            SystemBackend::Local(u) => u.advance_tick(),
            SystemBackend::Remote(r) => r.advance_tick(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            SystemBackend::Local(u) => u.now(),
            SystemBackend::Remote(r) => r.now(),
        }
    }

    fn ping_all_into(&mut self, clients: &[ClientSpec], out: &mut Vec<Vec<TypeObservation>>) {
        match self {
            SystemBackend::Local(u) => u.ping_all_into(clients, out),
            SystemBackend::Remote(r) => r.ping_all_into(clients, out),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            SystemBackend::Local(u) => u.in_flight(),
            SystemBackend::Remote(r) => r.in_flight(),
        }
    }

    /// `estimates/price` against the current tick's state. The local arm
    /// reuses the tick's cached snapshot (the fan-out above captured it);
    /// the remote arm asks the server, whose world is frozen at the same
    /// tick by the lockstep barrier.
    fn probe_price(
        &mut self,
        account: u64,
        loc: LatLng,
    ) -> Result<Vec<PriceEstimate>, RateLimitError> {
        match self {
            SystemBackend::Local(u) => {
                let snap = u.tick_snapshot();
                u.api.estimates_price(&snap, account, loc)
            }
            SystemBackend::Remote(r) => r.probe_price(account, loc),
        }
    }

    /// `estimates/time`; see [`SystemBackend::probe_price`].
    fn probe_time(
        &mut self,
        account: u64,
        loc: LatLng,
    ) -> Result<Vec<TimeEstimate>, RateLimitError> {
        match self {
            SystemBackend::Local(u) => {
                let snap = u.tick_snapshot();
                u.api.estimates_time(&snap, account, loc)
            }
            SystemBackend::Remote(r) => r.probe_time(account, loc),
        }
    }

    fn register_metrics(&self, reg: &MetricsRegistry) {
        match self {
            SystemBackend::Local(u) => u.register_metrics(reg),
            SystemBackend::Remote(r) => r.register_metrics(reg),
        }
    }

    /// The remote circuit breaker, if it tripped: the wire retry budget
    /// ran out mid-campaign and no further progress is possible. Local
    /// backends never fault. The runner checks this after every phase so
    /// a dead connection aborts the campaign with an error instead of
    /// silently recording garbage.
    fn remote_fault(&self) -> Option<std::io::Error> {
        match self {
            SystemBackend::Local(_) => None,
            SystemBackend::Remote(r) => r.fault(),
        }
    }

    /// The in-process system, when there is one. Checkpoint/resume needs
    /// direct marketplace access and is local-only by construction
    /// ([`CampaignRunner::new_remote`] rejects store hooks).
    fn local(&self) -> Option<&UberSystem> {
        match self {
            SystemBackend::Local(u) => Some(u),
            SystemBackend::Remote(_) => None,
        }
    }

    /// Consumes the backend and yields the marketplace ground truth —
    /// directly for a local run, over the wire (`FINISH`) for a remote.
    fn into_truth(self) -> Result<GroundTruth, StoreError> {
        match self {
            SystemBackend::Local(u) => Ok(u.marketplace.into_truth()),
            SystemBackend::Remote(r) => r.finish().map_err(StoreError::Io),
        }
    }
}

/// A measurement campaign as a resumable state machine.
///
/// [`Campaign::run_uber`] used to be one monolithic loop; the runner
/// splits it into [`CampaignRunner::tick`] steps so the campaign can be
/// streamed into a durable log, checkpointed at any tick boundary, and
/// resumed from a checkpoint — the resumed run continues **bit-identically**
/// (NaN payloads included) to the uninterrupted one, at any parallelism.
pub struct CampaignRunner {
    cfg: CampaignConfig,
    city: CityModel,
    clients: Vec<ClientSpec>,
    client_area: Vec<Option<usize>>,
    centroids: Vec<Meters>,
    n_areas: usize,
    sys: SystemBackend,
    estimator: SupplyDemandEstimator,
    transitions: TransitionTracker,
    client_surge: Vec<Vec<f32>>,
    client_ewt: Vec<Vec<f32>>,
    api_surge: Vec<Vec<f32>>,
    api_ewt: Vec<Vec<f32>>,
    daily_sets: Vec<FastHashSet<u64>>,
    client_daily_cars: Vec<Vec<u32>>,
    interval_sets: Vec<FastHashSet<u64>>,
    interval_car_sum: Vec<f64>,
    // Per-client count of intervals with at least one delivered ping;
    // an interval the client never heard from is a gap, not a zero.
    interval_car_n: Vec<u64>,
    interval_seen: Vec<bool>,
    avg_visible: Vec<Vec<f32>>,
    /// Scratch, cleared within every tick — always empty at checkpoint
    /// boundaries, so never serialized.
    tick_area_sets: Vec<FastHashSet<u64>>,
    /// Per-client observation buffer handed back to `ping_all_into`
    /// every tick so block/car vectors are reused, not reallocated.
    /// Overwritten in full each tick; transient, never serialized.
    obs: Vec<Vec<TypeObservation>>,
    inst_sum: Vec<f64>,
    inst_ticks: u64,
    ewt_sum: Vec<f64>,
    ewt_n: Vec<u64>,
    client_delivered: Vec<u64>,
    probe_pending: Option<Vec<f32>>,
    probe_limited_logged: bool,
    ticks_total: usize,
    ticks_done: usize,
    log: Option<LogWriter>,
    /// Campaign-scoped metrics registry plus the runner's own handles.
    /// Observational only: never serialized, never part of
    /// [`CampaignData`] (which must stay byte-stable across resume).
    metrics: RunnerMetrics,
}

/// The runner's own instruments plus the registry that aggregates them
/// with every layer below (system, marketplace, transport, api, store).
struct RunnerMetrics {
    registry: MetricsRegistry,
    /// Ticks on which a client recorded a NaN gap (one per client-tick).
    gaps: Counter,
    /// NaN values recorded by throttled API probes.
    probe_nan: Counter,
    /// Ticks completed by this process.
    ticks: Counter,
    /// Checkpoints written.
    checkpoints: Counter,
    /// Wall clock spent serializing + writing checkpoints.
    checkpoint_timer: Timer,
}

impl RunnerMetrics {
    /// Builds the campaign registry: the runner's own instruments plus
    /// everything the fully-constructed `sys` (and the open log, if any)
    /// exposes. Call only after restore-time `set_*` calls are done —
    /// they install fresh counter cells.
    fn new(sys: &SystemBackend, n_clients: usize, log: Option<&mut LogWriter>) -> Self {
        let registry = MetricsRegistry::new();
        sys.register_metrics(&registry);
        registry.gauge("campaign.clients").set(n_clients as u64);
        let gaps = registry.counter("campaign.gaps");
        let probe_nan = registry.counter("campaign.probe_nan");
        let ticks = registry.counter("campaign.ticks");
        let checkpoints = registry.counter("store.checkpoints");
        let checkpoint_timer = registry.timer("store.checkpoint");
        let log_bytes = registry.counter("store.log_bytes");
        let log_records = registry.counter("store.log_records");
        if let Some(w) = log {
            w.set_metrics(log_bytes, log_records);
        }
        RunnerMetrics { registry, gaps, probe_nan, ticks, checkpoints, checkpoint_timer }
    }
}

/// Applies the campaign's supply/demand scale factor to the city model.
fn scale_city(city: &mut CityModel, scale: f64) {
    if (scale - 1.0).abs() > 1e-9 {
        city.supply = city.supply.scaled(scale);
        city.demand = city.demand.scaled(scale);
    }
}

/// Client lattice and surge-area geometry, derived deterministically from
/// the (post-scale) city and config — never serialized.
fn geometry(
    city: &CityModel,
    cfg: &CampaignConfig,
) -> (Vec<ClientSpec>, Vec<Option<usize>>, Vec<Polygon>, Vec<Vec<usize>>, Vec<Meters>) {
    let spacing = cfg.spacing_override_m.unwrap_or(city.client_spacing_m);
    let clients = placement(&city.measurement_region, spacing);
    let client_area: Vec<Option<usize>> =
        clients.iter().map(|c| city.area_of(c.position).map(|a| a.0)).collect();
    let area_polys = persist::area_polys(city);
    let adjacency = persist::area_adjacency(city);
    let centroids: Vec<Meters> = area_polys.iter().map(|p| p.centroid()).collect();
    (clients, client_area, area_polys, adjacency, centroids)
}

impl CampaignRunner {
    /// Builds a fresh campaign over `city` (pre-scale; `cfg.scale` is
    /// applied here). Opens the event log if `cfg.store.log_path` is set.
    pub fn new(mut city: CityModel, cfg: &CampaignConfig) -> Result<Self, StoreError> {
        scale_city(&mut city, cfg.scale);
        let cfg = cfg.clone();
        let market_cfg =
            MarketplaceConfig { surge_policy: cfg.surge_policy, ..Default::default() };
        let mp = Marketplace::new(city.clone(), market_cfg, cfg.seed);
        let api = ApiService::new(cfg.era, cfg.seed ^ 0xB0B5);
        let sys = SystemBackend::Local(
            UberSystem::new(mp, api)
                .with_faults(cfg.faults, cfg.seed)
                .with_parallelism(cfg.parallelism),
        );
        Self::fresh(city, cfg, sys)
    }

    /// Builds a campaign measured **over the wire**: the marketplace runs
    /// inside a `surgescope-serve` server at `addr`, and this process
    /// drives it through a lockstep party of `connections` sockets. The
    /// resulting [`CampaignData`] is byte-identical to the in-process
    /// [`CampaignRunner::new`] run with the same config — clean or
    /// faulted, at any connection count.
    ///
    /// Store hooks are rejected: the event log and checkpoints
    /// serialize marketplace internals this process does not hold.
    pub fn new_remote(
        city: CityModel,
        cfg: &CampaignConfig,
        addr: &str,
        connections: usize,
    ) -> Result<Self, StoreError> {
        Self::new_remote_with(city, cfg, addr, connections, RemoteOptions::default())
    }

    /// [`CampaignRunner::new_remote`] with explicit transport options:
    /// retry/reconnect policy and optional deterministic chaos injection
    /// (see [`RemoteOptions`]). When the retry budget runs
    /// out mid-campaign the circuit breaker trips and the next
    /// [`CampaignRunner::tick`] returns an `Io` error whose message names
    /// the breaker — callers with a local fallback key off that.
    pub fn new_remote_with(
        mut city: CityModel,
        cfg: &CampaignConfig,
        addr: &str,
        connections: usize,
        options: RemoteOptions,
    ) -> Result<Self, StoreError> {
        if cfg.store.log_path.is_some() || cfg.store.checkpoint_path.is_some() {
            return Err(StoreError::Schema(
                "remote campaigns do not support store hooks \
                 (the event log and checkpoints are local-only)"
                    .into(),
            ));
        }
        scale_city(&mut city, cfg.scale);
        let cfg = cfg.clone();
        let spec = RemoteWorldSpec {
            city: &city,
            seed: cfg.seed,
            era: cfg.era,
            surge_policy: cfg.surge_policy,
        };
        let remote =
            RemoteMeasuredSystem::connect_with(addr, &spec, cfg.faults, connections, options)
                .map_err(StoreError::Io)?;
        Self::fresh(city, cfg, SystemBackend::Remote(remote))
    }

    /// Shared tail of the constructors: lattice + geometry, estimators,
    /// log, metrics, zeroed accumulators. `city` is post-scale.
    fn fresh(city: CityModel, cfg: CampaignConfig, sys: SystemBackend) -> Result<Self, StoreError> {
        let (clients, client_area, area_polys, adjacency, centroids) =
            geometry(&city, &cfg);
        let n_areas = city.area_count();

        let estimator = SupplyDemandEstimator::new(
            cfg.estimator,
            city.measurement_region.clone(),
            area_polys.clone(),
        );
        let transitions = TransitionTracker::new(area_polys, adjacency);

        let n = clients.len();
        let ticks_total = (cfg.hours * 3600 / 5) as usize;
        let mut log = match &cfg.store.log_path {
            Some(p) => Some(LogWriter::create(p, cfg.config_hash())?),
            None => None,
        };
        let metrics = RunnerMetrics::new(&sys, n, log.as_mut());
        Ok(CampaignRunner {
            city,
            clients,
            client_area,
            centroids,
            n_areas,
            sys,
            estimator,
            transitions,
            client_surge: vec![Vec::with_capacity(ticks_total); n],
            client_ewt: vec![Vec::with_capacity(ticks_total); n],
            api_surge: vec![Vec::new(); n_areas],
            api_ewt: vec![Vec::new(); n_areas],
            daily_sets: vec![FastHashSet::default(); n],
            client_daily_cars: vec![Vec::new(); n],
            interval_sets: vec![FastHashSet::default(); n],
            interval_car_sum: vec![0.0; n],
            interval_car_n: vec![0; n],
            interval_seen: vec![false; n],
            avg_visible: vec![Vec::new(); n_areas],
            tick_area_sets: vec![FastHashSet::default(); n_areas],
            obs: Vec::new(),
            inst_sum: vec![0.0; n_areas],
            inst_ticks: 0,
            ewt_sum: vec![0.0; n],
            ewt_n: vec![0; n],
            client_delivered: vec![0; n],
            probe_pending: None,
            probe_limited_logged: false,
            ticks_total,
            ticks_done: 0,
            log,
            cfg,
            metrics,
        })
    }

    /// A point-in-time reading of every instrument in the campaign's
    /// registry (system, marketplace, transport, api, store and the
    /// runner itself). The snapshot's deterministic section is
    /// byte-identical at any parallelism; wall-clock timers live in its
    /// timing section only.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.registry.snapshot()
    }

    fn check_remote_fault(&self) -> Result<(), StoreError> {
        match self.sys.remote_fault() {
            Some(e) => Err(StoreError::Io(e)),
            None => Ok(()),
        }
    }

    /// Total ticks this campaign will run.
    pub fn ticks_total(&self) -> usize {
        self.ticks_total
    }

    /// Ticks completed so far.
    pub fn ticks_done(&self) -> usize {
        self.ticks_done
    }

    /// The configuration in force (store hooks included).
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Bytes written to the event log so far (0 without a log).
    pub fn log_bytes_written(&self) -> u64 {
        self.log.as_ref().map_or(0, LogWriter::bytes_written)
    }

    /// Delayed responses currently in flight (diagnostic; non-zero at a
    /// checkpoint boundary exercises the transport-restore path).
    pub fn in_flight(&self) -> usize {
        self.sys.in_flight()
    }

    /// Runs one 5-second tick: advance the world, ping every client,
    /// stream the observations into the estimators, and append this
    /// tick's record to the event log (if one is open).
    ///
    /// On a remote backend every phase is followed by a circuit-breaker
    /// check: a wire failure that survived the retry budget surfaces
    /// here as `StoreError::Io` instead of a panic, before any partial
    /// observations are consumed.
    pub fn tick(&mut self) -> Result<(), StoreError> {
        self.sys.advance_tick();
        self.check_remote_fault()?;
        let now = self.sys.now();
        // The tick advanced the world from `state_t` to `now`; the
        // observations describe the state at `state_t`. Stamping them
        // with `now` would smear each interval's last tick into the
        // next interval and inflate per-interval unique counts.
        let state_t = now.saturating_sub(surgescope_simcore::SimDuration::secs(5));
        let mut obs = std::mem::take(&mut self.obs);
        self.sys.ping_all_into(&self.clients, &mut obs);
        if let Some(e) = self.sys.remote_fault() {
            self.obs = obs;
            return Err(StoreError::Io(e));
        }
        for (i, blocks) in obs.iter().enumerate() {
            self.estimator.observe(state_t, blocks);
            // Every delivered UberX block contributes car sightings —
            // a late block re-reports its send-time positions, exactly
            // as the client's log would. The *displayed* surge/EWT is
            // the last block to arrive this tick (fresh first, then
            // late sends in order — stale data displaces fresh).
            for x in blocks.iter().filter(|b| b.car_type == CarType::UberX) {
                for car in &x.cars {
                    self.daily_sets[i].insert(car.id);
                    self.interval_sets[i].insert(car.id);
                    self.transitions.observe(car.id, car.position);
                    if let Some(a) = self.city.area_of(car.position) {
                        self.tick_area_sets[a.0].insert(car.id);
                    }
                }
            }
            if let Some(x) = latest_of_type(blocks, CarType::UberX) {
                self.client_surge[i].push(x.surge as f32);
                self.client_ewt[i].push(x.ewt_min as f32);
                self.ewt_sum[i] += x.ewt_min;
                self.ewt_n[i] += 1;
                self.client_delivered[i] += 1;
                self.interval_seen[i] = true;
            } else {
                // No response reached this client this tick (dropped
                // or still in flight): a gap, never a fabricated 1.0×.
                self.client_surge[i].push(f32::NAN);
                self.client_ewt[i].push(f32::NAN);
                self.metrics.gaps.incr();
            }
        }
        self.obs = obs;
        self.estimator.end_tick(now);
        for (a, set) in self.tick_area_sets.iter_mut().enumerate() {
            self.inst_sum[a] += set.len() as f64;
            set.clear();
        }
        self.inst_ticks += 1;

        // API probe once per interval, after the propagation delay.
        if now.seconds_into_surge_interval() == PROBE_OFFSET_SECS {
            // Same tick as ping_all above: the local backend reuses its
            // cached snapshot, the remote one probes the barrier-frozen
            // server world — both read the identical state.
            let mut this_interval = Vec::with_capacity(self.n_areas);
            let mut limited_logged = self.probe_limited_logged;
            for (ai, centroid) in self.centroids.iter().enumerate() {
                let loc = self.city.projection.to_latlng(*centroid);
                let account = 1_000_000 + ai as u64;
                // The probe budget sits far below the rate limit, but
                // a throttled probe must degrade to a gap — one NaN
                // interval — rather than abort a multi-day campaign.
                let probe_nan = &self.metrics.probe_nan;
                let mut limited = |e: &dyn std::fmt::Display| {
                    if !limited_logged {
                        eprintln!(
                            "campaign: API probe rate-limited ({e}); \
                             recording NaN for the affected intervals"
                        );
                        limited_logged = true;
                    }
                    probe_nan.incr();
                    f64::NAN
                };
                let surge = match self.sys.probe_price(account, loc) {
                    Ok(prices) => prices
                        .iter()
                        .find(|p| p.car_type == CarType::UberX)
                        .map_or(1.0, |p| p.surge_multiplier),
                    Err(e) => limited(&e),
                };
                let ewt = match self.sys.probe_time(account, loc) {
                    Ok(times) => times
                        .iter()
                        .find(|t| t.car_type == CarType::UberX)
                        .map_or(0.0, |t| t.estimate_secs as f64 / 60.0),
                    Err(e) => limited(&e),
                };
                self.api_surge[ai].push(surge as f32);
                self.api_ewt[ai].push(ewt as f32);
                this_interval.push(surge as f32);
            }
            self.probe_limited_logged = limited_logged;
            self.probe_pending = Some(this_interval);
            // A probe that exhausted its retry budget reported a silent
            // gap; surface the tripped breaker before the gap is kept.
            self.check_remote_fault()?;
        }

        // Interval boundary: close the transition tally with the
        // multipliers measured *during* the closed interval, and
        // flush the per-client interval car sets.
        if now.seconds_into_surge_interval() == 0 {
            if let Some(m) = self.probe_pending.take() {
                let m64: Vec<f64> = m.iter().map(|x| *x as f64).collect();
                self.transitions.close_interval(&m64);
            }
            for (i, set) in self.interval_sets.iter_mut().enumerate() {
                // Only intervals with at least one delivered ping
                // count: a silent interval is missing data, and a
                // zero would bias the density proxy downward.
                if self.interval_seen[i] {
                    self.interval_car_sum[i] += set.len() as f64;
                    self.interval_car_n[i] += 1;
                }
                self.interval_seen[i] = false;
                set.clear();
            }
            for a in 0..self.n_areas {
                avg_flush(&mut self.avg_visible[a], &mut self.inst_sum[a], self.inst_ticks);
            }
            self.inst_ticks = 0;
        }

        // Day boundary: flush per-client unique-car counts.
        if now.seconds_into_day() == 0 && now.as_secs() > 0 {
            for (i, set) in self.daily_sets.iter_mut().enumerate() {
                self.client_daily_cars[i].push(set.len() as u32);
                set.clear();
            }
        }

        if self.log.is_some() {
            let t = self.ticks_done;
            let surge_row: Vec<f32> = self.client_surge.iter().map(|s| s[t]).collect();
            let ewt_row: Vec<f32> = self.client_ewt.iter().map(|s| s[t]).collect();
            let rec = persist::tick_record(&surge_row, &ewt_row);
            self.log.as_mut().unwrap().append(persist::REC_TICK, &rec)?;
        }
        self.ticks_done += 1;
        self.metrics.ticks.incr();
        Ok(())
    }

    /// Runs every remaining tick, writing periodic checkpoints when the
    /// store hooks ask for them. A checkpoint is never written after the
    /// final tick — at that point [`CampaignRunner::finish`] is the only
    /// sensible continuation.
    pub fn run_to_end(&mut self) -> Result<(), StoreError> {
        let cadence = match (&self.cfg.store.checkpoint_path, self.cfg.store.checkpoint_every_ticks)
        {
            (Some(_), Some(k)) if k > 0 => Some(k as usize),
            _ => None,
        };
        while self.ticks_done < self.ticks_total {
            self.tick()?;
            if let Some(k) = cadence {
                if self.ticks_done % k == 0 && self.ticks_done < self.ticks_total {
                    self.write_checkpoint()?;
                }
            }
        }
        Ok(())
    }

    /// Serializes the complete mutable campaign state at the current tick
    /// boundary. Self-contained: carries the config and the post-scale
    /// city, so [`CampaignRunner::resume`] needs nothing else.
    pub fn checkpoint_value(&self) -> Value {
        let sys = self
            .sys
            .local()
            .expect("checkpoints require an in-process campaign (remote runs reject store hooks)");
        let sorted = |sets: &[FastHashSet<u64>]| -> Value {
            sets.iter()
                .map(|s| {
                    let mut ids: Vec<u64> = s.iter().copied().collect();
                    ids.sort_unstable();
                    ids
                })
                .collect::<Vec<_>>()
                .to_value()
        };
        Value::Map(vec![
            ("config".into(), self.cfg.to_value()),
            ("city".into(), self.city.to_value()),
            ("ticks_done".into(), (self.ticks_done as u64).to_value()),
            ("marketplace".into(), sys.marketplace.save_state()),
            ("limiter".into(), sys.api.limiter().to_value()),
            ("fault_rng".into(), sys.fault_rng().to_value()),
            ("transport".into(), sys.transport().to_value()),
            ("estimator".into(), self.estimator.to_value()),
            ("transitions".into(), self.transitions.save_state()),
            ("client_surge".into(), persist::f32_rows_to_bits(&self.client_surge)),
            ("client_ewt".into(), persist::f32_rows_to_bits(&self.client_ewt)),
            ("api_surge".into(), persist::f32_rows_to_bits(&self.api_surge)),
            ("api_ewt".into(), persist::f32_rows_to_bits(&self.api_ewt)),
            ("avg_visible".into(), persist::f32_rows_to_bits(&self.avg_visible)),
            ("daily_sets".into(), sorted(&self.daily_sets)),
            ("client_daily_cars".into(), self.client_daily_cars.to_value()),
            ("interval_sets".into(), sorted(&self.interval_sets)),
            ("interval_car_sum".into(), self.interval_car_sum.to_value()),
            ("interval_car_n".into(), self.interval_car_n.to_value()),
            ("interval_seen".into(), self.interval_seen.to_value()),
            ("inst_sum".into(), self.inst_sum.to_value()),
            ("inst_ticks".into(), self.inst_ticks.to_value()),
            ("ewt_sum".into(), self.ewt_sum.to_value()),
            ("ewt_n".into(), self.ewt_n.to_value()),
            ("client_delivered".into(), self.client_delivered.to_value()),
            ("probe_pending".into(), match &self.probe_pending {
                Some(m) => persist::f32s_to_bits(m),
                None => Value::Null,
            }),
            ("probe_limited_logged".into(), self.probe_limited_logged.to_value()),
        ])
    }

    /// Writes a checkpoint to `cfg.store.checkpoint_path` (atomic:
    /// written to a `.tmp` sibling, then renamed).
    pub fn write_checkpoint(&self) -> Result<(), StoreError> {
        let path = self.cfg.store.checkpoint_path.as_ref().ok_or_else(|| {
            StoreError::Schema("write_checkpoint: no checkpoint_path configured".into())
        })?;
        let _span = self.metrics.checkpoint_timer.start();
        self.metrics.checkpoints.incr();
        surgescope_store::write_checkpoint(path, self.cfg.config_hash(), &self.checkpoint_value())
    }

    /// Rebuilds a runner from [`CampaignRunner::checkpoint_value`] output.
    /// `parallelism` and `hooks` are runtime knobs supplied afresh — the
    /// continuation is bit-identical at any thread count. When
    /// `hooks.log_path` is set, the log's tick prefix is rewritten from
    /// the checkpointed series, so the finished log replays the *whole*
    /// campaign even though this process only ran its tail.
    pub fn resume(
        v: &Value,
        parallelism: usize,
        hooks: StoreHooks,
    ) -> Result<Self, StoreError> {
        let mut cfg = CampaignConfig::from_value(v.field("config")?)?;
        cfg.parallelism = parallelism.max(1);
        cfg.store = hooks;
        let city = CityModel::from_value(v.field("city")?)?;
        let (clients, client_area, area_polys, adjacency, centroids) =
            geometry(&city, &cfg);
        let n = clients.len();
        let n_areas = city.area_count();
        let ticks_total = (cfg.hours * 3600 / 5) as usize;
        let ticks_done = u64::from_value(v.field("ticks_done")?)? as usize;
        if ticks_done > ticks_total {
            return Err(StoreError::Schema(format!(
                "checkpoint at tick {ticks_done} beyond campaign horizon {ticks_total}"
            )));
        }

        let market_cfg =
            MarketplaceConfig { surge_policy: cfg.surge_policy, ..Default::default() };
        // The checkpointed city is already scaled; restore_state rebuilds
        // the world around it directly (no re-scaling).
        let mp = Marketplace::restore_state(city.clone(), market_cfg, v.field("marketplace")?)?;
        let mut api = ApiService::new(cfg.era, cfg.seed ^ 0xB0B5);
        api.set_limiter(RateLimiter::from_value(v.field("limiter")?)?);
        let mut sys = UberSystem::new(mp, api)
            .with_faults(cfg.faults, cfg.seed)
            .with_parallelism(cfg.parallelism);
        sys.set_fault_rng(SimRng::from_value(v.field("fault_rng")?)?);
        sys.set_transport(Transport::from_value(v.field("transport")?)?);
        let sys = SystemBackend::Local(sys);

        let estimator = SupplyDemandEstimator::from_value(v.field("estimator")?)?;
        let transitions =
            TransitionTracker::restore_state(area_polys, adjacency, v.field("transitions")?)?;

        let from_sets = |v: &Value| -> Result<Vec<FastHashSet<u64>>, serde::Error> {
            Ok(Vec::<Vec<u64>>::from_value(v)?
                .into_iter()
                .map(|ids| ids.into_iter().collect())
                .collect())
        };
        let client_surge = persist::bits_to_f32_rows(v.field("client_surge")?)?;
        let client_ewt = persist::bits_to_f32_rows(v.field("client_ewt")?)?;
        if client_surge.len() != n || client_ewt.len() != n {
            return Err(StoreError::Schema(format!(
                "checkpoint covers {} clients, lattice has {n}",
                client_surge.len()
            )));
        }
        if client_surge.iter().chain(&client_ewt).any(|s| s.len() != ticks_done) {
            return Err(StoreError::Schema(
                "checkpointed series length != ticks_done".into(),
            ));
        }

        let mut log = match &cfg.store.log_path {
            Some(p) => {
                // Rewrite the prefix the interrupted process had streamed:
                // the checkpointed series *is* those TICK records.
                let mut w = LogWriter::create(p, cfg.config_hash())?;
                for t in 0..ticks_done {
                    let surge_row: Vec<f32> =
                        client_surge.iter().map(|s| s[t]).collect();
                    let ewt_row: Vec<f32> = client_ewt.iter().map(|s| s[t]).collect();
                    w.append(persist::REC_TICK, &persist::tick_record(&surge_row, &ewt_row))?;
                }
                Some(w)
            }
            None => None,
        };
        // Registered last: the restore calls above installed fresh counter
        // cells in the system's layers. `store.log_bytes` credits the
        // rewritten prefix — it reports this process's writes.
        let metrics = RunnerMetrics::new(&sys, n, log.as_mut());

        Ok(CampaignRunner {
            city,
            clients,
            client_area,
            centroids,
            n_areas,
            sys,
            estimator,
            transitions,
            client_surge,
            client_ewt,
            api_surge: persist::bits_to_f32_rows(v.field("api_surge")?)?,
            api_ewt: persist::bits_to_f32_rows(v.field("api_ewt")?)?,
            avg_visible: persist::bits_to_f32_rows(v.field("avg_visible")?)?,
            daily_sets: from_sets(v.field("daily_sets")?)?,
            client_daily_cars: Vec::<Vec<u32>>::from_value(v.field("client_daily_cars")?)?,
            interval_sets: from_sets(v.field("interval_sets")?)?,
            interval_car_sum: Vec::<f64>::from_value(v.field("interval_car_sum")?)?,
            interval_car_n: Vec::<u64>::from_value(v.field("interval_car_n")?)?,
            interval_seen: Vec::<bool>::from_value(v.field("interval_seen")?)?,
            tick_area_sets: vec![FastHashSet::default(); n_areas],
            obs: Vec::new(),
            inst_sum: Vec::<f64>::from_value(v.field("inst_sum")?)?,
            inst_ticks: u64::from_value(v.field("inst_ticks")?)?,
            ewt_sum: Vec::<f64>::from_value(v.field("ewt_sum")?)?,
            ewt_n: Vec::<u64>::from_value(v.field("ewt_n")?)?,
            client_delivered: Vec::<u64>::from_value(v.field("client_delivered")?)?,
            probe_pending: match v.field("probe_pending")? {
                Value::Null => None,
                bits => Some(persist::bits_to_f32s(bits)?),
            },
            probe_limited_logged: bool::from_value(v.field("probe_limited_logged")?)?,
            ticks_total,
            ticks_done,
            log,
            cfg,
            metrics,
        })
    }

    /// Loads a checkpoint file and resumes from it. The file's recorded
    /// config hash is cross-checked against the restored config.
    pub fn resume_from_file(
        path: &Path,
        parallelism: usize,
        hooks: StoreHooks,
    ) -> Result<Self, StoreError> {
        let (hash, v) = surgescope_store::read_checkpoint(path)?;
        let runner = Self::resume(&v, parallelism, hooks)?;
        let expect = runner.cfg.config_hash();
        if hash != expect {
            return Err(StoreError::Schema(format!(
                "checkpoint config hash {hash:#018x} != restored config hash {expect:#018x}"
            )));
        }
        Ok(runner)
    }

    /// Finalizes the campaign: finishes the estimator, flushes the last
    /// partial day, computes the summary series, appends the FINISH
    /// record and seals the log. Panics if ticks remain (finishing early
    /// would silently truncate every series — call
    /// [`CampaignRunner::run_to_end`] first).
    pub fn finish(mut self) -> Result<CampaignData, StoreError> {
        assert_eq!(
            self.ticks_done, self.ticks_total,
            "finish() before the campaign horizon"
        );
        let end = self.sys.now();
        self.estimator.finish(end);
        // Flush a partial final day if any ids remain.
        if end.seconds_into_day() != 0 {
            for (i, set) in self.daily_sets.iter_mut().enumerate() {
                self.client_daily_cars[i].push(set.len() as u32);
                set.clear();
            }
        }

        let intervals = (self.cfg.hours * 12) as usize;
        // Delivered-ping denominators: gaps neither dilute the EWT mean
        // toward zero nor drag the interval density proxy down.
        let client_mean_ewt = self
            .ewt_sum
            .iter()
            .zip(&self.ewt_n)
            .map(|(s, &k)| s / k.max(1) as f64)
            .collect();
        let client_interval_cars = self
            .interval_car_sum
            .iter()
            .zip(&self.interval_car_n)
            .map(|(s, &k)| s / k.max(1) as f64)
            .collect();
        let truth = self.sys.into_truth()?;
        let data = CampaignData {
            city: self.city,
            clients: self.clients,
            client_area: self.client_area,
            estimator: self.estimator,
            client_surge: self.client_surge,
            client_ewt: self.client_ewt,
            api_surge: self.api_surge,
            api_ewt: self.api_ewt,
            avg_visible: self.avg_visible,
            transitions: self.transitions,
            client_daily_cars: self.client_daily_cars,
            client_interval_cars,
            client_mean_ewt,
            client_delivered: self.client_delivered,
            tick_secs: 5,
            ticks: self.ticks_done,
            intervals,
            truth,
        };
        if let Some(mut log) = self.log {
            log.append(persist::REC_FINISH, &persist::finish_value(&data))?;
            log.finish()?;
        }
        Ok(data)
    }
}

/// Closes one interval of the per-area mean instantaneous visible count.
fn avg_flush(series: &mut Vec<f32>, sum: &mut f64, ticks: u64) {
    series.push((*sum / ticks.max(1) as f64) as f32);
    *sum = 0.0;
}

/// Campaign runners.
pub struct Campaign;

impl Campaign {
    /// Runs a full measurement campaign against a simulated marketplace.
    ///
    /// Panics on store I/O errors — only possible when `cfg.store` hooks
    /// are enabled; callers that need to handle those use
    /// [`CampaignRunner`] directly.
    pub fn run_uber(city: CityModel, cfg: &CampaignConfig) -> CampaignData {
        let mut runner =
            CampaignRunner::new(city, cfg).expect("campaign store: open log");
        runner.run_to_end().expect("campaign store: stream log/checkpoints");
        runner.finish().expect("campaign store: seal log")
    }

    /// Runs the §3.5 validation campaign against a taxi replay. Returns
    /// the finished estimator and the replay's ground truth.
    pub fn run_taxi(
        trace: &TaxiTrace,
        region: Polygon,
        spacing_m: f64,
        hours: u64,
        seed: u64,
        estimator_cfg: EstimatorConfig,
    ) -> (SupplyDemandEstimator, TaxiGroundTruth) {
        let clients = placement(&region, spacing_m);
        let mut sys = TaxiSystem::new(trace, region.clone(), seed);
        let mut estimator = SupplyDemandEstimator::new(estimator_cfg, region, vec![]);
        let ticks = hours * 720;
        for _ in 0..ticks {
            sys.advance_tick();
            let now = sys.now();
            let state_t = now.saturating_sub(surgescope_simcore::SimDuration::secs(5));
            for blocks in sys.ping_all(&clients) {
                estimator.observe(state_t, &blocks);
            }
            estimator.end_tick(now);
        }
        let end = SimTime(ticks * 5);
        estimator.finish(end);
        (estimator, sys.replay().truth().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_taxi::TraceGenerator;

    fn small_campaign() -> CampaignData {
        Campaign::run_uber(
            CityModel::manhattan_midtown(),
            &CampaignConfig { hours: 2, ..CampaignConfig::test_default(21) },
        )
    }

    #[test]
    fn campaign_shapes_consistent() {
        let data = small_campaign();
        assert_eq!(data.clients.len(), data.client_surge.len());
        assert_eq!(data.ticks, 2 * 720);
        for s in &data.client_surge {
            assert_eq!(s.len(), data.ticks);
        }
        assert_eq!(data.api_surge.len(), data.city.area_count());
        for a in &data.api_surge {
            assert_eq!(a.len(), data.intervals, "one probe per interval");
        }
        // Every client sits in some surge area.
        assert!(data.client_area.iter().all(|a| a.is_some()));
    }

    #[test]
    fn campaign_measures_supply() {
        let data = small_campaign();
        let supply = data.estimator.supply_series(CarType::UberX);
        assert!(!supply.is_empty());
        // Midtown at 30% scale around midnight–2 a.m. still has UberX.
        assert!(supply.iter().any(|&s| s > 0), "no UberX ever observed");
    }

    #[test]
    fn campaign_truth_available() {
        let data = small_campaign();
        assert_eq!(
            data.truth.intervals.len(),
            data.intervals * data.city.area_count()
        );
    }

    #[test]
    fn clients_in_area_partition_fleet() {
        let data = small_campaign();
        let total: usize = (0..data.city.area_count())
            .map(|a| data.clients_in_area(a).len())
            .sum();
        assert_eq!(total, data.clients.len());
    }

    #[test]
    fn clean_campaign_has_no_gaps() {
        let data = small_campaign();
        assert!(
            data.client_surge.iter().flatten().all(|v| v.is_finite()),
            "a fault-free campaign must not contain NaN gaps"
        );
        for &d in &data.client_delivered {
            assert_eq!(d as usize, data.ticks, "every ping delivered");
        }
    }

    #[test]
    fn faulted_campaign_gaps_match_drop_rate() {
        let drop = 0.2;
        let cfg = CampaignConfig {
            hours: 1,
            faults: FaultPlan::lossy(drop),
            ..CampaignConfig::test_default(33)
        };
        let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
        let total = (data.ticks * data.clients.len()) as f64;
        let gaps = data
            .client_surge
            .iter()
            .flatten()
            .filter(|v| v.is_nan())
            .count();
        let rate = gaps as f64 / total;
        assert!(
            (rate - drop).abs() < 0.02,
            "NaN gap rate {rate} should track the drop chance {drop}"
        );
        for (i, s) in data.client_surge.iter().enumerate() {
            let delivered = s.iter().filter(|v| !v.is_nan()).count() as u64;
            assert_eq!(delivered, data.client_delivered[i], "client {i}");
            // Surge and EWT gap on exactly the same ticks.
            for (a, b) in s.iter().zip(&data.client_ewt[i]) {
                assert_eq!(a.is_nan(), b.is_nan());
            }
        }
        // Delivered-ping denominators keep the summaries finite and
        // undiluted (no fabricated 0.0-minute EWTs pulling means down).
        assert!(data.client_mean_ewt.iter().all(|m| m.is_finite()));
        assert!(data.client_interval_cars.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn metrics_snapshot_deterministic_across_parallelism() {
        let run = |parallelism: usize, faults: FaultPlan| {
            let cfg = CampaignConfig {
                hours: 1,
                parallelism,
                faults,
                ..CampaignConfig::test_default(44)
            };
            let mut r = CampaignRunner::new(CityModel::manhattan_midtown(), &cfg)
                .expect("memory-only runner");
            r.run_to_end().expect("no store configured");
            let snap = r.metrics_snapshot();
            r.finish().expect("no store configured");
            snap
        };
        for faults in [FaultPlan::none(), FaultPlan { drop_chance: 0.1, delay_chance: 0.2, max_delay_secs: 60 }] {
            let serial = run(1, faults);
            let fanned = run(4, faults);
            assert_eq!(
                serial.deterministic_json(),
                fanned.deterministic_json(),
                "deterministic metrics section must not depend on parallelism"
            );
            // Sanity: the counters describe the campaign that actually ran.
            let clients = serial.value("campaign.clients").unwrap();
            assert!(clients > 0);
            assert_eq!(serial.value("campaign.ticks"), Some(720));
            let delivered = serial.value("pings.delivered").unwrap();
            let delayed = serial.value("pings.delayed").unwrap();
            let dropped = serial.value("pings.dropped").unwrap();
            assert_eq!(delivered + delayed + dropped, clients * 720);
            assert_eq!(serial.value("transport.sent_delayed"), Some(delayed));
            if faults.is_none() {
                assert_eq!(serial.value("campaign.gaps"), Some(0));
                assert_eq!(dropped, 0);
            } else {
                assert!(dropped > 0 && delayed > 0);
                assert!(serial.value("campaign.gaps").unwrap() > 0);
            }
            // Wall-clock values never leak into the deterministic section.
            assert!(serial
                .deterministic
                .iter()
                .all(|(k, _)| !k.ends_with(".ns") && !k.ends_with(".calls")));
            assert!(serial.timing.iter().any(|(k, _)| k == "phase.move.ns"));
        }
    }

    #[test]
    fn taxi_validation_campaign_runs() {
        let city = CityModel::manhattan_midtown();
        let trace = TraceGenerator { taxis: 120, days: 1, ..Default::default() }
            .generate(&city, 31);
        let (est, truth) = Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            150.0,
            24,
            31,
            EstimatorConfig::default(),
        );
        assert_eq!(truth.supply.len(), 288);
        let measured: u32 = est.supply_series(CarType::UberT).iter().sum();
        assert!(measured > 0, "no taxis measured");
    }
}
