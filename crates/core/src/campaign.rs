//! Measurement campaigns (§3.3, §4.1).
//!
//! A campaign deploys a lattice of emulated clients over a city's
//! measurement region and runs them for days of simulated time, pinging
//! every 5 seconds. Observations stream into the estimators as they
//! arrive (the paper stored 996 GB of raw responses; we keep only what
//! the analyses need):
//!
//! * the supply/demand estimator ([`crate::estimate`]);
//! * per-client UberX surge and EWT series (the jitter and duration
//!   analyses need full 5-second resolution);
//! * one API probe per surge area per interval (the API stream is the
//!   jitter-free reference, §5.2–5.3);
//! * the driver transition tracker ([`crate::transitions`]);
//! * per-client daily unique-car counts and mean EWTs (the Fig. 9–10
//!   heatmaps).
//!
//! Because the measured system is simulated, the campaign also captures
//! the marketplace's ground truth — the paper validated against taxis
//! (§3.5, [`Campaign::run_taxi`]); we can additionally score every
//! estimator against the real answer.

use crate::calibration::placement;
use crate::estimate::{EstimatorConfig, SupplyDemandEstimator};
use crate::observe::{latest_of_type, ClientSpec};
use crate::systems::{MeasuredSystem, TaxiSystem, UberSystem};
use crate::transitions::TransitionTracker;
use std::collections::HashSet;
use surgescope_api::{ApiService, ProtocolEra};
use surgescope_city::{CarType, CityModel};
use surgescope_geo::Polygon;
use surgescope_marketplace::{GroundTruth, Marketplace, MarketplaceConfig};
use surgescope_simcore::{FaultPlan, SimTime};
use surgescope_taxi::{TaxiGroundTruth, TaxiTrace};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed for the whole run.
    pub seed: u64,
    /// Measured duration in hours (the paper ran 2 weeks per city; 72 h
    /// reproduces every distributional shape at a fraction of the cost).
    pub hours: u64,
    /// Protocol era the client fleet speaks.
    pub era: ProtocolEra,
    /// Estimator tuning.
    pub estimator: EstimatorConfig,
    /// Override the client lattice spacing (defaults to the city's).
    pub spacing_override_m: Option<f64>,
    /// Scale the city's fleet and demand (tests use ~0.3 for speed).
    pub scale: f64,
    /// Surge publication policy of the measured marketplace (`Threshold`
    /// is measured Uber; `Smoothed` evaluates the paper's §8 proposal —
    /// see the `ext01` experiment).
    pub surge_policy: surgescope_marketplace::SurgePolicy,
    /// Worker threads for the per-tick client fan-out (1 = serial). The
    /// observation series is bit-identical at any value; this only trades
    /// wall time.
    pub parallelism: usize,
    /// Transport fault injection on client pings ([`FaultPlan::none`] by
    /// default). Dropped pings leave `NaN` gaps in the per-client series;
    /// delayed pings arrive ticks late carrying send-time content.
    pub faults: FaultPlan,
}

impl CampaignConfig {
    /// A fast configuration for tests: scaled-down city, short horizon.
    pub fn test_default(seed: u64) -> Self {
        CampaignConfig {
            seed,
            hours: 6,
            era: ProtocolEra::Apr2015,
            estimator: EstimatorConfig::default(),
            spacing_override_m: None,
            scale: 0.3,
            surge_policy: surgescope_marketplace::SurgePolicy::Threshold,
            parallelism: 1,
            faults: FaultPlan::none(),
        }
    }

    /// The full-fidelity configuration used by the experiment harness.
    pub fn paper_default(seed: u64, era: ProtocolEra, hours: u64) -> Self {
        CampaignConfig {
            seed,
            hours,
            era,
            estimator: EstimatorConfig::default(),
            spacing_override_m: None,
            scale: 1.0,
            surge_policy: surgescope_marketplace::SurgePolicy::Threshold,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            faults: FaultPlan::none(),
        }
    }
}

/// Everything a campaign produces.
pub struct CampaignData {
    /// The city measured (post-scaling).
    pub city: CityModel,
    /// The client lattice.
    pub clients: Vec<ClientSpec>,
    /// Surge area of each client (by lattice position).
    pub client_area: Vec<Option<usize>>,
    /// Finished supply/demand estimator.
    pub estimator: SupplyDemandEstimator,
    /// `[client][tick]` UberX multiplier seen in pings. A tick on which
    /// the client received no response (dropped or still-in-flight ping)
    /// records `f32::NAN` — a gap, never a fabricated 1.0×.
    pub client_surge: Vec<Vec<f32>>,
    /// `[client][tick]` UberX EWT (minutes) seen in pings. Undelivered
    /// ticks record `f32::NAN` (see [`CampaignData::client_surge`]).
    pub client_ewt: Vec<Vec<f32>>,
    /// `[area][interval]` UberX multiplier from the API probe.
    pub api_surge: Vec<Vec<f32>>,
    /// `[area][interval]` UberX EWT (minutes) at the area centroid.
    pub api_ewt: Vec<Vec<f32>>,
    /// `[area][interval]` mean *instantaneous* visible UberX count — the
    /// per-ping car count averaged over the window, which is how §5.4
    /// constructs its supply series ("averaging each quantity over the
    /// 5-minute window"). Unlike the unique-ID union it dips when cars
    /// get booked, which is what the (supply − demand) correlation keys
    /// on.
    pub avg_visible: Vec<Vec<f32>>,
    /// Driver transition tally.
    pub transitions: TransitionTracker,
    /// `[client][day]` unique UberX ids seen.
    pub client_daily_cars: Vec<Vec<u32>>,
    /// Mean unique UberX ids seen per 5-minute interval, per client —
    /// a spatial density proxy (the per-day counts homogenize once every
    /// car has wandered past every client). Intervals in which the client
    /// received no ping at all are excluded from the denominator.
    pub client_interval_cars: Vec<f64>,
    /// Mean UberX EWT per client over the whole campaign, averaged over
    /// *delivered* pings only — gaps do not dilute the mean toward zero.
    pub client_mean_ewt: Vec<f64>,
    /// Delivered-ping count per client (ticks whose response actually
    /// reached the client, fresh or late). `ticks - client_delivered[i]`
    /// is the number of `NaN` gaps in that client's series.
    pub client_delivered: Vec<u64>,
    /// Simulation tick length (5 s).
    pub tick_secs: u64,
    /// Total ticks run.
    pub ticks: usize,
    /// Closed 5-minute intervals.
    pub intervals: usize,
    /// Marketplace ground truth (what the paper could not see).
    pub truth: GroundTruth,
}

impl CampaignData {
    /// Per-area measured UberX surge series at interval resolution,
    /// taken from the API probe (jitter-free by construction).
    pub fn area_surge_series(&self, area: usize) -> &[f32] {
        &self.api_surge[area]
    }

    /// Clients located in `area`.
    pub fn clients_in_area(&self, area: usize) -> Vec<usize> {
        self.client_area
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(area))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Offset into each interval at which the API probe fires: past the
/// maximum API propagation delay (40 s) so the probe reads the interval's
/// settled multiplier.
const PROBE_OFFSET_SECS: u64 = 45;

/// Campaign runners.
pub struct Campaign;

impl Campaign {
    /// Runs a full measurement campaign against a simulated marketplace.
    pub fn run_uber(mut city: CityModel, cfg: &CampaignConfig) -> CampaignData {
        if (cfg.scale - 1.0).abs() > 1e-9 {
            city.supply = city.supply.scaled(cfg.scale);
            city.demand = city.demand.scaled(cfg.scale);
        }
        let spacing = cfg.spacing_override_m.unwrap_or(city.client_spacing_m);
        let clients = placement(&city.measurement_region, spacing);
        let client_area: Vec<Option<usize>> =
            clients.iter().map(|c| city.area_of(c.position).map(|a| a.0)).collect();
        let n_areas = city.area_count();
        let area_polys: Vec<Polygon> =
            city.areas.iter().map(|a| a.polygon.clone()).collect();
        let adjacency: Vec<Vec<usize>> = city
            .adjacency
            .iter()
            .map(|v| v.iter().map(|a| a.0).collect())
            .collect();
        let centroids: Vec<_> = area_polys.iter().map(|p| p.centroid()).collect();

        let market_cfg =
            MarketplaceConfig { surge_policy: cfg.surge_policy, ..Default::default() };
        let mp = Marketplace::new(city.clone(), market_cfg, cfg.seed);
        let api = ApiService::new(cfg.era, cfg.seed ^ 0xB0B5);
        let mut sys = UberSystem::new(mp, api)
            .with_faults(cfg.faults, cfg.seed)
            .with_parallelism(cfg.parallelism);

        let mut estimator = SupplyDemandEstimator::new(
            cfg.estimator,
            city.measurement_region.clone(),
            area_polys.clone(),
        );
        let mut transitions = TransitionTracker::new(area_polys, adjacency);

        let n = clients.len();
        let ticks = (cfg.hours * 3600 / 5) as usize;
        let mut client_surge = vec![Vec::with_capacity(ticks); n];
        let mut client_ewt = vec![Vec::with_capacity(ticks); n];
        let mut api_surge = vec![Vec::new(); n_areas];
        let mut api_ewt = vec![Vec::new(); n_areas];
        let mut daily_sets: Vec<HashSet<u64>> = vec![HashSet::new(); n];
        let mut client_daily_cars: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut interval_sets: Vec<HashSet<u64>> = vec![HashSet::new(); n];
        let mut interval_car_sum = vec![0.0f64; n];
        // Per-client count of intervals with at least one delivered ping;
        // an interval the client never heard from is a gap, not a zero.
        let mut interval_car_n = vec![0u64; n];
        let mut interval_seen = vec![false; n];
        let mut avg_visible = vec![Vec::new(); n_areas];
        let mut tick_area_sets: Vec<HashSet<u64>> = vec![HashSet::new(); n_areas];
        let mut inst_sum = vec![0.0f64; n_areas];
        let mut inst_ticks = 0u64;
        let mut ewt_sum = vec![0.0f64; n];
        let mut ewt_n = vec![0u64; n];
        let mut client_delivered = vec![0u64; n];
        let mut probe_pending: Option<Vec<f32>> = None;
        let mut probe_limited_logged = false;

        for _ in 0..ticks {
            sys.advance_tick();
            let now = sys.now();
            // The tick advanced the world from `state_t` to `now`; the
            // observations describe the state at `state_t`. Stamping them
            // with `now` would smear each interval's last tick into the
            // next interval and inflate per-interval unique counts.
            let state_t = now.saturating_sub(surgescope_simcore::SimDuration::secs(5));
            let obs = sys.ping_all(&clients);
            for (i, blocks) in obs.iter().enumerate() {
                estimator.observe(state_t, blocks);
                // Every delivered UberX block contributes car sightings —
                // a late block re-reports its send-time positions, exactly
                // as the client's log would. The *displayed* surge/EWT is
                // the last block to arrive this tick (fresh first, then
                // late sends in order — stale data displaces fresh).
                for x in blocks.iter().filter(|b| b.car_type == CarType::UberX) {
                    for car in &x.cars {
                        daily_sets[i].insert(car.id);
                        interval_sets[i].insert(car.id);
                        transitions.observe(car.id, car.position);
                        if let Some(a) = city.area_of(car.position) {
                            tick_area_sets[a.0].insert(car.id);
                        }
                    }
                }
                if let Some(x) = latest_of_type(blocks, CarType::UberX) {
                    client_surge[i].push(x.surge as f32);
                    client_ewt[i].push(x.ewt_min as f32);
                    ewt_sum[i] += x.ewt_min;
                    ewt_n[i] += 1;
                    client_delivered[i] += 1;
                    interval_seen[i] = true;
                } else {
                    // No response reached this client this tick (dropped
                    // or still in flight): a gap, never a fabricated 1.0×.
                    client_surge[i].push(f32::NAN);
                    client_ewt[i].push(f32::NAN);
                }
            }
            estimator.end_tick(now);
            for (a, set) in tick_area_sets.iter_mut().enumerate() {
                inst_sum[a] += set.len() as f64;
                set.clear();
            }
            inst_ticks += 1;

            // API probe once per interval, after the propagation delay.
            if now.seconds_into_surge_interval() == PROBE_OFFSET_SECS {
                let snap = surgescope_api::WorldSnapshot::of(&sys.marketplace);
                let mut this_interval = Vec::with_capacity(n_areas);
                for (ai, centroid) in centroids.iter().enumerate() {
                    let loc = city.projection.to_latlng(*centroid);
                    let account = 1_000_000 + ai as u64;
                    // The probe budget sits far below the rate limit, but
                    // a throttled probe must degrade to a gap — one NaN
                    // interval — rather than abort a multi-day campaign.
                    let mut limited = |e: &dyn std::fmt::Display| {
                        if !probe_limited_logged {
                            eprintln!(
                                "campaign: API probe rate-limited ({e}); \
                                 recording NaN for the affected intervals"
                            );
                            probe_limited_logged = true;
                        }
                        f64::NAN
                    };
                    let surge = match sys.api.estimates_price(&snap, account, loc) {
                        Ok(prices) => prices
                            .iter()
                            .find(|p| p.car_type == CarType::UberX)
                            .map_or(1.0, |p| p.surge_multiplier),
                        Err(e) => limited(&e),
                    };
                    let ewt = match sys.api.estimates_time(&snap, account, loc) {
                        Ok(times) => times
                            .iter()
                            .find(|t| t.car_type == CarType::UberX)
                            .map_or(0.0, |t| t.estimate_secs as f64 / 60.0),
                        Err(e) => limited(&e),
                    };
                    api_surge[ai].push(surge as f32);
                    api_ewt[ai].push(ewt as f32);
                    this_interval.push(surge as f32);
                }
                probe_pending = Some(this_interval);
            }

            // Interval boundary: close the transition tally with the
            // multipliers measured *during* the closed interval, and
            // flush the per-client interval car sets.
            if now.seconds_into_surge_interval() == 0 {
                if let Some(m) = probe_pending.take() {
                    let m64: Vec<f64> = m.iter().map(|x| *x as f64).collect();
                    transitions.close_interval(&m64);
                }
                for (i, set) in interval_sets.iter_mut().enumerate() {
                    // Only intervals with at least one delivered ping
                    // count: a silent interval is missing data, and a
                    // zero would bias the density proxy downward.
                    if interval_seen[i] {
                        interval_car_sum[i] += set.len() as f64;
                        interval_car_n[i] += 1;
                    }
                    interval_seen[i] = false;
                    set.clear();
                }
                for a in 0..n_areas {
                    avg_visible[a].push((inst_sum[a] / inst_ticks.max(1) as f64) as f32);
                    inst_sum[a] = 0.0;
                }
                inst_ticks = 0;
            }

            // Day boundary: flush per-client unique-car counts.
            if now.seconds_into_day() == 0 && now.as_secs() > 0 {
                for (i, set) in daily_sets.iter_mut().enumerate() {
                    client_daily_cars[i].push(set.len() as u32);
                    set.clear();
                }
            }
        }
        let end = sys.now();
        estimator.finish(end);
        // Flush a partial final day if any ids remain.
        if end.seconds_into_day() != 0 {
            for (i, set) in daily_sets.iter_mut().enumerate() {
                client_daily_cars[i].push(set.len() as u32);
                set.clear();
            }
        }

        let intervals = (cfg.hours * 12) as usize;
        // Delivered-ping denominators: gaps neither dilute the EWT mean
        // toward zero nor drag the interval density proxy down.
        let client_mean_ewt = ewt_sum
            .iter()
            .zip(&ewt_n)
            .map(|(s, &k)| s / k.max(1) as f64)
            .collect();
        let client_interval_cars = interval_car_sum
            .iter()
            .zip(&interval_car_n)
            .map(|(s, &k)| s / k.max(1) as f64)
            .collect();
        CampaignData {
            city,
            clients,
            client_area,
            estimator,
            client_surge,
            client_ewt,
            api_surge,
            api_ewt,
            avg_visible,
            transitions,
            client_daily_cars,
            client_interval_cars,
            client_mean_ewt,
            client_delivered,
            tick_secs: 5,
            ticks,
            intervals,
            truth: sys.marketplace.into_truth(),
        }
    }

    /// Runs the §3.5 validation campaign against a taxi replay. Returns
    /// the finished estimator and the replay's ground truth.
    pub fn run_taxi(
        trace: &TaxiTrace,
        region: Polygon,
        spacing_m: f64,
        hours: u64,
        seed: u64,
        estimator_cfg: EstimatorConfig,
    ) -> (SupplyDemandEstimator, TaxiGroundTruth) {
        let clients = placement(&region, spacing_m);
        let mut sys = TaxiSystem::new(trace, region.clone(), seed);
        let mut estimator = SupplyDemandEstimator::new(estimator_cfg, region, vec![]);
        let ticks = hours * 720;
        for _ in 0..ticks {
            sys.advance_tick();
            let now = sys.now();
            let state_t = now.saturating_sub(surgescope_simcore::SimDuration::secs(5));
            for blocks in sys.ping_all(&clients) {
                estimator.observe(state_t, &blocks);
            }
            estimator.end_tick(now);
        }
        let end = SimTime(ticks * 5);
        estimator.finish(end);
        (estimator, sys.replay().truth().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_taxi::TraceGenerator;

    fn small_campaign() -> CampaignData {
        Campaign::run_uber(
            CityModel::manhattan_midtown(),
            &CampaignConfig { hours: 2, ..CampaignConfig::test_default(21) },
        )
    }

    #[test]
    fn campaign_shapes_consistent() {
        let data = small_campaign();
        assert_eq!(data.clients.len(), data.client_surge.len());
        assert_eq!(data.ticks, 2 * 720);
        for s in &data.client_surge {
            assert_eq!(s.len(), data.ticks);
        }
        assert_eq!(data.api_surge.len(), data.city.area_count());
        for a in &data.api_surge {
            assert_eq!(a.len(), data.intervals, "one probe per interval");
        }
        // Every client sits in some surge area.
        assert!(data.client_area.iter().all(|a| a.is_some()));
    }

    #[test]
    fn campaign_measures_supply() {
        let data = small_campaign();
        let supply = data.estimator.supply_series(CarType::UberX);
        assert!(!supply.is_empty());
        // Midtown at 30% scale around midnight–2 a.m. still has UberX.
        assert!(supply.iter().any(|&s| s > 0), "no UberX ever observed");
    }

    #[test]
    fn campaign_truth_available() {
        let data = small_campaign();
        assert_eq!(
            data.truth.intervals.len(),
            data.intervals * data.city.area_count()
        );
    }

    #[test]
    fn clients_in_area_partition_fleet() {
        let data = small_campaign();
        let total: usize = (0..data.city.area_count())
            .map(|a| data.clients_in_area(a).len())
            .sum();
        assert_eq!(total, data.clients.len());
    }

    #[test]
    fn clean_campaign_has_no_gaps() {
        let data = small_campaign();
        assert!(
            data.client_surge.iter().flatten().all(|v| v.is_finite()),
            "a fault-free campaign must not contain NaN gaps"
        );
        for &d in &data.client_delivered {
            assert_eq!(d as usize, data.ticks, "every ping delivered");
        }
    }

    #[test]
    fn faulted_campaign_gaps_match_drop_rate() {
        let drop = 0.2;
        let cfg = CampaignConfig {
            hours: 1,
            faults: FaultPlan::lossy(drop),
            ..CampaignConfig::test_default(33)
        };
        let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
        let total = (data.ticks * data.clients.len()) as f64;
        let gaps = data
            .client_surge
            .iter()
            .flatten()
            .filter(|v| v.is_nan())
            .count();
        let rate = gaps as f64 / total;
        assert!(
            (rate - drop).abs() < 0.02,
            "NaN gap rate {rate} should track the drop chance {drop}"
        );
        for (i, s) in data.client_surge.iter().enumerate() {
            let delivered = s.iter().filter(|v| !v.is_nan()).count() as u64;
            assert_eq!(delivered, data.client_delivered[i], "client {i}");
            // Surge and EWT gap on exactly the same ticks.
            for (a, b) in s.iter().zip(&data.client_ewt[i]) {
                assert_eq!(a.is_nan(), b.is_nan());
            }
        }
        // Delivered-ping denominators keep the summaries finite and
        // undiluted (no fabricated 0.0-minute EWTs pulling means down).
        assert!(data.client_mean_ewt.iter().all(|m| m.is_finite()));
        assert!(data.client_interval_cars.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn taxi_validation_campaign_runs() {
        let city = CityModel::manhattan_midtown();
        let trace = TraceGenerator { taxis: 120, days: 1, ..Default::default() }
            .generate(&city, 31);
        let (est, truth) = Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            150.0,
            24,
            31,
            EstimatorConfig::default(),
        );
        assert_eq!(truth.supply.len(), 288);
        let measured: u32 = est.supply_series(CarType::UberT).iter().sum();
        assert!(measured > 0, "no taxis measured");
    }
}
