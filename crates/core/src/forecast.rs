//! Surge forecasting (§5.4, Table 1).
//!
//! Three linear models predict the next interval's multiplier from the
//! current interval's `(supply − demand, EWT, multiplier)`:
//!
//! * **Raw** — fitted on the full (cleaned) series;
//! * **Threshold** — only on rows whose current multiplier is > 1 ("we
//!   know less about the state of the system when surge is 1");
//! * **Rush** — only rush-hour rows (6–10 a.m., 4–8 p.m.).
//!
//! Cleaning (paper footnote 7): rows whose *target* is 1 are dropped
//! before fitting — predicting "no surge" is trivially easy and would
//! inflate R² — except when the interval directly precedes or follows a
//! surged one.

use surgescope_analysis::ols::{self, OlsFit};
use surgescope_simcore::SimTime;

/// Which Table 1 column a dataset corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFilter {
    /// Full cleaned series.
    Raw,
    /// Only rows with current multiplier > 1.
    Threshold,
    /// Only rush-hour rows.
    Rush,
}

impl ModelFilter {
    /// Display label matching the paper's table.
    pub fn label(self) -> &'static str {
        match self {
            ModelFilter::Raw => "Raw",
            ModelFilter::Threshold => "Threshold",
            ModelFilter::Rush => "Rush",
        }
    }
}

/// One fitted Table 1 cell.
#[derive(Debug, Clone)]
pub struct ForecastFit {
    /// θ for (supply − demand).
    pub theta_sd_diff: f64,
    /// θ for EWT.
    pub theta_ewt: f64,
    /// θ for the previous multiplier.
    pub theta_prev_surge: f64,
    /// In-sample R².
    pub r2: f64,
    /// Rows used.
    pub n: usize,
}

/// Builds the regression rows for one surge area.
///
/// Inputs are per-interval series of equal length: measured supply,
/// measured deaths (demand), mean EWT and the multiplier. Row `t`
/// predicts `surge[t+1]` from interval `t`'s features.
pub fn build_rows(
    supply: &[u32],
    demand: &[u32],
    ewt: &[f32],
    surge: &[f32],
    filter: ModelFilter,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = supply.len().min(demand.len()).min(ewt.len()).min(surge.len());
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for t in 0..n.saturating_sub(1) {
        let y = surge[t + 1] as f64;
        let cur = surge[t] as f64;
        // Footnote 7: drop target==1 rows unless adjacent to a surge.
        if y <= 1.0 {
            let prev_surged = cur > 1.0;
            let next_surged = t + 2 < n && surge[t + 2] > 1.0;
            if !prev_surged && !next_surged {
                continue;
            }
        }
        match filter {
            ModelFilter::Raw => {}
            ModelFilter::Threshold => {
                if cur <= 1.0 {
                    continue;
                }
            }
            ModelFilter::Rush => {
                let start = SimTime((t as u64) * 300);
                if !start.is_rush_hour() {
                    continue;
                }
            }
        }
        rows.push(vec![supply[t] as f64 - demand[t] as f64, ewt[t] as f64, cur]);
        ys.push(y);
    }
    (rows, ys)
}

/// Fits one Table 1 cell from pre-built rows. `None` when the filtered
/// dataset is too small or singular.
pub fn fit(rows: &[Vec<f64>], ys: &[f64]) -> Option<ForecastFit> {
    let OlsFit { model, r2, n } = ols::fit(rows, ys)?;
    Some(ForecastFit {
        theta_sd_diff: model.coeffs[0],
        theta_ewt: model.coeffs[1],
        theta_prev_surge: model.coeffs[2],
        r2,
        n,
    })
}

/// Convenience: builds rows for several areas, concatenates, fits.
pub fn fit_city(
    per_area: &[(Vec<u32>, Vec<u32>, Vec<f32>, Vec<f32>)],
    filter: ModelFilter,
) -> Option<ForecastFit> {
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for (supply, demand, ewt, surge) in per_area {
        let (mut r, mut y) = build_rows(supply, demand, ewt, surge, filter);
        rows.append(&mut r);
        ys.append(&mut y);
    }
    fit(&rows, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic area where surge follows a noisy linear rule, so the
    /// fit should recover positive prev-surge dependence and R² ∈ (0, 1).
    fn synthetic_area(len: usize) -> (Vec<u32>, Vec<u32>, Vec<f32>, Vec<f32>) {
        let mut supply = Vec::with_capacity(len);
        let mut demand = Vec::with_capacity(len);
        let mut ewt = Vec::with_capacity(len);
        let mut surge = Vec::with_capacity(len);
        let mut m: f32 = 1.0;
        for t in 0..len {
            let s = 20 + ((t * 13) % 17) as u32;
            let d = 10 + ((t * 7919) % 23) as u32;
            let w = 3.0 + ((t * 31) % 7) as f32;
            supply.push(s);
            demand.push(d);
            ewt.push(w);
            surge.push(m);
            // Next multiplier: depends on slack and EWT plus hash noise.
            let slack = s as f32 - d as f32;
            let noise = (((t * 2654435761) % 100) as f32 - 50.0) / 200.0;
            m = (1.0 + (8.0 - slack * 0.1).max(0.0) * 0.05 + (w - 4.0).max(0.0) * 0.08 + noise)
                .clamp(1.0, 3.0);
            m = (m * 10.0).round() / 10.0;
        }
        (supply, demand, ewt, surge)
    }

    #[test]
    fn build_rows_drops_trivial_no_surge_rows() {
        let supply = vec![10u32; 10];
        let demand = vec![5u32; 10];
        let ewt = vec![3.0f32; 10];
        // Flat 1.0 series: everything is a trivial row.
        let surge = vec![1.0f32; 10];
        let (rows, ys) = build_rows(&supply, &demand, &ewt, &surge, ModelFilter::Raw);
        assert!(rows.is_empty() && ys.is_empty());
    }

    #[test]
    fn build_rows_keeps_surge_boundaries() {
        let supply = vec![10u32; 6];
        let demand = vec![5u32; 6];
        let ewt = vec![3.0f32; 6];
        // One surged interval at t=3.
        let surge = vec![1.0, 1.0, 1.0, 1.8, 1.0, 1.0];
        let (rows, ys) = build_rows(&supply, &demand, &ewt, &surge, ModelFilter::Raw);
        // Kept rows: t=2 (y=1.8), t=3 (y=1, prev surged), t=1 (y=1 but
        // next-next surged per footnote-7 adjacency).
        assert_eq!(rows.len(), ys.len());
        assert!(ys.iter().any(|y| (y - 1.8).abs() < 1e-6));
        assert_eq!(rows.len(), 3, "rows: {ys:?}");
    }

    #[test]
    fn threshold_filter_stricter_than_raw() {
        let area = synthetic_area(2000);
        let (raw_rows, _) = build_rows(&area.0, &area.1, &area.2, &area.3, ModelFilter::Raw);
        let (thr_rows, _) =
            build_rows(&area.0, &area.1, &area.2, &area.3, ModelFilter::Threshold);
        assert!(thr_rows.len() < raw_rows.len());
        assert!(!thr_rows.is_empty());
    }

    #[test]
    fn rush_filter_selects_rush_hours() {
        let area = synthetic_area(2000);
        let (rows, _) = build_rows(&area.0, &area.1, &area.2, &area.3, ModelFilter::Rush);
        // 8 of 24 hours are rush: roughly a third of the rows, give or
        // take the surge-dependent cleaning.
        let (raw_rows, _) = build_rows(&area.0, &area.1, &area.2, &area.3, ModelFilter::Raw);
        assert!(!rows.is_empty());
        assert!(rows.len() < raw_rows.len());
    }

    #[test]
    fn fit_recovers_signal_but_not_perfectly() {
        let area = synthetic_area(3000);
        let fit = fit_city(&[area], ModelFilter::Raw).expect("fit");
        assert!(fit.n > 100);
        // The synthetic rule has noise: R² must be informative but < 1 —
        // the paper's central finding is that forecasting is hard.
        assert!(fit.r2 > 0.05 && fit.r2 < 0.95, "r2={}", fit.r2);
    }

    #[test]
    fn fit_none_on_degenerate_data() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 1.0, 1.0]; 5];
        let ys = vec![1.0; 5];
        assert!(fit(&rows, &ys).is_none(), "constant predictors are singular");
    }
}
