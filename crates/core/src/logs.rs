//! Observation logs.
//!
//! The paper collected 391 GB + 605 GB of raw JSON responses and analysed
//! them offline (§4.1). This module provides the same workflow for our
//! campaigns: stream [`PingObservation`]s to a JSON-lines sink as they
//! arrive, and replay a log back through the estimators later — useful
//! for sharing captured datasets and for re-running analyses with
//! different estimator tunings without re-simulating.

use crate::observe::PingObservation;
use std::io::{self, BufRead, Write};

/// Streams observations to any writer as JSON lines.
pub struct JsonlLogWriter<W: Write> {
    sink: W,
    written: u64,
}

impl<W: Write> JsonlLogWriter<W> {
    /// Wraps a sink (wrap files in `BufWriter` for throughput).
    pub fn new(sink: W) -> Self {
        JsonlLogWriter { sink, written: 0 }
    }

    /// Appends one observation as a single JSON line.
    pub fn write(&mut self, obs: &PingObservation) -> io::Result<()> {
        let line = serde_json::to_string(obs)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Number of observations written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the inner sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads a JSONL observation log, yielding observations in order.
///
/// Malformed lines are surfaced as errors rather than skipped — a
/// truncated capture should fail loudly, not silently bias the analysis.
pub fn read_jsonl<R: BufRead>(source: R) -> impl Iterator<Item = io::Result<PingObservation>> {
    source.lines().filter_map(|line| match line {
        Err(e) => Some(Err(e)),
        Ok(l) if l.trim().is_empty() => None,
        Ok(l) => Some(
            serde_json::from_str(&l)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        ),
    })
}

/// Replays a log through a [`SupplyDemandEstimator`]
/// (offline re-analysis). Observations must be in nondecreasing time
/// order, as written by a campaign. Returns the number of observations
/// replayed.
pub fn replay_into(
    estimator: &mut crate::estimate::SupplyDemandEstimator,
    observations: impl IntoIterator<Item = PingObservation>,
) -> u64 {
    use surgescope_simcore::{SimDuration, SimTime};
    let mut n = 0u64;
    let mut last: Option<SimTime> = None;
    for obs in observations {
        if let Some(prev) = last {
            assert!(obs.at >= prev, "observations out of order");
            if obs.at > prev {
                // Close out every tick boundary we skipped past.
                let mut t = prev;
                while t < obs.at {
                    t = t + SimDuration::secs(5);
                    estimator.end_tick(t);
                }
            }
        }
        estimator.observe(obs.at, &obs.types);
        last = Some(obs.at);
        n += 1;
    }
    if let Some(t) = last {
        estimator.finish(t + SimDuration::secs(5));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{EstimatorConfig, SupplyDemandEstimator};
    use crate::observe::{ObservedCar, TypeObservation};
    use std::io::BufReader;
    use surgescope_city::CarType;
    use surgescope_geo::{Meters, Polygon};
    use surgescope_simcore::SimTime;

    fn obs(at: u64, client: usize, id: u64) -> PingObservation {
        PingObservation {
            at: SimTime(at),
            client,
            types: vec![TypeObservation {
                car_type: CarType::UberX,
                cars: vec![ObservedCar {
                    id,
                    position: Meters::new(1000.0, 1000.0),
                    displacement: None,
                }],
                ewt_min: 2.5,
                surge: 1.0,
            }],
        }
    }

    #[test]
    fn roundtrip_through_jsonl() {
        let mut w = JsonlLogWriter::new(Vec::new());
        let records: Vec<_> = (0..10).map(|i| obs(i * 5, 0, 42)).collect();
        for r in &records {
            w.write(r).unwrap();
        }
        assert_eq!(w.written(), 10);
        let bytes = w.finish().unwrap();
        let back: Vec<PingObservation> = read_jsonl(BufReader::new(&bytes[..]))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn reader_rejects_garbage() {
        let data = b"{\"not\": \"an observation\"}\n";
        let results: Vec<_> = read_jsonl(BufReader::new(&data[..])).collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn reader_skips_blank_lines() {
        let mut w = JsonlLogWriter::new(Vec::new());
        w.write(&obs(0, 0, 1)).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.extend_from_slice(b"\n\n");
        let back: Vec<_> = read_jsonl(BufReader::new(&bytes[..]))
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn replay_reproduces_live_estimates() {
        let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(2000.0, 2000.0));
        // A car visible for 10 minutes then gone (an interior death).
        let log: Vec<PingObservation> = (0..240)
            .filter(|k| *k < 120)
            .map(|k| obs(k * 5, 0, 7))
            .collect();

        // Live path.
        let mut live = SupplyDemandEstimator::new(
            EstimatorConfig::default(),
            region.clone(),
            vec![],
        );
        let mut t = 0u64;
        for o in &log {
            while t < o.at.as_secs() {
                t += 5;
                live.end_tick(SimTime(t));
            }
            live.observe(o.at, &o.types);
        }
        // Run the clock well past the grace period so the death lands.
        while t < 1200 {
            t += 5;
            live.end_tick(SimTime(t));
        }
        live.finish(SimTime(t));

        // Log-replay path (through serialization).
        let mut w = JsonlLogWriter::new(Vec::new());
        for o in &log {
            w.write(o).unwrap();
        }
        let bytes = w.finish().unwrap();
        let parsed: Vec<PingObservation> = read_jsonl(BufReader::new(&bytes[..]))
            .collect::<Result<_, _>>()
            .unwrap();
        let mut replayed = SupplyDemandEstimator::new(
            EstimatorConfig::default(),
            region,
            vec![],
        );
        let n = replay_into(&mut replayed, parsed);
        assert_eq!(n, 120);

        assert_eq!(
            live.supply_series(CarType::UberX)[..2].to_vec(),
            replayed.supply_series(CarType::UberX)[..2].to_vec(),
        );
        assert_eq!(live.lifespans, replayed.lifespans);
        // The live path, run longer, sees the death; the replay ends at
        // the last observation so the car is still within grace there.
        assert_eq!(live.death_events.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn replay_rejects_time_travel() {
        let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(100.0, 100.0));
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region, vec![]);
        let _ = replay_into(&mut est, vec![obs(100, 0, 1), obs(50, 0, 1)]);
    }
}
