//! Supply and demand estimation from client observations (§3.3).
//!
//! * **Supply** is the number of unique car IDs observed across all
//!   clients per 5-minute interval — an upper bound on the true count,
//!   since IDs are randomized each time a car comes online.
//! * **Fulfilled demand** is estimated from *deaths*: cars that disappear
//!   from the observed stream. A disappearance can also mean the car drove
//!   out of the measurement area or went offline, so the estimator applies
//!   the paper's **edge filter** (disappearances near the boundary of the
//!   measurement polygon are not counted) and treats the result as an
//!   upper bound on fulfilled demand.
//! * **Short-lived cars** — briefly glimpsed near the measurement
//!   boundary, or with IDs that flickered — are filtered entirely (§4.1).
//! * Per-ID **lifespans** feed the Fig. 7 CDFs.

use crate::observe::TypeObservation;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::HashMap;
use surgescope_simcore::{FastHashMap, FastHashSet};
use surgescope_city::CarType;
use surgescope_geo::{Meters, Polygon};
use surgescope_simcore::SimTime;

/// Estimator tuning.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// A car unseen for this long is declared dead (the ping cadence is
    /// 5 s; a small grace absorbs transport faults).
    pub death_grace_secs: u64,
    /// Deaths within this distance of the measurement boundary are
    /// discarded (the car may simply have driven out).
    pub edge_margin_m: f64,
    /// Cars observed for less than this are dropped from all statistics.
    pub short_lived_secs: u64,
    /// When true (default), a near-edge disappearance is only discarded
    /// if the car's path vector shows it heading outward — the paper
    /// disambiguates "drove out" via path vectors (§3.3). When false, all
    /// near-edge disappearances are discarded (footnote-4 conservative
    /// mode).
    pub edge_requires_outbound: bool,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            death_grace_secs: 15,
            edge_margin_m: 150.0,
            short_lived_secs: 90,
            edge_requires_outbound: true,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LiveCar {
    car_type: CarType,
    last_seen: SimTime,
    last_pos: Meters,
    last_displacement: Option<Meters>,
}

/// A finalized death event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeathEvent {
    /// When the car was last seen.
    pub at: SimTime,
    /// Tier.
    pub car_type: CarType,
    /// Last observed position.
    pub position: Meters,
}

/// Streaming supply/demand estimator over client observations.
#[derive(Debug)]
pub struct SupplyDemandEstimator {
    cfg: EstimatorConfig,
    region: Polygon,
    /// Surge-area polygons for per-area attribution (may be empty, e.g.
    /// for the taxi validation where only totals matter).
    areas: Vec<Polygon>,
    live: FastHashMap<u64, LiveCar>,
    /// Persistent per-ID history: a car keeps its session ID across trips
    /// (it disappears while booked and returns with the same ID), so
    /// lifespans span gaps. `(first_seen, last_seen, tier)`.
    history: FastHashMap<u64, (SimTime, SimTime, CarType)>,
    // Open-interval supply sets.
    open_interval: u64,
    ids_by_type: FastHashMap<CarType, FastHashSet<u64>>,
    ids_by_area: Vec<FastHashSet<u64>>,
    // Outputs.
    supply: HashMap<CarType, Vec<u32>>,
    supply_area: Vec<Vec<u32>>,
    deaths: HashMap<CarType, Vec<u32>>,
    deaths_area: Vec<Vec<u32>>,
    /// Death events (UberX and taxi validation use these directly).
    pub death_events: Vec<DeathEvent>,
    /// `(tier, lifespan_secs)` for every finalized, non-short-lived car.
    pub lifespans: Vec<(CarType, u64)>,
    /// Cars dropped by the short-lived filter.
    pub short_lived_filtered: u64,
    /// Deaths suppressed by the edge filter.
    pub edge_filtered: u64,
    /// Whether the open interval has unsaved observations.
    dirty: bool,
}

impl SupplyDemandEstimator {
    /// Creates an estimator for a measurement `region`, optionally
    /// attributing per-area statistics to `areas` (UberX only).
    pub fn new(cfg: EstimatorConfig, region: Polygon, areas: Vec<Polygon>) -> Self {
        let n_areas = areas.len();
        SupplyDemandEstimator {
            cfg,
            region,
            areas,
            live: FastHashMap::default(),
            history: FastHashMap::default(),
            open_interval: 0,
            ids_by_type: FastHashMap::default(),
            ids_by_area: vec![FastHashSet::default(); n_areas],
            supply: HashMap::new(),
            supply_area: vec![Vec::new(); n_areas],
            deaths: HashMap::new(),
            deaths_area: vec![Vec::new(); n_areas],
            death_events: Vec::new(),
            lifespans: Vec::new(),
            short_lived_filtered: 0,
            edge_filtered: 0,
            dirty: false,
        }
    }

    /// Feeds one client's per-tier observation blocks at time `now`.
    ///
    /// Cars reported outside the measurement polygon are ignored — §4.1:
    /// "we can safely filter short-lived cars from our dataset, and focus
    /// … only on cars that are driving within the bounds of our
    /// measurement area". (Boundary clients can see beyond the polygon,
    /// which would otherwise inflate supply against any ground truth
    /// defined over the polygon.)
    ///
    /// `blocks` may include transport-delayed responses whose content was
    /// frozen ticks ago; they are fed at their *delivery* time, exactly as
    /// a real client's log would record them. A stale re-observation
    /// refreshes `last_seen` and so keeps a car alive through the death
    /// grace — dropped and delayed pings thus degrade the estimate
    /// smoothly instead of fabricating deaths.
    pub fn observe(&mut self, now: SimTime, blocks: &[TypeObservation]) {
        self.dirty = true;
        for block in blocks {
            for car in &block.cars {
                if !self.region.contains(car.position) {
                    continue;
                }
                let entry = self.live.entry(car.id).or_insert(LiveCar {
                    car_type: block.car_type,
                    last_seen: now,
                    last_pos: car.position,
                    last_displacement: car.displacement,
                });
                entry.last_seen = now;
                entry.last_pos = car.position;
                entry.last_displacement = car.displacement;
                let h = self
                    .history
                    .entry(car.id)
                    .or_insert((now, now, block.car_type));
                h.1 = now;
                // Supply accounting for the open interval.
                self.ids_by_type.entry(block.car_type).or_default().insert(car.id);
                if block.car_type == CarType::UberX {
                    for (ai, poly) in self.areas.iter().enumerate() {
                        if poly.contains(car.position) {
                            self.ids_by_area[ai].insert(car.id);
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Call once per tick after all observations for that tick have been
    /// fed; `now` is the time the tick *ended* (i.e. the next tick's
    /// start). Finalizes stale cars and closes 5-minute intervals.
    pub fn end_tick(&mut self, now: SimTime) {
        self.reap(now);
        if now.seconds_into_surge_interval() == 0 && now.as_secs() > 0 {
            if self.dirty {
                self.close_interval();
            }
            self.open_interval = now.surge_interval();
        }
    }

    /// Finalizes the campaign: per-ID lifespans are computed from the
    /// full first-seen→last-seen history (cars keep their ID across
    /// trips), the short-lived filter is applied, and the open interval
    /// closes.
    pub fn finish(&mut self, now: SimTime) {
        self.live.clear();
        // Drain in sorted-ID order: HashMap iteration order would make the
        // lifespans vec differ between runs, breaking the bit-identical
        // checkpoint/resume comparison of full campaign outputs.
        let mut history: Vec<(u64, (SimTime, SimTime, CarType))> =
            self.history.drain().collect();
        history.sort_unstable_by_key(|(id, _)| *id);
        for (_, (first, last, tier)) in history {
            let span = last.as_secs().saturating_sub(first.as_secs());
            if span < self.cfg.short_lived_secs {
                self.short_lived_filtered += 1;
            } else {
                self.lifespans.push((tier, span));
            }
        }
        let _ = now;
        if self.dirty {
            self.close_interval();
        }
    }

    fn reap(&mut self, now: SimTime) {
        let grace = self.cfg.death_grace_secs;
        let mut stale: Vec<u64> = self
            .live
            .iter()
            .filter(|(_, c)| now.as_secs().saturating_sub(c.last_seen.as_secs()) > grace)
            .map(|(id, _)| *id)
            .collect();
        // Sorted so death_events order (and per-interval tallies' insertion
        // order) is a pure function of the observations, not of HashMap
        // iteration order — required for bit-identical resume comparisons.
        stale.sort_unstable();
        for id in stale {
            let car = self.live.remove(&id).unwrap();
            // Short-lived filter on the *total* span this ID has been
            // around (boundary flickers are measurement artifacts, but a
            // car briefly idle between trips is real).
            let span = self
                .history
                .get(&id)
                .map(|(first, last, _)| last.as_secs().saturating_sub(first.as_secs()))
                .unwrap_or(0);
            if span < self.cfg.short_lived_secs {
                continue;
            }
            // Edge filter: a disappearance near the boundary (or already
            // outside) may just be the car leaving the region.
            let near_edge = !self.region.contains(car.last_pos)
                || self.region.distance_to_boundary(car.last_pos) <= self.cfg.edge_margin_m;
            let outbound = match car.last_displacement {
                Some(d) if d.norm() > 1.0 => {
                    let prev = car.last_pos.sub(d);
                    self.region.distance_to_boundary(car.last_pos)
                        < self.region.distance_to_boundary(prev)
                }
                _ => false,
            };
            let filtered = if self.cfg.edge_requires_outbound {
                near_edge && outbound
            } else {
                // Conservative mode: paper footnote 4 — anything near the
                // edge is excluded even without a clear outbound path.
                near_edge
            };
            if filtered {
                self.edge_filtered += 1;
                continue;
            }
            self.death_events.push(DeathEvent {
                at: car.last_seen,
                car_type: car.car_type,
                position: car.last_pos,
            });
            let interval = car.last_seen.surge_interval() as usize;
            let v = self.deaths.entry(car.car_type).or_default();
            if v.len() <= interval {
                v.resize(interval + 1, 0);
            }
            v[interval] += 1;
            if car.car_type == CarType::UberX {
                for (ai, poly) in self.areas.iter().enumerate() {
                    if poly.contains(car.last_pos) {
                        let va = &mut self.deaths_area[ai];
                        if va.len() <= interval {
                            va.resize(interval + 1, 0);
                        }
                        va[interval] += 1;
                        break;
                    }
                }
            }
        }
    }

    fn close_interval(&mut self) {
        for (t, ids) in self.ids_by_type.iter_mut() {
            let v = self.supply.entry(*t).or_default();
            let idx = self.open_interval as usize;
            if v.len() <= idx {
                v.resize(idx + 1, 0);
            }
            v[idx] = ids.len() as u32;
            ids.clear();
        }
        self.dirty = false;
        for (ai, ids) in self.ids_by_area.iter_mut().enumerate() {
            let v = &mut self.supply_area[ai];
            let idx = self.open_interval as usize;
            if v.len() <= idx {
                v.resize(idx + 1, 0);
            }
            v[idx] = ids.len() as u32;
            ids.clear();
        }
    }

    /// Measured supply per interval for a tier (empty if never seen).
    pub fn supply_series(&self, t: CarType) -> &[u32] {
        self.supply.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Measured deaths (fulfilled-demand upper bound) per interval.
    pub fn death_series(&self, t: CarType) -> &[u32] {
        self.deaths.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Per-area UberX supply series.
    pub fn supply_area_series(&self, area: usize) -> &[u32] {
        &self.supply_area[area]
    }

    /// Per-area UberX death series.
    pub fn death_area_series(&self, area: usize) -> &[u32] {
        &self.deaths_area[area]
    }

    /// All tiers that appeared in the data.
    pub fn observed_types(&self) -> Vec<CarType> {
        let mut v: Vec<CarType> = self.supply.keys().copied().collect();
        v.sort();
        v
    }
}

/// Canonicalizes a hash map as a key-sorted pair vec so the serialized
/// bytes never depend on `HashMap` iteration order.
fn sorted_pairs<K: Copy + Ord, V: Clone, S: std::hash::BuildHasher>(
    m: &HashMap<K, V, S>,
) -> Vec<(K, V)> {
    let mut v: Vec<(K, V)> = m.iter().map(|(k, val)| (*k, val.clone())).collect();
    v.sort_unstable_by_key(|(k, _)| *k);
    v
}

fn sorted_ids(s: &FastHashSet<u64>) -> Vec<u64> {
    let mut v: Vec<u64> = s.iter().copied().collect();
    v.sort_unstable();
    v
}

impl Serialize for SupplyDemandEstimator {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("cfg".into(), self.cfg.to_value()),
            ("region".into(), self.region.to_value()),
            ("areas".into(), self.areas.to_value()),
            ("live".into(), sorted_pairs(&self.live).to_value()),
            ("history".into(), sorted_pairs(&self.history).to_value()),
            ("open_interval".into(), self.open_interval.to_value()),
            (
                "ids_by_type".into(),
                sorted_pairs(&self.ids_by_type)
                    .into_iter()
                    .map(|(t, ids)| (t, sorted_ids(&ids)))
                    .collect::<Vec<_>>()
                    .to_value(),
            ),
            (
                "ids_by_area".into(),
                self.ids_by_area.iter().map(sorted_ids).collect::<Vec<_>>().to_value(),
            ),
            ("supply".into(), sorted_pairs(&self.supply).to_value()),
            ("supply_area".into(), self.supply_area.to_value()),
            ("deaths".into(), sorted_pairs(&self.deaths).to_value()),
            ("deaths_area".into(), self.deaths_area.to_value()),
            ("death_events".into(), self.death_events.to_value()),
            ("lifespans".into(), self.lifespans.to_value()),
            ("short_lived_filtered".into(), self.short_lived_filtered.to_value()),
            ("edge_filtered".into(), self.edge_filtered.to_value()),
            ("dirty".into(), self.dirty.to_value()),
        ])
    }
}

impl Deserialize for SupplyDemandEstimator {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(SupplyDemandEstimator {
            cfg: EstimatorConfig::from_value(v.field("cfg")?)?,
            region: Polygon::from_value(v.field("region")?)?,
            areas: Vec::<Polygon>::from_value(v.field("areas")?)?,
            live: Vec::<(u64, LiveCar)>::from_value(v.field("live")?)?
                .into_iter()
                .collect(),
            history: Vec::<(u64, (SimTime, SimTime, CarType))>::from_value(
                v.field("history")?,
            )?
            .into_iter()
            .collect(),
            open_interval: u64::from_value(v.field("open_interval")?)?,
            ids_by_type: Vec::<(CarType, Vec<u64>)>::from_value(v.field("ids_by_type")?)?
                .into_iter()
                .map(|(t, ids)| (t, ids.into_iter().collect()))
                .collect(),
            ids_by_area: Vec::<Vec<u64>>::from_value(v.field("ids_by_area")?)?
                .into_iter()
                .map(|ids| ids.into_iter().collect())
                .collect(),
            supply: Vec::<(CarType, Vec<u32>)>::from_value(v.field("supply")?)?
                .into_iter()
                .collect(),
            supply_area: Vec::<Vec<u32>>::from_value(v.field("supply_area")?)?,
            deaths: Vec::<(CarType, Vec<u32>)>::from_value(v.field("deaths")?)?
                .into_iter()
                .collect(),
            deaths_area: Vec::<Vec<u32>>::from_value(v.field("deaths_area")?)?,
            death_events: Vec::<DeathEvent>::from_value(v.field("death_events")?)?,
            lifespans: Vec::<(CarType, u64)>::from_value(v.field("lifespans")?)?,
            short_lived_filtered: u64::from_value(v.field("short_lived_filtered")?)?,
            edge_filtered: u64::from_value(v.field("edge_filtered")?)?,
            dirty: bool::from_value(v.field("dirty")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservedCar;
    use surgescope_simcore::SimDuration;

    fn region() -> Polygon {
        Polygon::rect(Meters::new(0.0, 0.0), Meters::new(2000.0, 2000.0))
    }

    fn block(id: u64, x: f64, y: f64, disp: Option<Meters>) -> TypeObservation {
        TypeObservation {
            car_type: CarType::UberX,
            cars: vec![ObservedCar { id, position: Meters::new(x, y), displacement: disp }],
            ewt_min: 3.0,
            surge: 1.0,
        }
    }

    fn run_car(
        est: &mut SupplyDemandEstimator,
        id: u64,
        pos: (f64, f64),
        from: u64,
        until: u64,
        horizon: u64,
    ) {
        // Car visible [from, until), campaign runs to `horizon`.
        let mut t = 0;
        while t < horizon {
            if t >= from && t < until {
                est.observe(SimTime(t), &[block(id, pos.0, pos.1, None)]);
            }
            t += 5;
            est.end_tick(SimTime(t));
        }
    }

    #[test]
    fn interior_disappearance_is_a_death() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        run_car(&mut est, 1, (1000.0, 1000.0), 0, 600, 1200);
        est.finish(SimTime(1200));
        assert_eq!(est.death_events.len(), 1);
        let d = &est.death_events[0];
        assert_eq!(d.car_type, CarType::UberX);
        assert_eq!(d.at, SimTime(595));
        // Death lands in interval 1 (595/300).
        assert_eq!(est.death_series(CarType::UberX), &[0, 1]);
    }

    #[test]
    fn edge_parked_counts_as_death_by_default() {
        // A parked car near the boundary that disappears most plausibly
        // took a booking; only *outbound* paths indicate leaving.
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        run_car(&mut est, 2, (1950.0, 1000.0), 0, 600, 1200);
        est.finish(SimTime(1200));
        assert_eq!(est.death_events.len(), 1);
        assert_eq!(est.edge_filtered, 0);
    }

    #[test]
    fn edge_parked_filtered_in_conservative_mode() {
        let cfg = EstimatorConfig { edge_requires_outbound: false, ..Default::default() };
        let mut est = SupplyDemandEstimator::new(cfg, region(), vec![]);
        run_car(&mut est, 2, (1950.0, 1000.0), 0, 600, 1200);
        est.finish(SimTime(1200));
        assert!(est.death_events.is_empty(), "conservative mode discards edge cars");
        assert_eq!(est.edge_filtered, 1);
    }

    #[test]
    fn lifespan_spans_booking_gaps() {
        // A car visible 0–300 s, booked (invisible) 300–900 s, visible
        // again 900–1500 s: two deaths... no — one death at 300 (the
        // booking) and a lifespan covering the whole 0–1500 s span.
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let mut t = 0u64;
        while t < 1800 {
            let now = SimTime(t);
            if t < 300 || (900..1500).contains(&t) {
                est.observe(now, &[block(99, 1000.0, 1000.0, None)]);
            }
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(1800));
        assert_eq!(est.death_events.len(), 2, "both disappearances are deaths");
        assert_eq!(est.lifespans.len(), 1, "one car, one lifespan");
        let span = est.lifespans[0].1;
        assert!(span >= 1400, "lifespan must span the booked gap, got {span}");
    }

    #[test]
    fn short_lived_car_fully_filtered() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        // Visible for 30 s < 90 s threshold.
        run_car(&mut est, 3, (1000.0, 1000.0), 0, 30, 600);
        est.finish(SimTime(600));
        assert!(est.death_events.is_empty());
        assert!(est.lifespans.is_empty());
        assert_eq!(est.short_lived_filtered, 1);
    }

    #[test]
    fn survivor_contributes_lifespan_but_no_death() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        run_car(&mut est, 4, (500.0, 500.0), 0, 900, 900);
        est.finish(SimTime(900));
        assert!(est.death_events.is_empty(), "still-alive car is not a death");
        assert_eq!(est.lifespans.len(), 1);
        assert_eq!(est.lifespans[0].0, CarType::UberX);
        assert!(est.lifespans[0].1 >= 890);
    }

    #[test]
    fn supply_counts_unique_ids_per_interval() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let mut t = 0u64;
        while t < 600 {
            let now = SimTime(t);
            // Two cars, seen by two different clients (duplicate sightings
            // must not double-count).
            est.observe(now, &[block(10, 500.0, 500.0, None)]);
            est.observe(now, &[block(10, 500.0, 500.0, None)]);
            if t < 300 {
                est.observe(now, &[block(11, 700.0, 700.0, None)]);
            }
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(600));
        assert_eq!(est.supply_series(CarType::UberX), &[2, 1]);
    }

    #[test]
    fn per_area_attribution() {
        let areas = vec![
            Polygon::rect(Meters::new(0.0, 0.0), Meters::new(1000.0, 2000.0)),
            Polygon::rect(Meters::new(1000.0, 0.0), Meters::new(2000.0, 2000.0)),
        ];
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), areas);
        // Single pass: car 20 (area 0) visible for the first 10 minutes
        // then dies; car 21 (area 1) visible throughout.
        let mut t = 0u64;
        while t < 1200 {
            let now = SimTime(t);
            if t < 600 {
                est.observe(now, &[block(20, 500.0, 1000.0, None)]);
            }
            est.observe(now, &[block(21, 1500.0, 1000.0, None)]);
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(1200));
        assert_eq!(est.supply_area_series(0), &[1, 1, 0, 0]);
        assert_eq!(est.supply_area_series(1), &[1, 1, 1, 1]);
        let d0: u32 = est.death_area_series(0).iter().sum();
        let d1: u32 = est.death_area_series(1).iter().sum();
        assert_eq!((d0, d1), (1, 0));
    }

    #[test]
    fn grace_tolerates_missed_pings() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let mut t = 0u64;
        while t < 600 {
            let now = SimTime(t);
            // Car 30 pings every tick except a 10 s gap at t=300..310
            // (inside the 15 s grace) — must not die.
            if !(300..310).contains(&t) {
                est.observe(now, &[block(30, 800.0, 800.0, None)]);
            }
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(600));
        assert!(est.death_events.is_empty(), "gap within grace must not kill the car");
        assert_eq!(est.lifespans.len(), 1);
    }

    #[test]
    fn stale_reobservation_keeps_car_alive() {
        // A delayed ping re-reports a car at its send-time position; fed
        // at delivery time it must refresh last_seen like any sighting.
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let mut t = 0u64;
        while t < 600 {
            let now = SimTime(t);
            if t < 300 {
                est.observe(now, &[block(40, 800.0, 800.0, None)]);
            } else if (310..=320).contains(&t) {
                // Fresh pings for the car stopped at t=300; these are
                // late deliveries carrying the old (send-time) position —
                // inside the grace window, they postpone the death.
                est.observe(now, &[block(40, 800.0, 800.0, None)]);
            }
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(600));
        // Death is stamped at the last (stale) sighting, not t=300.
        assert_eq!(est.death_events.len(), 1);
        assert_eq!(est.death_events[0].at, SimTime(320));
    }

    #[test]
    fn observed_types_sorted() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let mk = |t: CarType, id: u64| TypeObservation {
            car_type: t,
            cars: vec![ObservedCar {
                id,
                position: Meters::new(500.0, 500.0),
                displacement: None,
            }],
            ewt_min: 1.0,
            surge: 1.0,
        };
        let mut t = 0u64;
        while t < 300 {
            est.observe(SimTime(t), &[mk(CarType::UberBlack, 1), mk(CarType::UberX, 2)]);
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(300));
        assert_eq!(est.observed_types(), vec![CarType::UberX, CarType::UberBlack]);
    }

    #[test]
    fn death_series_empty_for_unseen_type() {
        let est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        assert!(est.death_series(CarType::UberPool).is_empty());
        assert!(est.supply_series(CarType::UberPool).is_empty());
    }

    #[test]
    fn outbound_near_edge_filtered_with_displacement() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let mut t = 0u64;
        while t < 300 {
            let now = SimTime(t);
            if t < 120 {
                // Moving east toward the boundary, ends at x=1900 (inside
                // the 150 m margin), displacement clearly outbound.
                let x = (1700.0 + 2.0 * t as f64).min(1900.0);
                est.observe(now, &[block(40, x, 1000.0, Some(Meters::new(40.0, 0.0)))]);
            }
            t += 5;
            est.end_tick(SimTime(t));
        }
        est.finish(SimTime(300));
        assert!(est.death_events.is_empty());
        assert_eq!(est.edge_filtered, 1);
    }

    #[test]
    fn deaths_within_grace_of_campaign_end_not_counted() {
        // Car disappears 10 s before the campaign ends: still within the
        // grace window, so finish() records a lifespan, not a death.
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        run_car(&mut est, 50, (1000.0, 1000.0), 0, 590, 600);
        est.finish(SimTime(600));
        assert!(est.death_events.is_empty());
        assert_eq!(est.lifespans.len(), 1);
    }

    #[test]
    fn serde_round_trip_mid_campaign_continues_identically() {
        // Serialize with live cars, an open interval and accumulated
        // outputs; the restored estimator must finish the campaign with
        // byte-identical results.
        let mk = |est: &mut SupplyDemandEstimator| {
            let mut t = 0u64;
            while t < 450 {
                let now = SimTime(t);
                est.observe(now, &[block(1, 1000.0, 1000.0, None)]);
                if t < 200 {
                    est.observe(now, &[block(2, 600.0, 400.0, None)]);
                }
                t += 5;
                est.end_tick(SimTime(t));
            }
        };
        let areas = vec![
            Polygon::rect(Meters::new(0.0, 0.0), Meters::new(1000.0, 2000.0)),
            Polygon::rect(Meters::new(1000.0, 0.0), Meters::new(2000.0, 2000.0)),
        ];
        let mut a =
            SupplyDemandEstimator::new(EstimatorConfig::default(), region(), areas);
        mk(&mut a);
        let v = a.to_value();
        let mut b = SupplyDemandEstimator::from_value(&v).expect("round trip");
        // Same serialized form on the round-tripped copy (canonical).
        assert_eq!(b.to_value(), v);
        let run_tail = |est: &mut SupplyDemandEstimator| {
            let mut t = 450u64;
            while t < 900 {
                let now = SimTime(t);
                est.observe(now, &[block(1, 1010.0, 1000.0, None)]);
                t += 5;
                est.end_tick(SimTime(t));
            }
            est.finish(SimTime(900));
        };
        run_tail(&mut a);
        run_tail(&mut b);
        assert_eq!(a.supply_series(CarType::UberX), b.supply_series(CarType::UberX));
        assert_eq!(a.death_events, b.death_events);
        assert_eq!(a.lifespans, b.lifespans);
        assert_eq!(a.short_lived_filtered, b.short_lived_filtered);
        assert_eq!(a.to_value(), b.to_value());
    }

    #[test]
    fn duration_since_campaign_spans_intervals() {
        let mut est = SupplyDemandEstimator::new(EstimatorConfig::default(), region(), vec![]);
        let horizon = SimDuration::mins(20).as_secs();
        run_car(&mut est, 60, (1000.0, 1000.0), 0, horizon, horizon);
        est.finish(SimTime(horizon));
        // Four closed intervals, car present in each.
        assert_eq!(est.supply_series(CarType::UberX), &[1, 1, 1, 1]);
    }
}
