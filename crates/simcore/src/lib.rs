//! Deterministic simulation engine.
//!
//! The reproduction runs everything — the ride-sharing marketplace, the taxi
//! replay, and the measurement clients — inside a single-threaded,
//! deterministic simulation. This crate provides the shared plumbing:
//!
//! * [`SimTime`] / [`SimDuration`]: integer-second simulated time with
//!   calendar helpers (time of day, day of week, the paper's 5-minute
//!   surge intervals);
//! * [`EventQueue`]: a time-ordered queue with deterministic FIFO
//!   tie-breaking for same-timestamp events;
//! * [`SimRng`]: a seedable, *splittable* RNG so each component draws from
//!   its own independent stream (adding a component never perturbs the
//!   randomness seen by others);
//! * [`DiurnalCurve`]: piecewise-linear rate curves over the day, used for
//!   demand/supply profiles;
//! * [`FaultPlan`]: smoltcp-style fault injection (drop / delay) for the
//!   simulated client↔service transport;
//! * [`Transport`]: the in-flight message queue that realizes the
//!   `Delay(d)` outcome — responses answered at send time but surfaced to
//!   the client `⌈d/tick⌉` ticks later, carrying stale content.
//!
//! CPU-bound simulation deliberately uses plain synchronous code (the async
//! guides' own advice); determinism is enforced by an integration test at
//! the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod diurnal;
mod events;
mod fasthash;
mod faults;
mod rng;
mod time;
mod transport;

pub use backoff::Backoff;
pub use diurnal::DiurnalCurve;
pub use events::{EventQueue, ScheduledEvent};
pub use fasthash::{FastHashMap, FastHashSet, FxHasher};
pub use faults::{FaultOutcome, FaultPlan, InvalidFaultPlan};
pub use rng::SimRng;
pub use time::{DayOfWeek, SimDuration, SimTime};
pub use transport::{ticks_late, Envelope, Transport};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn diurnal_curve_stays_within_control_range(
            points in proptest::collection::vec((0.0f64..24.0, -100.0f64..100.0), 1..8),
            hour in -48.0f64..48.0,
        ) {
            let lo = points.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
            let hi = points.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
            let c = DiurnalCurve::new(points);
            let v = c.at_hour(hour);
            // Linear interpolation can never escape the control-point hull.
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }

        #[test]
        fn diurnal_curve_periodic(
            points in proptest::collection::vec((0.0f64..24.0, -10.0f64..10.0), 1..6),
            hour in 0.0f64..24.0,
        ) {
            let c = DiurnalCurve::new(points);
            prop_assert!((c.at_hour(hour) - c.at_hour(hour + 24.0)).abs() < 1e-9);
        }

        #[test]
        fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime(*t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some((pt, pseq)) = prev {
                    prop_assert!(ev.at >= pt, "time order violated");
                    if ev.at == pt {
                        prop_assert!(ev.event > pseq, "FIFO tie-break violated");
                    }
                }
                prev = Some((ev.at, ev.event));
            }
        }

        #[test]
        fn surge_interval_consistent(t in 0u64..10_000_000) {
            let st = SimTime(t);
            let start = st.surge_interval_start();
            prop_assert_eq!(start.surge_interval(), st.surge_interval());
            prop_assert_eq!(start.as_secs() + st.seconds_into_surge_interval(), t);
            prop_assert!(st.seconds_into_surge_interval() < 300);
        }

        #[test]
        fn rng_chance_never_panics(p in -2.0f64..3.0, seed in 0u64..1000) {
            let mut r = SimRng::seed_from_u64(seed);
            let _ = r.chance(p);
        }

        #[test]
        fn transport_delivers_everything_exactly_on_time(
            sends in proptest::collection::vec((0usize..8, 0u64..12), 0..40),
        ) {
            let mut t: Transport<u64> = Transport::new();
            let mut delivered = 0usize;
            for (client, delay) in &sends {
                // Payload records the requested delay so delivery can be
                // checked against the contract: sent_tick + max(1, delay).
                t.send_delayed(*client, *delay, *delay);
                t.advance_tick();
                for e in t.take_due() {
                    prop_assert_eq!(t.tick(), e.sent_tick + e.payload.max(1));
                    delivered += 1;
                }
            }
            for _ in 0..16 {
                t.advance_tick();
                for e in t.take_due() {
                    prop_assert_eq!(t.tick(), e.sent_tick + e.payload.max(1));
                    delivered += 1;
                }
            }
            prop_assert_eq!(delivered, sends.len(), "a queued message never vanishes");
            prop_assert_eq!(t.in_flight(), 0);
        }

        #[test]
        fn fault_plan_outcomes_valid(drop in 0.0f64..1.0, delay in 0.0f64..1.0,
                                     max_delay in 0u64..30, seed in 0u64..500) {
            let plan = FaultPlan { drop_chance: drop, delay_chance: delay, max_delay_secs: max_delay };
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..50 {
                match plan.decide(&mut rng) {
                    FaultOutcome::Delay(d) => {
                        prop_assert!(d.as_secs() >= 1 && d.as_secs() <= max_delay);
                    }
                    FaultOutcome::Deliver | FaultOutcome::Drop => {}
                }
            }
        }
    }
}
