//! A simulated client↔service transport with late delivery.
//!
//! The real study's clients rode on cellular/Wi-Fi links: a ping's
//! response can be lost outright, or arrive *late* — still carrying the
//! world state from the moment it was answered. [`FaultPlan`] decides the
//! fate of each message; this module provides the queue that makes the
//! `Delay(d)` outcome actually happen. A delayed message is answered
//! against the send-time snapshot, parked in flight, and surfaced to its
//! client `⌈d / tick⌉` ticks later. That is the stale-data channel the
//! paper's §5.2 consistency analysis measured: old multipliers showing up
//! at new timestamps, not missing samples.
//!
//! Determinism: the queue is advanced and drained by the single-threaded
//! simulation loop. Deliveries due on the same tick come back ordered by
//! `(sent_tick, client)` — the order they were enqueued — so the merged
//! observation stream is a pure function of the fault draws, independent
//! of any worker-thread fan-out used to *compute* the payloads.

use crate::time::SimDuration;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::BTreeMap;
use surgescope_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Bucket bounds (in ticks) for the injected-latency histogram: a fault
/// plan's `Delay(d)` outcomes land between 1 tick and a few minutes.
static DELAY_TICKS_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A message parked in (or popped from) the transport queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    /// Tick on which the message was sent (and answered).
    pub sent_tick: u64,
    /// Index of the destination client.
    pub client: usize,
    /// The response content, frozen at send time.
    pub payload: T,
}

/// Telemetry handles owned by a [`Transport`]. Always live (no `Option`
/// branch in the send/drain paths); a campaign that wants them in its
/// snapshot registers them via [`TransportMetrics::register`]. Counter
/// totals are pure functions of the fault draws, so they sit in the
/// deterministic snapshot section.
#[derive(Debug, Clone)]
pub struct TransportMetrics {
    /// Messages parked for late delivery (one per `Delay` fault).
    pub sent_delayed: Counter,
    /// Messages surfaced late to their client.
    pub delivered_late: Counter,
    /// High-water mark of the in-flight queue depth.
    pub max_in_flight: Gauge,
    /// Distribution of injected delays, in ticks.
    pub delay_ticks: Histogram,
}

impl Default for TransportMetrics {
    fn default() -> Self {
        TransportMetrics {
            sent_delayed: Counter::new(),
            delivered_late: Counter::new(),
            max_in_flight: Gauge::new(),
            delay_ticks: Histogram::new(&DELAY_TICKS_BOUNDS),
        }
    }
}

impl TransportMetrics {
    /// Adopts every handle into `reg` under `transport.*` names.
    pub fn register(&self, reg: &MetricsRegistry) {
        reg.adopt_counter("transport.sent_delayed", &self.sent_delayed);
        reg.adopt_counter("transport.delivered_late", &self.delivered_late);
        reg.adopt_gauge("transport.max_in_flight", &self.max_in_flight);
        reg.adopt_histogram("transport.delay_ticks", &self.delay_ticks);
    }
}

/// In-flight message queue keyed by delivery tick.
#[derive(Debug, Clone)]
pub struct Transport<T> {
    tick: u64,
    in_flight: BTreeMap<u64, Vec<Envelope<T>>>,
    metrics: TransportMetrics,
}

impl<T> Default for Transport<T> {
    fn default() -> Self {
        Transport::new()
    }
}

impl<T> Transport<T> {
    /// An empty queue at tick 0.
    pub fn new() -> Self {
        Transport {
            tick: 0,
            in_flight: BTreeMap::new(),
            metrics: TransportMetrics::default(),
        }
    }

    /// This queue's telemetry handles.
    pub fn metrics(&self) -> &TransportMetrics {
        &self.metrics
    }

    /// The queue's current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.values().map(Vec::len).sum()
    }

    /// Advances the queue clock by one tick. Call once per simulation
    /// tick, before draining deliveries for that tick.
    pub fn advance_tick(&mut self) {
        self.tick += 1;
    }

    /// Parks `payload` for `client`, to be delivered `delay_ticks` ticks
    /// from now (clamped to at least 1 — a delayed message never arrives
    /// within its own send tick).
    pub fn send_delayed(&mut self, client: usize, delay_ticks: u64, payload: T) {
        let due = self.tick + delay_ticks.max(1);
        self.in_flight
            .entry(due)
            .or_default()
            .push(Envelope { sent_tick: self.tick, client, payload });
        self.metrics.sent_delayed.incr();
        self.metrics.delay_ticks.record(delay_ticks.max(1));
        self.metrics.max_in_flight.set_max(self.in_flight() as u64);
    }

    /// Drains every message due at or before the current tick, ordered by
    /// `(sent_tick, client)`. Messages sent on an earlier tick were
    /// enqueued earlier, and within one tick clients are enqueued in
    /// index order, so plain enqueue order already is that ordering.
    pub fn take_due(&mut self) -> Vec<Envelope<T>> {
        let mut due = Vec::new();
        let ready: Vec<u64> =
            self.in_flight.range(..=self.tick).map(|(k, _)| *k).collect();
        for k in ready {
            due.extend(self.in_flight.remove(&k).unwrap());
        }
        due.sort_by_key(|e| (e.sent_tick, e.client));
        self.metrics.delivered_late.add(due.len() as u64);
        due
    }
}

impl<T: Serialize> Serialize for Envelope<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("sent_tick".into(), self.sent_tick.to_value()),
            ("client".into(), self.client.to_value()),
            ("payload".into(), self.payload.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for Envelope<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Envelope {
            sent_tick: u64::from_value(v.field("sent_tick")?)?,
            client: usize::from_value(v.field("client")?)?,
            payload: T::from_value(v.field("payload")?)?,
        })
    }
}

impl<T: Serialize> Serialize for Transport<T> {
    fn to_value(&self) -> Value {
        // BTreeMap iteration is already sorted by due tick, and each bucket
        // preserves enqueue order, so the serialized form is canonical.
        let in_flight = self
            .in_flight
            .iter()
            .map(|(due, envs)| Value::Seq(vec![due.to_value(), envs.to_value()]))
            .collect();
        Value::Map(vec![
            ("tick".into(), self.tick.to_value()),
            ("in_flight".into(), Value::Seq(in_flight)),
        ])
    }
}

impl<T: Deserialize> Deserialize for Transport<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let tick = u64::from_value(v.field("tick")?)?;
        let mut in_flight = BTreeMap::new();
        for bucket in v
            .field("in_flight")?
            .as_seq()
            .ok_or_else(|| Error::custom("transport: expected in-flight array"))?
        {
            match bucket.as_seq() {
                Some([due, envs]) => {
                    in_flight.insert(
                        u64::from_value(due)?,
                        Vec::<Envelope<T>>::from_value(envs)?,
                    );
                }
                _ => return Err(Error::custom("transport: expected [due, envelopes]")),
            }
        }
        // Telemetry starts fresh on restore: counters describe this
        // process's work, not the checkpointed history.
        Ok(Transport { tick, in_flight, metrics: TransportMetrics::default() })
    }
}

/// How many ticks late a message with injected latency `d` surfaces:
/// `⌈d / tick_secs⌉`, never less than one full tick.
pub fn ticks_late(d: SimDuration, tick_secs: u64) -> u64 {
    debug_assert!(tick_secs > 0, "tick length must be positive");
    d.as_secs().div_ceil(tick_secs.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_due_on_empty_queue() {
        let mut t: Transport<u32> = Transport::new();
        assert!(t.take_due().is_empty());
        t.advance_tick();
        assert!(t.take_due().is_empty());
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn message_surfaces_exactly_delay_ticks_later() {
        let mut t: Transport<&str> = Transport::new();
        t.send_delayed(3, 2, "hello");
        assert_eq!(t.in_flight(), 1);
        t.advance_tick(); // tick 1
        assert!(t.take_due().is_empty(), "one tick early");
        t.advance_tick(); // tick 2
        let due = t.take_due();
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].client, 3);
        assert_eq!(due[0].sent_tick, 0);
        assert_eq!(due[0].payload, "hello");
        assert_eq!(t.in_flight(), 0);
        // Draining is not idempotent within the tick: the message is gone.
        assert!(t.take_due().is_empty());
    }

    #[test]
    fn zero_delay_clamped_to_one_tick() {
        let mut t: Transport<u8> = Transport::new();
        t.send_delayed(0, 0, 9);
        assert!(t.take_due().is_empty(), "never delivered on the send tick");
        t.advance_tick();
        assert_eq!(t.take_due().len(), 1);
    }

    #[test]
    fn deliveries_ordered_by_send_tick_then_client() {
        let mut t: Transport<u8> = Transport::new();
        // Tick 0: clients 5 and 1 send with delay 2.
        t.send_delayed(5, 2, 0);
        t.send_delayed(1, 2, 1);
        t.advance_tick(); // tick 1: client 2 sends with delay 1.
        t.send_delayed(2, 1, 2);
        t.advance_tick(); // tick 2: all three are due.
        let order: Vec<(u64, usize)> =
            t.take_due().iter().map(|e| (e.sent_tick, e.client)).collect();
        assert_eq!(order, vec![(0, 1), (0, 5), (1, 2)]);
    }

    #[test]
    fn overdue_messages_still_surface() {
        // A consumer that skips a tick must not lose mail.
        let mut t: Transport<u8> = Transport::new();
        t.send_delayed(0, 1, 7);
        t.advance_tick();
        t.advance_tick();
        t.advance_tick();
        assert_eq!(t.take_due().len(), 1);
    }

    #[test]
    fn mid_flight_round_trip_drains_in_same_order() {
        // A checkpointed transport with a non-empty in-flight queue must
        // restore and drain in the same (sent_tick, client) order as the
        // original — late responses may not be reordered by a resume.
        let mut t: Transport<Vec<u32>> = Transport::new();
        t.send_delayed(7, 3, vec![70]);
        t.send_delayed(2, 1, vec![20]);
        t.advance_tick(); // tick 1: client 2's message is due but NOT drained
        t.send_delayed(4, 1, vec![40]);
        t.send_delayed(1, 2, vec![10]);

        let v = t.to_value();
        let mut r: Transport<Vec<u32>> = Transport::from_value(&v).expect("round trip");
        assert_eq!(r.tick(), t.tick());
        assert_eq!(r.in_flight(), t.in_flight());
        assert_eq!(r.in_flight(), 4);

        let drain = |tr: &mut Transport<Vec<u32>>| -> Vec<(u64, usize, Vec<u32>)> {
            let mut out = Vec::new();
            for _ in 0..4 {
                out.extend(
                    tr.take_due()
                        .into_iter()
                        .map(|e| (e.sent_tick, e.client, e.payload)),
                );
                tr.advance_tick();
            }
            out
        };
        let a = drain(&mut t);
        let b = drain(&mut r);
        assert_eq!(a, b);
        // Overdue message (sent tick 0, due tick 1) surfaces first.
        assert_eq!(b[0], (0, 2, vec![20]));
    }

    #[test]
    fn metrics_track_sends_and_late_deliveries() {
        let mut t: Transport<u8> = Transport::new();
        t.send_delayed(0, 2, 1);
        t.send_delayed(1, 40, 2);
        assert_eq!(t.metrics().sent_delayed.get(), 2);
        assert_eq!(t.metrics().max_in_flight.get(), 2);
        t.advance_tick();
        t.advance_tick();
        assert_eq!(t.take_due().len(), 1);
        assert_eq!(t.metrics().delivered_late.get(), 1);
        let reg = MetricsRegistry::new();
        t.metrics().register(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.value("transport.sent_delayed"), Some(2));
        assert_eq!(snap.value("transport.delay_ticks.le_2"), Some(1));
        assert_eq!(snap.value("transport.delay_ticks.le_64"), Some(1));
    }

    #[test]
    fn ticks_late_is_ceiling_division() {
        let tick = 5;
        for (d, want) in [(1, 1), (4, 1), (5, 1), (6, 2), (10, 2), (11, 3), (29, 6)] {
            assert_eq!(ticks_late(SimDuration::secs(d), tick), want, "d = {d}");
        }
        // Degenerate zero-latency input still costs a full tick.
        assert_eq!(ticks_late(SimDuration::secs(0), tick), 1);
    }
}
