//! A deterministic, non-cryptographic hasher for hot-path collections.
//!
//! The measurement pipeline inserts thousands of `u64` car IDs into hash
//! sets every tick; the standard library's SipHash is DoS-resistant but
//! several times slower than needed for trusted, simulation-internal
//! keys. This is the FxHash multiply-rotate scheme (as used by rustc):
//! fixed constants, no per-process random state, so hashes — and thus
//! bucket layouts — are identical across runs and platforms.
//!
//! Callers must never let *iteration order* of these collections reach
//! campaign output; every consumer either sorts first or reduces to an
//! order-insensitive aggregate (counts, sums, membership tests). That
//! invariant predates this hasher (std's order is randomized per process)
//! — swapping the hasher cannot change any output bytes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash: one rotate-xor-multiply per 8-byte word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the deterministic fast hasher.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the deterministic fast hasher.
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        let mut s: FastHashSet<u64> = FastHashSet::default();
        for i in 0..10_000u64 {
            m.insert(i * 0x9E37_79B9, i as u32);
            s.insert(i * 0x9E37_79B9);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(s.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 0x9E37_79B9)), Some(&(i as u32)));
            assert!(s.contains(&(i * 0x9E37_79B9)));
        }
        assert!(!s.contains(&1));
    }

    #[test]
    fn hashes_are_process_independent() {
        // Fixed constants, no random state: the same key always lands on
        // the same hash (unlike std's per-process SipHash keys).
        let mut h1 = FxHasher::default();
        h1.write_u64(0xDEAD_BEEF);
        let mut h2 = FxHasher::default();
        h2.write_u64(0xDEAD_BEEF);
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(h1.finish(), 0);
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
