//! Seedable, splittable randomness.
//!
//! Every stochastic decision in the reproduction flows through a [`SimRng`]
//! derived from a single campaign seed. Components obtain *independent*
//! child streams via [`SimRng::split`], keyed by a label, so adding or
//! reordering components never changes the randomness any other component
//! observes — a property the determinism integration test relies on.
//!
//! The distribution samplers (exponential, normal, Poisson) are implemented
//! here rather than pulled from `rand_distr` to keep the dependency
//! footprint to the approved offline set.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Error, Serialize, Value};

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the stream mid-flight: `(seed, generator state)`. The
    /// state alone suffices to continue the stream bit-identically; the
    /// seed is carried so [`split`](SimRng::split) derivations keep
    /// working after a restore.
    pub fn state(&self) -> (u64, [u64; 4]) {
        (self.seed, self.inner.state())
    }

    /// Rebuilds a stream captured with [`state`](SimRng::state). The
    /// continuation is bit-identical to the original stream's.
    pub fn from_state(seed: u64, state: [u64; 4]) -> Self {
        SimRng { inner: SmallRng::from_state(state), seed }
    }

    /// Derives an independent child stream keyed by `label`. The derivation
    /// mixes the parent seed with an FNV-1a hash of the label through a
    /// splitmix64 finalizer, so distinct labels give uncorrelated streams
    /// and the same `(seed, label)` pair always gives the same stream.
    pub fn split(&self, label: &str) -> SimRng {
        let h = fnv1a(0xcbf2_9ce4_8422_2325, label.as_bytes());
        let child_seed = splitmix64(self.seed ^ h);
        SimRng::seed_from_u64(child_seed)
    }

    /// Derives an independent child stream keyed by an index (e.g. one
    /// stream per driver). Hashes exactly the bytes of `"{label}#{index}"`
    /// — the same stream `split` on that formatted string yields — but
    /// renders the index into a stack buffer instead of allocating (this
    /// runs on per-ping hot paths).
    pub fn split_index(&self, label: &str, index: u64) -> SimRng {
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, label.as_bytes());
        h = fnv1a(h, b"#");
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = index;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        h = fnv1a(h, &buf[i..]);
        SimRng::seed_from_u64(splitmix64(self.seed ^ h))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len())])
        }
    }

    /// Samples an index according to non-negative `weights` (roulette
    /// wheel). Returns `None` when all weights are zero or the slice is
    /// empty.
    pub fn choose_weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 {
                target -= *w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slop: return the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Exponential variate with the given `rate` (mean `1/rate`).
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Inverse CDF; `1 - f64()` avoids ln(0).
        -(1.0 - self.f64()).ln() / rate
    }

    /// Standard normal variate (Box–Muller; one half of the pair is
    /// discarded for implementation simplicity — sampling cost is not a
    /// bottleneck here).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative standard deviation");
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Poisson variate with mean `lambda`. Uses Knuth's product method for
    /// small means and a normal approximation above 30 (adequate for the
    /// arrival counts this simulator draws).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "negative lambda");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

impl Serialize for SimRng {
    fn to_value(&self) -> Value {
        let (seed, s) = self.state();
        Value::Map(vec![
            ("seed".into(), seed.to_value()),
            ("state".into(), s.to_value()),
        ])
    }
}

impl Deserialize for SimRng {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seed = u64::from_value(v.field("seed")?)?;
        let state = <[u64; 4]>::from_value(v.field("state")?)?;
        Ok(SimRng::from_state(seed, state))
    }
}

/// FNV-1a over `bytes`, continuing from hash state `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn split_streams_are_reproducible_and_distinct() {
        let root = SimRng::seed_from_u64(42);
        let mut c1 = root.split("drivers");
        let mut c1b = root.split("drivers");
        let mut c2 = root.split("riders");
        let xs: Vec<u64> = (0..10).map(|_| c1.range_u64(0, u64::MAX)).collect();
        let ys: Vec<u64> = (0..10).map(|_| c1b.range_u64(0, u64::MAX)).collect();
        let zs: Vec<u64> = (0..10).map(|_| c2.range_u64(0, u64::MAX)).collect();
        assert_eq!(xs, ys, "same label must reproduce");
        assert_ne!(xs, zs, "different labels must diverge");
    }

    #[test]
    fn split_index_distinct_per_index() {
        let root = SimRng::seed_from_u64(1);
        let a = root.split_index("driver", 0).f64();
        let b = root.split_index("driver", 1).f64();
        assert_ne!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn split_index_equals_split_of_formatted_label() {
        // The allocation-free digit rendering must stay byte-equivalent to
        // hashing the formatted string — checkpointed campaigns depend on
        // the derived streams never changing.
        let root = SimRng::seed_from_u64(0xDEAD_BEEF);
        for index in [0u64, 1, 9, 10, 99, 12_345, u64::MAX] {
            let mut a = root.split_index("driver", index);
            let mut b = root.split(&format!("driver#{index}"));
            for _ in 0..4 {
                assert_eq!(a.f64().to_bits(), b.f64().to_bits(), "index {index}");
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut r = SimRng::seed_from_u64(17);
        for lambda in [0.3, 4.0, 60.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = SimRng::seed_from_u64(19);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[r.choose_weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0, "zero-weight item must never be chosen");
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(r.choose_weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.choose_weighted_index(&[]), None);
    }

    #[test]
    fn choose_uniform() {
        let mut r = SimRng::seed_from_u64(23);
        assert_eq!(r.choose::<u8>(&[]), None);
        let items = [1, 2, 3, 4];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items).unwrap()));
        }
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        let mut a = SimRng::seed_from_u64(99);
        for _ in 0..57 {
            a.f64();
        }
        let v = a.to_value();
        let mut b = SimRng::from_value(&v).expect("round trip");
        assert_eq!(b.seed(), a.seed());
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
        // Splits derived after a restore match the original's.
        assert_eq!(
            a.split("x").f64().to_bits(),
            b.split("x").f64().to_bits()
        );
    }

    #[test]
    fn range_f64_bounds() {
        let mut r = SimRng::seed_from_u64(29);
        for _ in 0..1000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
