//! Transport fault injection.
//!
//! The real study rode on cellular/Wi-Fi networks; pings occasionally fail
//! or arrive late. Mirroring smoltcp's fault-injection knobs
//! (`--drop-chance` and friends), a [`FaultPlan`] decides per message
//! whether the simulated transport drops or delays it. The measurement
//! estimators must tolerate these gaps, and the robustness ablation bench
//! sweeps the drop probability.

use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-message fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver normally.
    Deliver,
    /// Drop the message entirely (the client misses this ping).
    Drop,
    /// Deliver after the given extra latency.
    Delay(SimDuration),
}

/// A fault-injection configuration for the client↔service transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a message is dropped.
    pub drop_chance: f64,
    /// Probability a (non-dropped) message is delayed.
    pub delay_chance: f64,
    /// Maximum injected delay in seconds (uniform in `[1, max]`).
    pub max_delay_secs: u64,
}

/// A rejected [`FaultPlan`] (probability outside `[0, 1]` or NaN).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFaultPlan {
    /// Which field was rejected.
    pub field: &'static str,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl std::fmt::Display for InvalidFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid FaultPlan: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidFaultPlan {}

impl FaultPlan {
    /// No faults: every message delivered immediately.
    pub const fn none() -> Self {
        FaultPlan { drop_chance: 0.0, delay_chance: 0.0, max_delay_secs: 0 }
    }

    /// A lossy plan with the given drop probability and no delays.
    pub fn lossy(drop_chance: f64) -> Self {
        FaultPlan { drop_chance, delay_chance: 0.0, max_delay_secs: 0 }.validated()
    }

    /// A laggy plan: no drops, `delay_chance` of an extra latency uniform
    /// in `[1, max_delay_secs]`.
    pub fn laggy(delay_chance: f64, max_delay_secs: u64) -> Self {
        FaultPlan { drop_chance: 0.0, delay_chance, max_delay_secs }.validated()
    }

    /// Checks both probabilities are finite and within `[0, 1]`. The
    /// struct is plain data (deserializable, struct-literal constructible),
    /// so every boundary where a plan *enters* the system — builders,
    /// `UberSystem::with_faults`, campaign configuration — funnels through
    /// this instead of trusting the literal.
    pub fn validate(&self) -> Result<(), InvalidFaultPlan> {
        for (field, p) in [("drop_chance", self.drop_chance), ("delay_chance", self.delay_chance)]
        {
            if p.is_nan() {
                return Err(InvalidFaultPlan { field, reason: "is NaN".into() });
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(InvalidFaultPlan {
                    field,
                    reason: format!("= {p} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }

    /// Panicking form of [`FaultPlan::validate`] for construction sites
    /// (an invalid plan is a configuration bug, not a runtime condition).
    pub fn validated(self) -> Self {
        if let Err(e) = self.validate() {
            panic!("probability out of range: {e}");
        }
        self
    }

    /// Decides the fate of one message.
    pub fn decide(&self, rng: &mut SimRng) -> FaultOutcome {
        if self.drop_chance > 0.0 && rng.chance(self.drop_chance) {
            return FaultOutcome::Drop;
        }
        if self.delay_chance > 0.0 && self.max_delay_secs > 0 && rng.chance(self.delay_chance) {
            let d = rng.range_u64(1, self.max_delay_secs + 1);
            return FaultOutcome::Delay(SimDuration::secs(d));
        }
        FaultOutcome::Deliver
    }

    /// True when this plan can never perturb a message.
    pub fn is_none(&self) -> bool {
        self.drop_chance <= 0.0 && (self.delay_chance <= 0.0 || self.max_delay_secs == 0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(plan.decide(&mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn drop_rate_is_respected() {
        let plan = FaultPlan::lossy(0.25);
        let mut rng = SimRng::seed_from_u64(6);
        let n = 40_000;
        let drops = (0..n)
            .filter(|_| plan.decide(&mut rng) == FaultOutcome::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn delays_bounded() {
        let plan = FaultPlan { drop_chance: 0.0, delay_chance: 1.0, max_delay_secs: 7 };
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            match plan.decide(&mut rng) {
                FaultOutcome::Delay(d) => {
                    assert!((1..=7).contains(&d.as_secs()));
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_max_delay_never_delays() {
        let plan = FaultPlan { drop_chance: 0.0, delay_chance: 1.0, max_delay_secs: 0 };
        assert!(plan.is_none());
        let mut rng = SimRng::seed_from_u64(8);
        assert_eq!(plan.decide(&mut rng), FaultOutcome::Deliver);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn lossy_rejects_bad_probability() {
        let _ = FaultPlan::lossy(1.5);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn laggy_rejects_bad_probability() {
        let _ = FaultPlan::laggy(-0.1, 10);
    }

    #[test]
    fn validate_covers_struct_literals() {
        // Struct-literal construction bypasses the builders; validate()
        // is the check those call sites funnel through.
        let nan = FaultPlan { drop_chance: f64::NAN, delay_chance: 0.0, max_delay_secs: 0 };
        let err = nan.validate().unwrap_err();
        assert_eq!(err.field, "drop_chance");
        let over = FaultPlan { drop_chance: 0.2, delay_chance: 1.5, max_delay_secs: 5 };
        assert_eq!(over.validate().unwrap_err().field, "delay_chance");
        let neg = FaultPlan { drop_chance: -0.01, delay_chance: 0.0, max_delay_secs: 0 };
        assert!(neg.validate().is_err());
        assert!(FaultPlan::none().validate().is_ok());
        let full = FaultPlan { drop_chance: 1.0, delay_chance: 1.0, max_delay_secs: 30 };
        assert!(full.validate().is_ok(), "closed endpoints are legal");
    }

    #[test]
    fn laggy_plan_delays_but_never_drops() {
        let plan = FaultPlan::laggy(1.0, 9);
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..500 {
            match plan.decide(&mut rng) {
                FaultOutcome::Delay(d) => assert!((1..=9).contains(&d.as_secs())),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }
}
