//! Transport fault injection.
//!
//! The real study rode on cellular/Wi-Fi networks; pings occasionally fail
//! or arrive late. Mirroring smoltcp's fault-injection knobs
//! (`--drop-chance` and friends), a [`FaultPlan`] decides per message
//! whether the simulated transport drops or delays it. The measurement
//! estimators must tolerate these gaps, and the robustness ablation bench
//! sweeps the drop probability.

use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-message fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver normally.
    Deliver,
    /// Drop the message entirely (the client misses this ping).
    Drop,
    /// Deliver after the given extra latency.
    Delay(SimDuration),
}

/// A fault-injection configuration for the client↔service transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a message is dropped.
    pub drop_chance: f64,
    /// Probability a (non-dropped) message is delayed.
    pub delay_chance: f64,
    /// Maximum injected delay in seconds (uniform in `[1, max]`).
    pub max_delay_secs: u64,
}

impl FaultPlan {
    /// No faults: every message delivered immediately.
    pub const fn none() -> Self {
        FaultPlan { drop_chance: 0.0, delay_chance: 0.0, max_delay_secs: 0 }
    }

    /// A lossy plan with the given drop probability and no delays.
    pub fn lossy(drop_chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance), "probability out of range");
        FaultPlan { drop_chance, delay_chance: 0.0, max_delay_secs: 0 }
    }

    /// Decides the fate of one message.
    pub fn decide(&self, rng: &mut SimRng) -> FaultOutcome {
        if self.drop_chance > 0.0 && rng.chance(self.drop_chance) {
            return FaultOutcome::Drop;
        }
        if self.delay_chance > 0.0 && self.max_delay_secs > 0 && rng.chance(self.delay_chance) {
            let d = rng.range_u64(1, self.max_delay_secs + 1);
            return FaultOutcome::Delay(SimDuration::secs(d));
        }
        FaultOutcome::Deliver
    }

    /// True when this plan can never perturb a message.
    pub fn is_none(&self) -> bool {
        self.drop_chance <= 0.0 && (self.delay_chance <= 0.0 || self.max_delay_secs == 0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(plan.decide(&mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn drop_rate_is_respected() {
        let plan = FaultPlan::lossy(0.25);
        let mut rng = SimRng::seed_from_u64(6);
        let n = 40_000;
        let drops = (0..n)
            .filter(|_| plan.decide(&mut rng) == FaultOutcome::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn delays_bounded() {
        let plan = FaultPlan { drop_chance: 0.0, delay_chance: 1.0, max_delay_secs: 7 };
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            match plan.decide(&mut rng) {
                FaultOutcome::Delay(d) => {
                    assert!((1..=7).contains(&d.as_secs()));
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_max_delay_never_delays() {
        let plan = FaultPlan { drop_chance: 0.0, delay_chance: 1.0, max_delay_secs: 0 };
        assert!(plan.is_none());
        let mut rng = SimRng::seed_from_u64(8);
        assert_eq!(plan.decide(&mut rng), FaultOutcome::Deliver);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn lossy_rejects_bad_probability() {
        let _ = FaultPlan::lossy(1.5);
    }
}
