//! Simulated time.
//!
//! Time is integer seconds since the simulation epoch. The epoch is defined
//! to be **midnight on a Monday**, so day-of-week and time-of-day fall out
//! of simple arithmetic. All the paper's clocks are derived from this:
//! pings every 5 s, surge recomputation every 300 s, analysis bins of 300 s.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
const MINUTE: u64 = 60;
/// Seconds in one hour.
const HOUR: u64 = 3_600;
/// Seconds in one day.
const DAY: u64 = 86_400;
/// The paper's surge-update interval: 5 minutes.
pub(crate) const SURGE_INTERVAL_SECS: u64 = 300;

/// A duration in whole simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }

    /// Duration of `n` minutes.
    pub const fn mins(n: u64) -> Self {
        SimDuration(n * MINUTE)
    }

    /// Duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * HOUR)
    }

    /// Duration of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * DAY)
    }

    /// Total seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MINUTE as f64
    }

    /// Duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / DAY;
        let h = (self.0 % DAY) / HOUR;
        let m = (self.0 % HOUR) / MINUTE;
        let s = self.0 % MINUTE;
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            write!(f, "{s}s")
        }
    }
}

/// Day of the week of a simulated instant. The simulation epoch is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DayOfWeek {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl DayOfWeek {
    /// All days, Monday first (epoch order).
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

/// An instant in simulated time: whole seconds since the epoch
/// (midnight, Monday, day 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Seconds since midnight of the current simulated day.
    pub fn seconds_into_day(self) -> u64 {
        self.0 % DAY
    }

    /// Fractional hour of day in `[0, 24)`.
    pub fn hour_of_day_f64(self) -> f64 {
        self.seconds_into_day() as f64 / HOUR as f64
    }

    /// Whole hour of day in `0..24`.
    pub fn hour_of_day(self) -> u32 {
        (self.seconds_into_day() / HOUR) as u32
    }

    /// Days elapsed since the epoch.
    pub fn day_index(self) -> u64 {
        self.0 / DAY
    }

    /// Day of the week (epoch is Monday).
    pub fn day_of_week(self) -> DayOfWeek {
        DayOfWeek::ALL[(self.day_index() % 7) as usize]
    }

    /// Index of the 5-minute surge interval containing this instant
    /// (paper §5.2: multipliers update on a 5-minute clock).
    pub fn surge_interval(self) -> u64 {
        self.0 / SURGE_INTERVAL_SECS
    }

    /// Start of the surge interval containing this instant.
    pub fn surge_interval_start(self) -> SimTime {
        SimTime(self.0 - self.0 % SURGE_INTERVAL_SECS)
    }

    /// Seconds elapsed within the current surge interval, in `0..300`.
    pub fn seconds_into_surge_interval(self) -> u64 {
        self.0 % SURGE_INTERVAL_SECS
    }

    /// Is this instant within the paper's rush-hour windows
    /// (6–10 a.m. or 4–8 p.m., §5.4 "Rush" model)?
    pub fn is_rush_hour(self) -> bool {
        let h = self.hour_of_day();
        (6..10).contains(&h) || (16..20).contains(&h)
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later —
    /// time only flows forward in the simulator, so that is a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(self >= earlier, "negative duration: {earlier:?} -> {self:?}");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = (self.seconds_into_day()) / HOUR;
        let m = (self.seconds_into_day() % HOUR) / MINUTE;
        let s = self.seconds_into_day() % MINUTE;
        write!(f, "d{} {h:02}:{m:02}:{s:02}", self.day_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::mins(5).as_secs(), 300);
        assert_eq!(SimDuration::hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::mins(90).as_hours_f64(), 1.5);
        assert_eq!(SimDuration::secs(90).as_mins_f64(), 1.5);
    }

    #[test]
    fn epoch_is_monday_midnight() {
        assert_eq!(SimTime::EPOCH.day_of_week(), DayOfWeek::Monday);
        assert_eq!(SimTime::EPOCH.hour_of_day(), 0);
    }

    #[test]
    fn day_of_week_cycles() {
        let sat = SimTime::EPOCH + SimDuration::days(5);
        assert_eq!(sat.day_of_week(), DayOfWeek::Saturday);
        assert!(sat.day_of_week().is_weekend());
        let next_mon = SimTime::EPOCH + SimDuration::days(7);
        assert_eq!(next_mon.day_of_week(), DayOfWeek::Monday);
        assert!(!next_mon.day_of_week().is_weekend());
    }

    #[test]
    fn surge_interval_arithmetic() {
        let t = SimTime(923);
        assert_eq!(t.surge_interval(), 3);
        assert_eq!(t.surge_interval_start(), SimTime(900));
        assert_eq!(t.seconds_into_surge_interval(), 23);
        // Boundary is the start of the next interval.
        let b = SimTime(1200);
        assert_eq!(b.surge_interval(), 4);
        assert_eq!(b.seconds_into_surge_interval(), 0);
    }

    #[test]
    fn rush_hour_windows() {
        let mk = |h: u64| SimTime(h * 3600);
        assert!(!mk(5).is_rush_hour());
        assert!(mk(6).is_rush_hour());
        assert!(mk(9).is_rush_hour());
        assert!(!mk(10).is_rush_hour());
        assert!(!mk(15).is_rush_hour());
        assert!(mk(16).is_rush_hour());
        assert!(mk(19).is_rush_hour());
        assert!(!mk(20).is_rush_hour());
    }

    #[test]
    fn duration_addition() {
        assert_eq!(SimDuration::mins(5) + SimDuration::secs(30), SimDuration::secs(330));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime(1000);
        let u = t + SimDuration::secs(500);
        assert_eq!(u.as_secs(), 1500);
        assert_eq!(u - t, SimDuration::secs(500));
        assert_eq!(u.saturating_sub(SimDuration::secs(2000)), SimTime::EPOCH);
        let mut v = t;
        v += SimDuration::mins(1);
        assert_eq!(v.as_secs(), 1060);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = SimTime(10).since(SimTime(20));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime(0)), "d0 00:00:00");
        assert_eq!(format!("{}", SimTime(DAY + 3661)), "d1 01:01:01");
        assert_eq!(format!("{}", SimDuration::secs(59)), "59s");
        assert_eq!(format!("{}", SimDuration::secs(3725)), "1h02m05s");
        assert_eq!(format!("{}", SimDuration::days(2)), "2d00h00m00s");
    }

    #[test]
    fn hour_of_day_fractional() {
        let t = SimTime(DAY + 6 * HOUR + 1800);
        assert!((t.hour_of_day_f64() - 6.5).abs() < 1e-12);
        assert_eq!(t.hour_of_day(), 6);
    }
}
