//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The marketplace schedules trip completions, shift ends and surge-clock
//! ticks; the taxi replay schedules pickups and dropoffs. Events that fall
//! on the same second are delivered in insertion order (FIFO), which keeps
//! runs bit-reproducible across platforms — `BinaryHeap` alone would leave
//! same-key ordering unspecified.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled for a particular instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; breaks ties FIFO.
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first,
        // then lowest sequence number first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of future events.
#[derive(Debug, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<ScheduledEvent<E>> {
        match self.heap.peek() {
            Some(e) if e.at <= now => self.heap.pop(),
            _ => None,
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "early");
        q.schedule(SimTime(100), "late");
        assert_eq!(q.pop_due(SimTime(50)).unwrap().event, "early");
        assert!(q.pop_due(SimTime(50)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime(100)).unwrap().event, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime(77), ());
        q.schedule(SimTime(33), ());
        assert_eq!(q.peek_time(), Some(SimTime(33)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        let mut now = SimTime::EPOCH;
        q.schedule(SimTime(5), 1);
        now += SimDuration::secs(5);
        assert_eq!(q.pop_due(now).unwrap().event, 1);
        // Scheduling "in the past" is allowed (it fires immediately on the
        // next pop) — replay sources sometimes emit slightly stale events.
        q.schedule(SimTime(3), 2);
        q.schedule(SimTime(5), 3);
        assert_eq!(q.pop_due(now).unwrap().event, 2);
        assert_eq!(q.pop_due(now).unwrap().event, 3);
    }
}
