//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The marketplace schedules trip completions, shift ends and surge-clock
//! ticks; the taxi replay schedules pickups and dropoffs. Events that fall
//! on the same second are delivered in insertion order (FIFO), which keeps
//! runs bit-reproducible across platforms — `BinaryHeap` alone would leave
//! same-key ordering unspecified.

use crate::time::SimTime;
use serde::{Deserialize, Error, Serialize, Value};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled for a particular instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; breaks ties FIFO.
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first,
        // then lowest sequence number first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of future events.
#[derive(Debug, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<ScheduledEvent<E>> {
        match self.heap.peek() {
            Some(e) if e.at <= now => self.heap.pop(),
            _ => None,
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Snapshots the queue as `(next_seq, entries)` with entries sorted by
    /// `(at, seq)` — a canonical order independent of the heap's internal
    /// layout, so serialized bytes are stable across runs.
    pub fn snapshot(&self) -> (u64, Vec<(SimTime, u64, &E)>) {
        let mut entries: Vec<(SimTime, u64, &E)> =
            self.heap.iter().map(|e| (e.at, e.seq, &e.event)).collect();
        entries.sort_by_key(|(at, seq, _)| (*at, *seq));
        (self.next_seq, entries)
    }

    /// Rebuilds a queue from a [`snapshot`](EventQueue::snapshot),
    /// preserving every event's original sequence number so FIFO
    /// tie-breaking continues exactly where it left off.
    pub fn from_snapshot(next_seq: u64, entries: Vec<(SimTime, u64, E)>) -> Self {
        let heap = entries
            .into_iter()
            .map(|(at, seq, event)| ScheduledEvent { at, seq, event })
            .collect();
        EventQueue { heap, next_seq }
    }
}

impl<E: Serialize> Serialize for EventQueue<E> {
    fn to_value(&self) -> Value {
        let (next_seq, entries) = self.snapshot();
        let events = entries
            .into_iter()
            .map(|(at, seq, e)| {
                Value::Seq(vec![at.to_value(), seq.to_value(), e.to_value()])
            })
            .collect();
        Value::Map(vec![
            ("next_seq".into(), next_seq.to_value()),
            ("events".into(), Value::Seq(events)),
        ])
    }
}

impl<E: Deserialize> Deserialize for EventQueue<E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let next_seq = u64::from_value(v.field("next_seq")?)?;
        let entries = v
            .field("events")?
            .as_seq()
            .ok_or_else(|| Error::custom("event queue: expected array of events"))?
            .iter()
            .map(|e| match e.as_seq() {
                Some([at, seq, ev]) => Ok((
                    SimTime::from_value(at)?,
                    u64::from_value(seq)?,
                    E::from_value(ev)?,
                )),
                _ => Err(Error::custom("event queue: expected [at, seq, event]")),
            })
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(EventQueue::from_snapshot(next_seq, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "early");
        q.schedule(SimTime(100), "late");
        assert_eq!(q.pop_due(SimTime(50)).unwrap().event, "early");
        assert!(q.pop_due(SimTime(50)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime(100)).unwrap().event, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime(77), ());
        q.schedule(SimTime(33), ());
        assert_eq!(q.peek_time(), Some(SimTime(33)));
    }

    #[test]
    fn serde_round_trip_preserves_order_and_seq() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(20), 100u32);
        q.schedule(SimTime(10), 200u32);
        q.schedule(SimTime(10), 300u32); // same time: FIFO after 200
        q.pop(); // consume one so next_seq > len
        let v = q.to_value();
        let mut r: EventQueue<u32> = EventQueue::from_value(&v).expect("round trip");
        assert_eq!(r.len(), q.len());
        // New events scheduled after restore keep losing FIFO ties to the
        // survivors, exactly as in the original queue.
        q.schedule(SimTime(10), 400u32);
        r.schedule(SimTime(10), 400u32);
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        let b: Vec<_> = std::iter::from_fn(|| r.pop()).map(|e| e.event).collect();
        assert_eq!(a, b);
        assert_eq!(b, vec![300, 400, 100]);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        let mut now = SimTime::EPOCH;
        q.schedule(SimTime(5), 1);
        now += SimDuration::secs(5);
        assert_eq!(q.pop_due(now).unwrap().event, 1);
        // Scheduling "in the past" is allowed (it fires immediately on the
        // next pop) — replay sources sometimes emit slightly stale events.
        q.schedule(SimTime(3), 2);
        q.schedule(SimTime(5), 3);
        assert_eq!(q.pop_due(now).unwrap().event, 2);
        assert_eq!(q.pop_due(now).unwrap().event, 3);
    }
}
