//! Diurnal rate curves.
//!
//! Supply and demand in the paper are strongly diurnal (Fig. 8): peaks at
//! morning and evening rush hour, a trough around 4 a.m., weekend shapes
//! that differ from weekdays, and SF's 2 a.m. "last call" spike. A
//! [`DiurnalCurve`] is a piecewise-linear function over the 24-hour day
//! from a small set of `(hour, value)` control points, wrapping around
//! midnight.

use serde::{Deserialize, Serialize};

/// A piecewise-linear, midnight-wrapping function of the hour of day.
///
/// ```
/// use surgescope_simcore::DiurnalCurve;
/// // Morning rush peaks at 8 a.m., trough at 4 a.m.
/// let demand = DiurnalCurve::new(vec![(4.0, 10.0), (8.0, 100.0), (20.0, 40.0)]);
/// assert!(demand.at_hour(8.0) > demand.at_hour(4.0));
/// assert_eq!(demand.at_hour(6.0), 55.0); // halfway up the ramp
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Control points `(hour in [0,24), value)`, sorted by hour.
    points: Vec<(f64, f64)>,
}

impl DiurnalCurve {
    /// Builds a curve from control points. Hours must lie in `[0, 24)`;
    /// points are sorted internally. At least one point is required.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "diurnal curve needs at least one point");
        for (h, v) in &points {
            assert!((0.0..24.0).contains(h), "hour out of range: {h}");
            assert!(v.is_finite(), "non-finite value");
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        DiurnalCurve { points }
    }

    /// A constant curve.
    pub fn constant(value: f64) -> Self {
        DiurnalCurve::new(vec![(0.0, value)])
    }

    /// Value at fractional hour `h` (wrapped into `[0, 24)`), by linear
    /// interpolation between the neighbouring control points, wrapping
    /// across midnight.
    pub fn at_hour(&self, h: f64) -> f64 {
        let h = h.rem_euclid(24.0);
        let n = self.points.len();
        if n == 1 {
            return self.points[0].1;
        }
        // Find the first control point at or after h.
        let idx = self.points.partition_point(|(ph, _)| *ph <= h);
        let (h0, v0, h1, v1) = if idx == 0 {
            // Before the first point: wrap from the last point.
            let (lh, lv) = self.points[n - 1];
            let (fh, fv) = self.points[0];
            (lh - 24.0, lv, fh, fv)
        } else if idx == n {
            // After the last point: wrap to the first point.
            let (lh, lv) = self.points[n - 1];
            let (fh, fv) = self.points[0];
            (lh, lv, fh + 24.0, fv)
        } else {
            let (ah, av) = self.points[idx - 1];
            let (bh, bv) = self.points[idx];
            (ah, av, bh, bv)
        };
        if (h1 - h0).abs() < 1e-12 {
            return v0;
        }
        let t = (h - h0) / (h1 - h0);
        v0 + (v1 - v0) * t
    }

    /// Scales the whole curve by `k`.
    pub fn scaled(&self, k: f64) -> DiurnalCurve {
        DiurnalCurve { points: self.points.iter().map(|(h, v)| (*h, v * k)).collect() }
    }

    /// Mean value over the day (trapezoid integration at 1-minute steps).
    pub fn daily_mean(&self) -> f64 {
        let steps = 24 * 60;
        let sum: f64 = (0..steps).map(|i| self.at_hour(i as f64 / 60.0)).sum();
        sum / steps as f64
    }

    /// Maximum value over the day (sampled at 1-minute resolution).
    pub fn daily_max(&self) -> f64 {
        let steps = 24 * 60;
        (0..steps)
            .map(|i| self.at_hour(i as f64 / 60.0))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_curve() {
        let c = DiurnalCurve::constant(3.5);
        for h in [0.0, 6.2, 12.0, 23.99] {
            assert_eq!(c.at_hour(h), 3.5);
        }
        assert_eq!(c.daily_mean(), 3.5);
    }

    #[test]
    fn interpolates_between_points() {
        let c = DiurnalCurve::new(vec![(6.0, 0.0), (12.0, 6.0)]);
        assert_eq!(c.at_hour(6.0), 0.0);
        assert_eq!(c.at_hour(9.0), 3.0);
        assert_eq!(c.at_hour(12.0), 6.0);
    }

    #[test]
    fn wraps_across_midnight() {
        let c = DiurnalCurve::new(vec![(22.0, 10.0), (2.0, 2.0)]);
        // Midnight is halfway through the 22:00 -> 02:00 segment.
        assert!((c.at_hour(0.0) - 6.0).abs() < 1e-9);
        assert!((c.at_hour(23.0) - 8.0).abs() < 1e-9);
        assert!((c.at_hour(1.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_hours_wrap() {
        let c = DiurnalCurve::new(vec![(0.0, 1.0), (12.0, 3.0)]);
        assert_eq!(c.at_hour(24.0), c.at_hour(0.0));
        assert_eq!(c.at_hour(-12.0), c.at_hour(12.0));
        assert_eq!(c.at_hour(36.0), c.at_hour(12.0));
    }

    #[test]
    fn rush_hour_shape_peaks_where_expected() {
        // A plausible weekday demand curve.
        let c = DiurnalCurve::new(vec![
            (4.0, 0.2),
            (8.0, 1.0),
            (11.0, 0.6),
            (17.5, 1.2),
            (21.0, 0.7),
        ]);
        assert!(c.at_hour(8.0) > c.at_hour(4.0));
        assert!(c.at_hour(17.5) > c.at_hour(11.0));
        assert!((c.daily_max() - 1.2).abs() < 1e-9);
        let m = c.daily_mean();
        assert!(m > 0.2 && m < 1.2, "mean {m}");
    }

    #[test]
    fn scaled_multiplies_values() {
        let c = DiurnalCurve::new(vec![(0.0, 2.0), (12.0, 4.0)]).scaled(2.5);
        assert_eq!(c.at_hour(0.0), 5.0);
        assert_eq!(c.at_hour(12.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn rejects_bad_hour() {
        let _ = DiurnalCurve::new(vec![(25.0, 1.0)]);
    }
}
