//! Capped exponential backoff with deterministic jitter.
//!
//! Retry pacing for the remote measurement client. The *schedule* —
//! which delays a given retry sequence sleeps — is a pure function of a
//! seeded [`SimRng`] stream, so tests exercising reconnect behavior see
//! the same sequence every run; only the wall-clock sleeping itself is
//! nondeterministic, and wall time never feeds back into campaign
//! output.
//!
//! The policy is "full jitter": attempt `k` draws uniformly from
//! `0..=min(cap, base * 2^k)`. Full jitter decorrelates a party of
//! connections retrying against the same recovering server, which is
//! exactly the thundering-herd topology a lockstep campaign produces.

use crate::rng::SimRng;
use std::time::Duration;

/// A capped exponential backoff schedule. Construct once per retry
/// sequence; each [`Backoff::next_delay`] call advances the exponent.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule growing from `base` up to `cap` per attempt. A zero
    /// `base` is clamped to 1 ms so the exponential has somewhere to go;
    /// `cap` is clamped up to `base`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        let base_ms = (base.as_millis() as u64).max(1);
        Backoff { base_ms, cap_ms: (cap.as_millis() as u64).max(base_ms), attempt: 0 }
    }

    /// The ceiling the next draw is taken under (diagnostic/testing).
    pub fn current_cap(&self) -> Duration {
        Duration::from_millis(self.ceiling_ms())
    }

    fn ceiling_ms(&self) -> u64 {
        self.base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms)
    }

    /// Draws the next delay (full jitter: uniform in `0..=ceiling`) and
    /// advances the exponent. Deterministic given the `rng` stream.
    pub fn next_delay(&mut self, rng: &mut SimRng) -> Duration {
        let ceiling = self.ceiling_ms();
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_millis(rng.range_u64(0, ceiling + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SimRng::seed_from_u64(seed).split("backoff-test");
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80));
        (0..n).map(|_| b.next_delay(&mut rng).as_millis() as u64).collect()
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        assert_eq!(schedule(7, 8), schedule(7, 8));
        // Another seed draws another schedule (overwhelmingly likely for
        // 8 draws over growing ranges; pinned here for these two seeds).
        assert_ne!(schedule(7, 8), schedule(8, 8));
    }

    #[test]
    fn delays_stay_under_the_growing_cap() {
        let mut rng = SimRng::seed_from_u64(3).split("backoff-test");
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80));
        let caps = [10u64, 20, 40, 80, 80, 80];
        for want_cap in caps {
            assert_eq!(b.current_cap().as_millis() as u64, want_cap);
            let d = b.next_delay(&mut rng).as_millis() as u64;
            assert!(d <= want_cap, "delay {d} ms above cap {want_cap} ms");
        }
    }

    #[test]
    fn zero_base_and_huge_attempt_counts_are_safe() {
        let mut rng = SimRng::seed_from_u64(1).split("backoff-test");
        let mut b = Backoff::new(Duration::ZERO, Duration::from_millis(5));
        for _ in 0..100 {
            assert!(b.next_delay(&mut rng) <= Duration::from_millis(5));
        }
    }
}
