//! Durable storage for measurement campaigns.
//!
//! The paper's datasets are multi-week continuous campaigns; a reproduction
//! that keeps them only in process memory loses everything on a crash and
//! re-simulates minutes of CPU for every experiment. This crate is the
//! persistence layer that fixes both:
//!
//! * [`log`] — an append-only framed binary event log. Each record is
//!   length-prefixed and CRC32-guarded; the file opens with a header
//!   carrying a format version and the hash of the campaign config that
//!   produced it. Reading is a zero-copy iteration over the mapped byte
//!   buffer: records hand out `&[u8]` slices and decode on demand.
//! * [`checkpoint`] — single-value checkpoint files (same framing, one
//!   record) written atomically via a temp-file rename, so a crash never
//!   leaves a half-written checkpoint behind.
//! * [`codec`] — the binary encoding of the vendored serde [`Value`]
//!   tree. Floats are stored as raw IEEE-754 bit patterns, so NaN series
//!   round-trip bit-exactly — the determinism gates compare NaNs as bits.
//! * [`hash`] — FNV-1a content hashing used for config identity (cache
//!   keys, header↔config consistency checks).
//!
//! The crate deliberately knows nothing about campaigns; higher layers
//! define record kinds and schemas on top of these primitives.
//!
//! [`Value`]: serde::Value

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod hash;
pub mod log;

pub use checkpoint::{read_checkpoint, write_checkpoint};
pub use codec::{decode_value, encode_to_vec, encode_value};
pub use hash::{fnv1a64, hash_of, value_hash};
pub use log::{LogHeader, LogIter, LogReader, LogWriter, RawRecord};

use std::fmt;

/// Everything that can go wrong reading or writing a store file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed binary encoding inside a record payload.
    Codec(String),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is newer than this build understands.
    BadVersion(u32),
    /// The file ends mid-record (e.g. the writer crashed mid-append).
    Truncated {
        /// Byte offset of the incomplete record frame.
        offset: u64,
    },
    /// A record's CRC32 does not match its payload (bit rot / corruption).
    CrcMismatch {
        /// Byte offset of the corrupt record frame.
        offset: u64,
    },
    /// The payload decoded, but its shape did not match the expected schema.
    Schema(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store: io error: {e}"),
            StoreError::Codec(m) => write!(f, "store: codec error: {m}"),
            StoreError::BadMagic => write!(f, "store: not a store file (bad magic)"),
            StoreError::BadVersion(v) => {
                write!(f, "store: unsupported format version {v}")
            }
            StoreError::Truncated { offset } => {
                write!(f, "store: truncated record at byte {offset}")
            }
            StoreError::CrcMismatch { offset } => {
                write!(f, "store: CRC mismatch at byte {offset}")
            }
            StoreError::Schema(m) => write!(f, "store: schema error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde::Error> for StoreError {
    fn from(e: serde::Error) -> Self {
        StoreError::Schema(e.to_string())
    }
}
