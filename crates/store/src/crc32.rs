//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//!
//! Hand-rolled because the offline dependency set has no checksum crate.
//! The parameters match zlib's `crc32()`, so log files can be spot-checked
//! with standard tools.

/// Lazily built 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (initial value 0, standard pre/post inversion).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"surgescope campaign record".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
