//! Binary encoding of the vendored serde [`Value`] tree.
//!
//! One byte of type tag, then a payload. Integers and lengths use LEB128
//! varints; floats are stored as their raw IEEE-754 little-endian bit
//! pattern, never reformatted through text — that is what makes NaN
//! observation gaps survive a round trip bit-exactly, which the
//! determinism gates require.
//!
//! The encoding is canonical for a given `Value`: maps keep their
//! insertion order (the stub's `Value::Map` is an ordered vec), so equal
//! values always produce equal bytes and byte comparison doubles as deep
//! bit-exact equality.

use crate::StoreError;
use serde::Value;

/// Type tags. A tag not listed here is a decode error, which is how
/// corruption inside a CRC-valid record (impossible short of a bug) or a
/// schema drift across versions surfaces.
const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_SEQ: u8 = 0x07;
const TAG_MAP: u8 = 0x08;

fn put_varint(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// ZigZag so small negative integers stay small on disk.
fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

/// Appends the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            put_varint(out, *n);
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            put_varint(out, zigzag(*n));
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(out, entries.len() as u64);
            for (k, val) in entries {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Encodes `v` into a fresh buffer.
pub fn encode_to_vec(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_value(v, &mut out);
    out
}

/// Streaming byte cursor over an encoded buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn byte(&mut self) -> Result<u8, StoreError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| StoreError::Codec("unexpected end of payload".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| StoreError::Codec("unexpected end of payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, StoreError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            n |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(n);
            }
        }
        Err(StoreError::Codec("varint longer than 64 bits".into()))
    }

    fn string(&mut self) -> Result<String, StoreError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Codec("invalid UTF-8 in string".into()))
    }

    fn value(&mut self) -> Result<Value, StoreError> {
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => Ok(Value::U64(self.varint()?)),
            TAG_I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            TAG_F64 => {
                let raw = self.take(8)?;
                let bits = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                Ok(Value::F64(f64::from_bits(bits)))
            }
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_SEQ => {
                let n = self.varint()? as usize;
                // Guard against absurd counts from corrupt input before
                // reserving memory: each element takes at least one byte.
                if n > self.buf.len() - self.pos {
                    return Err(StoreError::Codec("sequence count exceeds payload".into()));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let n = self.varint()? as usize;
                if n > self.buf.len() - self.pos {
                    return Err(StoreError::Codec("map count exceeds payload".into()));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.string()?;
                    let v = self.value()?;
                    entries.push((k, v));
                }
                Ok(Value::Map(entries))
            }
            tag => Err(StoreError::Codec(format!("unknown type tag 0x{tag:02X}"))),
        }
    }
}

/// Decodes one value from `buf`, requiring the buffer to be fully consumed.
pub fn decode_value(buf: &[u8]) -> Result<Value, StoreError> {
    let mut c = Cursor { buf, pos: 0 };
    let v = c.value()?;
    if c.pos != buf.len() {
        return Err(StoreError::Codec(format!(
            "{} trailing bytes after value",
            buf.len() - c.pos
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let bytes = encode_to_vec(&v);
        let back = decode_value(&bytes).expect("decode");
        // PartialEq on Value compares f64 with ==, which is false for NaN;
        // compare re-encodings instead (canonical bytes ⇒ bit equality).
        assert_eq!(bytes, encode_to_vec(&back), "value {v:?}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        for n in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(Value::U64(n));
        }
        for n in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            round_trip(Value::I64(n));
        }
        round_trip(Value::Str(String::new()));
        round_trip(Value::Str("übér surge 3.2×".into()));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [
            0.0f64,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from(f32::NAN),
            f64::MIN_POSITIVE,
            f64::from_bits(0x7FF8_DEAD_BEEF_0001), // NaN with payload
        ] {
            let bytes = encode_to_vec(&Value::F64(x));
            match decode_value(&bytes).expect("decode") {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits()),
                other => panic!("expected F64, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        round_trip(Value::Seq(vec![
            Value::U64(1),
            Value::Map(vec![
                ("surge".into(), Value::F64(f64::from(f32::NAN))),
                ("ewt".into(), Value::Seq(vec![Value::F64(2.5), Value::Null])),
            ]),
        ]));
        round_trip(Value::Seq(Vec::new()));
        round_trip(Value::Map(Vec::new()));
    }

    #[test]
    fn truncated_and_garbage_input_error_cleanly() {
        let bytes = encode_to_vec(&Value::Str("hello world".into()));
        for cut in 0..bytes.len() {
            assert!(decode_value(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_value(&[0xFF]).is_err(), "unknown tag");
        assert!(decode_value(&[]).is_err(), "empty");
        // Trailing junk is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_value(&extended).is_err());
        // A sequence claiming more elements than bytes remain must not
        // attempt a huge allocation.
        assert!(decode_value(&[TAG_SEQ, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F]).is_err());
    }

    #[test]
    fn map_order_is_preserved() {
        let v = Value::Map(vec![
            ("z".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        let back = decode_value(&encode_to_vec(&v)).unwrap();
        assert_eq!(v, back);
    }
}
