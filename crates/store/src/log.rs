//! Append-only framed binary event log.
//!
//! Layout:
//!
//! ```text
//! header   := magic "SSLOG1\0\0" (8) | format_version u32 LE | flags u32 LE (0)
//!             | config_hash u64 LE                                  (24 bytes)
//! record   := len u32 LE | crc32 u32 LE | body                       (frame)
//! body     := kind u8 | payload bytes            (len = body length ≥ 1)
//! ```
//!
//! The CRC covers the whole body (kind byte included), so a flipped bit
//! anywhere in a record is caught. A file that ends mid-frame — the
//! classic crashed-writer tail — reads back as every complete record
//! followed by a clean [`StoreError::Truncated`]; it never panics and
//! never yields a partial record.
//!
//! Reading is zero-copy: [`LogReader`] holds the file bytes once and
//! [`LogIter`] hands out [`RawRecord`]s whose payloads are slices into
//! that buffer. Decoding to a [`Value`] happens only when the caller asks.
//!
//! [`Value`]: serde::Value

use crate::codec::{decode_value, encode_to_vec};
use crate::crc32::crc32;
use crate::StoreError;
use serde::Value;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use surgescope_obs::Counter;

/// First bytes of every log file.
pub const LOG_MAGIC: [u8; 8] = *b"SSLOG1\0\0";
/// Current log format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the fixed file header in bytes.
pub const HEADER_LEN: usize = 24;
/// Per-record framing overhead in bytes (length prefix + CRC).
pub const FRAME_OVERHEAD: usize = 8;

/// Upper bound on a single record body; anything larger in a length
/// prefix is treated as corruption rather than an allocation request.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// Decoded file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHeader {
    /// Format version the file was written with.
    pub format_version: u32,
    /// Hash of the campaign config that produced the file.
    pub config_hash: u64,
}

fn encode_header(config_hash: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&LOG_MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // bytes 12..16: flags, reserved as zero.
    h[16..24].copy_from_slice(&config_hash.to_le_bytes());
    h
}

fn decode_header(buf: &[u8]) -> Result<LogHeader, StoreError> {
    if buf.len() < HEADER_LEN {
        return Err(StoreError::Truncated { offset: 0 });
    }
    if buf[0..8] != LOG_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let format_version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if format_version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(format_version));
    }
    let config_hash = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    Ok(LogHeader { format_version, config_hash })
}

/// Streaming writer for a new log file.
#[derive(Debug)]
pub struct LogWriter {
    out: BufWriter<File>,
    bytes_written: u64,
    records: u64,
    // Telemetry mirrors of the two totals above, shared with whoever
    // called [`LogWriter::set_metrics`]. Byte/record totals are pure
    // functions of the appended payloads, so they are snapshot-safe.
    bytes_counter: Counter,
    records_counter: Counter,
}

impl LogWriter {
    /// Creates (truncating) the file at `path` and writes the header.
    pub fn create(path: &Path, config_hash: u64) -> Result<Self, StoreError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&encode_header(config_hash))?;
        Ok(LogWriter {
            out,
            bytes_written: HEADER_LEN as u64,
            records: 0,
            bytes_counter: Counter::new(),
            records_counter: Counter::new(),
        })
    }

    /// Replaces the telemetry counters with caller-owned handles (e.g. a
    /// campaign's metrics registry). Bytes already written — at least the
    /// header — are credited to the new counters so they mirror
    /// [`bytes_written`](LogWriter::bytes_written) exactly.
    pub fn set_metrics(&mut self, bytes: Counter, records: Counter) {
        bytes.add(self.bytes_written);
        records.add(self.records);
        self.bytes_counter = bytes;
        self.records_counter = records;
    }

    /// Appends one record with the given kind and already-encoded payload.
    pub fn append_raw(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let len = u32::try_from(1 + payload.len())
            .ok()
            .filter(|l| *l <= MAX_RECORD_LEN)
            .ok_or_else(|| StoreError::Codec("record too large".into()))?;
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(kind);
        body.extend_from_slice(payload);
        let crc = crc32(&body);
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&body)?;
        self.bytes_written += (FRAME_OVERHEAD + body.len()) as u64;
        self.records += 1;
        self.bytes_counter.add((FRAME_OVERHEAD + body.len()) as u64);
        self.records_counter.incr();
        Ok(())
    }

    /// Appends one record, encoding `payload` with the binary codec.
    pub fn append(&mut self, kind: u8, payload: &Value) -> Result<(), StoreError> {
        self.append_raw(kind, &encode_to_vec(payload))
    }

    /// Total bytes written so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.out.flush()?;
        Ok(())
    }

    /// Flushes and closes the file, returning total bytes written.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        self.out.flush()?;
        Ok(self.bytes_written)
    }
}

/// One record as stored: the kind byte plus a borrowed payload slice.
#[derive(Debug, Clone, Copy)]
pub struct RawRecord<'a> {
    /// Record kind (schema-level discriminator owned by the caller).
    pub kind: u8,
    /// Payload bytes, borrowed from the reader's buffer (zero-copy).
    pub payload: &'a [u8],
}

impl RawRecord<'_> {
    /// Decodes the payload with the binary codec.
    pub fn value(&self) -> Result<Value, StoreError> {
        decode_value(self.payload)
    }
}

/// Whole-file log reader.
#[derive(Debug)]
pub struct LogReader {
    buf: Vec<u8>,
    header: LogHeader,
}

impl LogReader {
    /// Opens and validates the header of the log at `path`.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        let header = decode_header(&buf)?;
        Ok(LogReader { buf, header })
    }

    /// The validated file header.
    pub fn header(&self) -> LogHeader {
        self.header
    }

    /// Total file size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Iterates records in file order. Each item is either a valid record
    /// or the error that terminated the scan (iteration stops after an
    /// error).
    pub fn iter(&self) -> LogIter<'_> {
        LogIter { buf: &self.buf, pos: HEADER_LEN, failed: false }
    }
}

/// Zero-copy record iterator over a [`LogReader`]'s buffer.
#[derive(Debug)]
pub struct LogIter<'a> {
    buf: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> Iterator for LogIter<'a> {
    type Item = Result<RawRecord<'a>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos == self.buf.len() {
            return None;
        }
        let offset = self.pos as u64;
        let fail = |s: &mut Self, e: StoreError| {
            s.failed = true;
            Some(Err(e))
        };
        if self.buf.len() - self.pos < FRAME_OVERHEAD {
            return fail(self, StoreError::Truncated { offset });
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"),
        );
        let crc_stored = u32::from_le_bytes(
            self.buf[self.pos + 4..self.pos + 8].try_into().expect("4 bytes"),
        );
        if len == 0 || len > MAX_RECORD_LEN {
            return fail(self, StoreError::Codec(format!("bad record length {len}")));
        }
        let body_start = self.pos + FRAME_OVERHEAD;
        let body_end = body_start + len as usize;
        if body_end > self.buf.len() {
            return fail(self, StoreError::Truncated { offset });
        }
        let body = &self.buf[body_start..body_end];
        if crc32(body) != crc_stored {
            return fail(self, StoreError::CrcMismatch { offset });
        }
        self.pos = body_end;
        Some(Ok(RawRecord { kind: body[0], payload: &body[1..] }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "surgescope-store-test-{}-{tag}-{n}.sslog",
            std::process::id()
        ))
    }

    fn sample_record(i: u64) -> Value {
        Value::Map(vec![
            ("tick".into(), Value::U64(i)),
            (
                "surge".into(),
                Value::Seq(vec![
                    Value::F64(1.0 + i as f64 * 0.25),
                    Value::F64(f64::from(f32::NAN)),
                ]),
            ),
        ])
    }

    #[test]
    fn write_then_read_round_trip() {
        let path = temp_path("roundtrip");
        let mut w = LogWriter::create(&path, 0xDEAD_BEEF).unwrap();
        for i in 0..100 {
            w.append(1, &sample_record(i)).unwrap();
        }
        w.append(2, &Value::Str("finish".into())).unwrap();
        let bytes = w.finish().unwrap();

        let r = LogReader::open(&path).unwrap();
        assert_eq!(r.header().config_hash, 0xDEAD_BEEF);
        assert_eq!(r.header().format_version, FORMAT_VERSION);
        assert_eq!(r.len_bytes(), bytes);
        let records: Vec<_> = r.iter().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(records.len(), 101);
        for (i, rec) in records[..100].iter().enumerate() {
            assert_eq!(rec.kind, 1);
            let v = rec.value().unwrap();
            assert_eq!(v.field("tick").unwrap(), &Value::U64(i as u64));
            // NaN survives bit-exactly.
            match v.field("surge").unwrap().as_seq().unwrap() {
                [_, Value::F64(nan)] => {
                    assert_eq!(nan.to_bits(), f64::from(f32::NAN).to_bits());
                }
                other => panic!("unexpected surge shape {other:?}"),
            }
        }
        assert_eq!(records[100].kind, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_errors_cleanly() {
        let path = temp_path("truncated");
        let mut w = LogWriter::create(&path, 7).unwrap();
        for i in 0..10 {
            w.append(1, &sample_record(i)).unwrap();
        }
        w.finish().unwrap();

        let full = std::fs::read(&path).unwrap();
        // Offsets at which a cut leaves only whole records behind.
        let mut boundaries = vec![HEADER_LEN];
        {
            let r = LogReader::open(&path).unwrap();
            let mut pos = HEADER_LEN;
            for rec in r.iter() {
                pos += FRAME_OVERHEAD + 1 + rec.unwrap().payload.len();
                boundaries.push(pos);
            }
        }
        // Cut the file at every possible length: the reader must always
        // return complete records, then — unless the cut falls exactly on
        // a record boundary — a clean Truncated error. Never a panic.
        for cut in HEADER_LEN..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let r = LogReader::open(&path).unwrap();
            let mut complete = 0;
            let mut saw_err = false;
            for item in r.iter() {
                match item {
                    Ok(_) => complete += 1,
                    Err(StoreError::Truncated { .. }) => saw_err = true,
                    Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                }
            }
            assert_eq!(
                saw_err,
                !boundaries.contains(&cut),
                "cut {cut}: truncation mid-record must error, boundary cut must not"
            );
            assert!(complete <= 10);
        }
        // Header itself truncated.
        std::fs::write(&path, &full[..HEADER_LEN - 1]).unwrap();
        assert!(matches!(
            LogReader::open(&path),
            Err(StoreError::Truncated { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_bit_fails_crc_not_panic() {
        let path = temp_path("crc");
        let mut w = LogWriter::create(&path, 7).unwrap();
        for i in 0..5 {
            w.append(1, &sample_record(i)).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the third record's payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let r = LogReader::open(&path).unwrap();
        let outcomes: Vec<_> = r.iter().collect();
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, Err(StoreError::CrcMismatch { .. }))),
            "flip must surface as CRC mismatch: {outcomes:?}"
        );
        // Iteration stops at the first error.
        assert!(outcomes.iter().rev().skip(1).all(|o| o.is_ok()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTALOG!plus some trailing bytes").unwrap();
        assert!(matches!(LogReader::open(&path), Err(StoreError::BadMagic)));
        let mut hdr = encode_header(1).to_vec();
        hdr[8] = 99; // future format version
        std::fs::write(&path, &hdr).unwrap();
        assert!(matches!(
            LogReader::open(&path),
            Err(StoreError::BadVersion(99))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
