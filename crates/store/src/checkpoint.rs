//! Single-value checkpoint files.
//!
//! A checkpoint is a log file with exactly one record (kind
//! [`CHECKPOINT_RECORD`]) holding the serialized state tree. Writes go to
//! a sibling temp file first and are renamed into place, so an interrupted
//! write leaves either the previous checkpoint or none — never a torn one.
//! All the framing guarantees of [`crate::log`] apply: a corrupt or
//! truncated checkpoint reads back as a clean error.

use crate::log::{LogReader, LogWriter};
use crate::StoreError;
use serde::Value;
use std::path::Path;

/// Record kind used for the single checkpoint record.
pub const CHECKPOINT_RECORD: u8 = 0xC0;

/// Atomically writes `state` as a checkpoint at `path`.
pub fn write_checkpoint(path: &Path, config_hash: u64, state: &Value) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut w = LogWriter::create(&tmp, config_hash)?;
    w.append(CHECKPOINT_RECORD, state)?;
    w.finish()?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a checkpoint back as `(config_hash, state)`.
pub fn read_checkpoint(path: &Path) -> Result<(u64, Value), StoreError> {
    let r = LogReader::open(path)?;
    let mut iter = r.iter();
    let rec = iter
        .next()
        .ok_or_else(|| StoreError::Schema("checkpoint file has no record".into()))??;
    if rec.kind != CHECKPOINT_RECORD {
        return Err(StoreError::Schema(format!(
            "expected checkpoint record, got kind 0x{:02X}",
            rec.kind
        )));
    }
    let state = rec.value()?;
    if iter.next().is_some() {
        return Err(StoreError::Schema("checkpoint file has trailing records".into()));
    }
    Ok((r.header().config_hash, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn round_trip_and_atomicity() {
        let path = std::env::temp_dir().join(format!(
            "surgescope-ckpt-test-{}.ckpt",
            std::process::id()
        ));
        let state = Value::Map(vec![
            ("tick".into(), Value::U64(1440)),
            ("rng".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
        ]);
        write_checkpoint(&path, 42, &state).unwrap();
        let (hash, back) = read_checkpoint(&path).unwrap();
        assert_eq!(hash, 42);
        assert_eq!(back, state);
        // Overwrite replaces the old checkpoint; no temp file lingers.
        write_checkpoint(&path, 43, &Value::Null).unwrap();
        let (hash, back) = read_checkpoint(&path).unwrap();
        assert_eq!((hash, back), (43, Value::Null));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp).exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_errors_cleanly() {
        let path = std::env::temp_dir().join(format!(
            "surgescope-ckpt-corrupt-{}.ckpt",
            std::process::id()
        ));
        write_checkpoint(&path, 1, &Value::Str("state".into())).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
