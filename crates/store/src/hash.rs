//! Content hashing for config identity.
//!
//! The campaign config hash keys the disk cache, names checkpoint/log
//! files, and is embedded in every file header so a log can never be
//! replayed against the wrong configuration. FNV-1a over the canonical
//! binary encoding is sufficient: the hash gates *identity*, not
//! adversarial collisions.

use crate::codec::encode_to_vec;
use serde::{Serialize, Value};

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash of a [`Value`]'s canonical binary encoding.
pub fn value_hash(v: &Value) -> u64 {
    fnv1a64(&encode_to_vec(v))
}

/// Hash of any serializable value (via its [`Value`] tree).
pub fn hash_of<T: Serialize + ?Sized>(v: &T) -> u64 {
    value_hash(&v.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn value_hash_distinguishes_values() {
        let a = value_hash(&Value::Seq(vec![Value::U64(1), Value::U64(2)]));
        let b = value_hash(&Value::Seq(vec![Value::U64(2), Value::U64(1)]));
        assert_ne!(a, b);
        // f64 NaN payloads hash by bits, not by float equality.
        let n1 = value_hash(&Value::F64(f64::from_bits(0x7FF8_0000_0000_0001)));
        let n2 = value_hash(&Value::F64(f64::from_bits(0x7FF8_0000_0000_0002)));
        assert_ne!(n1, n2);
    }
}
