//! TextTable formatting unit tests.

use surgescope_experiments::TextTable;

#[test]
fn aligns_columns() {
    let mut t = TextTable::new(&["a", "long-header", "c"]);
    t.row(vec!["xxxxxx".into(), "1".into(), "2".into()]);
    t.row(vec!["y".into(), "22".into(), "333".into()]);
    let s = t.render();
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 4, "header + rule + 2 rows");
    assert!(lines[2].starts_with("xxxxxx"));
}

#[test]
fn csv_rows_join_with_commas() {
    let mut t = TextTable::new(&["x", "y"]);
    t.row(vec!["1".into(), "2".into()]);
    let (header, rows) = t.csv_rows();
    assert_eq!(header, "x,y");
    assert_eq!(rows, vec!["1,2".to_string()]);
}

#[test]
#[should_panic(expected = "row arity mismatch")]
fn rejects_ragged_rows() {
    let mut t = TextTable::new(&["x", "y"]);
    t.row(vec!["1".into()]);
}
