//! Harness self-tests: experiment routing and quick-mode shape checks.
//! These are the "does `repro all` work" gate — heavier shape assertions
//! live in EXPERIMENTS.md against the full-fidelity run.

use surgescope_experiments::{cache::CampaignCache, run_experiment, RunCtx, ALL_IDS};

#[test]
fn every_experiment_id_is_routable() {
    let ctx = RunCtx::quick(1);
    let mut cache = CampaignCache::new();
    assert!(run_experiment("nope", &ctx, &mut cache).is_none());
    // fig03 is pure geometry — run it for real as the cheap probe.
    let out = run_experiment("fig03", &ctx, &mut cache).expect("fig03 runs");
    assert_eq!(out.id, "fig03");
    assert!(out.metric("uber_manhattan_clients").unwrap() > 40.0);
    assert_eq!(ALL_IDS.len(), 26);
}

#[test]
fn fault_sweep_degrades_gracefully() {
    let ctx = RunCtx::quick(5);
    let mut cache = CampaignCache::new();
    let out = run_experiment("fault_sweep", &ctx, &mut cache).expect("fault_sweep runs");
    // The zero-drop run is the drift baseline by construction.
    assert_eq!(out.metric("supply_drift_d00").unwrap(), 0.0);
    // Even at zero drops the fixed 10% delay leg leaves gaps: a delayed
    // ping's send tick has no delivery, and its late payload lands on a
    // tick that usually already had one. So the floor sits a bit under
    // the 10% delay chance, and each drop increment adds on top.
    let g00 = out.metric("gap_frac_d00").unwrap();
    assert!(g00 > 0.0 && g00 < 0.12, "delay-only gap fraction {g00}");
    let g05 = out.metric("gap_frac_d05").unwrap();
    let g20 = out.metric("gap_frac_d20").unwrap();
    assert!(
        g00 < g05 && g05 < g20,
        "gap fraction must grow with the drop chance: {g00} {g05} {g20}"
    );
    let added = g20 - g00;
    assert!(
        (0.10..0.25).contains(&added),
        "20% drops should add ≈0.18 gap fraction, got {added}"
    );
    // The estimator's unique-ID supply count must degrade *gracefully*:
    // even at 20% drops the grace window absorbs most missed sightings.
    let drift = out.metric("supply_drift_d20").unwrap();
    assert!(drift < 0.15, "supply drifted {:.1}% at 20% drops", drift * 100.0);
    for (k, v) in &out.metrics {
        assert!(v.is_finite(), "{k} must be finite");
    }
}

#[test]
fn quick_run_of_campaign_backed_experiments_produces_shapes() {
    // One shared cache: this is the expensive test (several quick
    // campaigns) but it exercises the exact code path of `repro all`.
    let ctx = RunCtx::quick(99);
    let mut cache = CampaignCache::new();

    let fig12 = run_experiment("fig12", &ctx, &mut cache).unwrap();
    let m_ns = fig12.metric("manhattan_no_surge_frac").unwrap();
    let s_ns = fig12.metric("sf_no_surge_frac").unwrap();
    assert!(m_ns > s_ns, "Manhattan must surge less than SF: {m_ns} vs {s_ns}");

    let fig13 = run_experiment("fig13", &ctx, &mut cache).unwrap();
    let feb = fig13.metric("feb_client_sub_minute").unwrap();
    let apr = fig13.metric("apr_client_sub_minute").unwrap();
    assert_eq!(feb, 0.0, "Feb era cannot have sub-minute episodes");
    assert!(apr > 0.0, "Apr era must show jitter-induced sub-minute episodes");

    let fig17 = run_experiment("fig17", &ctx, &mut cache).unwrap();
    for city in ["manhattan", "sf"] {
        if let Some(max_k) = fig17.metric(&format!("{city}_max_simultaneous")) {
            assert!(max_k <= 6.0, "{city}: {max_k} simultaneous jitterers");
        }
    }

    let fig21 = run_experiment("fig21", &ctx, &mut cache).unwrap();
    let peaks = [
        fig21.metric("manhattan_peak_r").unwrap(),
        fig21.metric("sf_peak_r").unwrap(),
    ];
    assert!(peaks.iter().any(|&r| r > 0.1), "EWT correlation peaks: {peaks:?}");

    let tab01 = run_experiment("tab01", &ctx, &mut cache).unwrap();
    for (k, v) in &tab01.metrics {
        if k.ends_with("_r2") {
            assert!(*v < 0.9, "{k} = {v}: forecasting must stay hard");
        }
    }

    let fig23 = run_experiment("fig23", &ctx, &mut cache).unwrap();
    let m = fig23.metric("manhattan_median_success_pct").unwrap();
    let s = fig23.metric("sf_median_success_pct").unwrap();
    assert!(
        m > s,
        "walking must pay off more in Manhattan than SF ({m} vs {s})"
    );
}

#[test]
fn outcome_rendering_and_csv() {
    let ctx = RunCtx::quick(7);
    let mut cache = CampaignCache::new();
    let out = run_experiment("fig03", &ctx, &mut cache).unwrap();
    let rendered = out.render();
    assert!(rendered.contains("fig03"));
    assert!(rendered.contains("metrics"));
    assert!(ctx.out_dir.is_none(), "quick contexts write no CSV");
}
