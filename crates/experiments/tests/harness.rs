//! Harness self-tests: experiment routing and quick-mode shape checks.
//! These are the "does `repro all` work" gate — heavier shape assertions
//! live in EXPERIMENTS.md against the full-fidelity run.

use surgescope_experiments::{cache::CampaignCache, run_experiment, RunCtx, ALL_IDS};

#[test]
fn scheduler_prefetch_matches_serial_byte_for_byte() {
    use surgescope_api::ProtocolEra;
    use surgescope_core::persist::campaign_encoded;
    use surgescope_experiments::cache::City;
    use surgescope_experiments::schedule;

    // Three experiments sharing the same pair of Apr-era campaigns.
    let ids: Vec<String> =
        ["fig05", "fig12", "fig16"].iter().map(|s| s.to_string()).collect();
    let ctx = RunCtx::quick(420);

    // Serial reference: experiments build their campaigns inline.
    let serial = CampaignCache::new();
    let serial_out: Vec<_> =
        ids.iter().map(|id| run_experiment(id, &ctx, &serial).unwrap()).collect();

    // Scheduled run: campaigns prefetched on 4 workers, then the same
    // experiments consume the cache.
    let scheduled = CampaignCache::new();
    let tasks = schedule::prefetch(&ids, &ctx, &scheduled, 4);
    assert_eq!(tasks, 2, "three experiments share exactly two campaigns");
    let scheduled_out: Vec<_> =
        ids.iter().map(|id| run_experiment(id, &ctx, &scheduled).unwrap()).collect();

    // The shared campaigns must be byte-identical down to the encoding.
    for city in City::BOTH {
        let a = serial.campaign(city, ProtocolEra::Apr2015, &ctx);
        let b = scheduled.campaign(city, ProtocolEra::Apr2015, &ctx);
        assert_eq!(
            campaign_encoded(&a),
            campaign_encoded(&b),
            "{}: scheduled campaign diverged from serial",
            city.label()
        );
    }
    // And so must everything derived from them.
    for (a, b) in serial_out.iter().zip(&scheduled_out) {
        assert_eq!(a.table, b.table, "{}: table diverged", a.id);
        assert_eq!(a.metrics, b.metrics, "{}: metrics diverged", a.id);
    }
}

#[test]
fn every_experiment_id_is_routable() {
    let ctx = RunCtx::quick(1);
    let cache = CampaignCache::new();
    assert!(run_experiment("nope", &ctx, &cache).is_none());
    // fig03 is pure geometry — run it for real as the cheap probe.
    let out = run_experiment("fig03", &ctx, &cache).expect("fig03 runs");
    assert_eq!(out.id, "fig03");
    assert!(out.metric("uber_manhattan_clients").unwrap() > 40.0);
    assert_eq!(ALL_IDS.len(), 26);
}

#[test]
fn fault_sweep_degrades_gracefully() {
    let ctx = RunCtx::quick(5);
    let cache = CampaignCache::new();
    let out = run_experiment("fault_sweep", &ctx, &cache).expect("fault_sweep runs");
    // The zero-drop run is the drift baseline by construction.
    assert_eq!(out.metric("supply_drift_d00").unwrap(), 0.0);
    // Even at zero drops the fixed 10% delay leg leaves gaps: a delayed
    // ping's send tick has no delivery, and its late payload lands on a
    // tick that usually already had one. So the floor sits a bit under
    // the 10% delay chance, and each drop increment adds on top.
    let g00 = out.metric("gap_frac_d00").unwrap();
    assert!(g00 > 0.0 && g00 < 0.12, "delay-only gap fraction {g00}");
    let g05 = out.metric("gap_frac_d05").unwrap();
    let g20 = out.metric("gap_frac_d20").unwrap();
    assert!(
        g00 < g05 && g05 < g20,
        "gap fraction must grow with the drop chance: {g00} {g05} {g20}"
    );
    let added = g20 - g00;
    assert!(
        (0.10..0.25).contains(&added),
        "20% drops should add ≈0.18 gap fraction, got {added}"
    );
    // The estimator's unique-ID supply count must degrade *gracefully*:
    // even at 20% drops the grace window absorbs most missed sightings.
    let drift = out.metric("supply_drift_d20").unwrap();
    assert!(drift < 0.15, "supply drifted {:.1}% at 20% drops", drift * 100.0);
    for (k, v) in &out.metrics {
        assert!(v.is_finite(), "{k} must be finite");
    }
}

#[test]
fn quick_run_of_campaign_backed_experiments_produces_shapes() {
    // One shared cache: this is the expensive test (several quick
    // campaigns) but it exercises the exact code path of `repro all`.
    let ctx = RunCtx::quick(99);
    let cache = CampaignCache::new();

    let fig12 = run_experiment("fig12", &ctx, &cache).unwrap();
    let m_ns = fig12.metric("manhattan_no_surge_frac").unwrap();
    let s_ns = fig12.metric("sf_no_surge_frac").unwrap();
    assert!(m_ns > s_ns, "Manhattan must surge less than SF: {m_ns} vs {s_ns}");

    let fig13 = run_experiment("fig13", &ctx, &cache).unwrap();
    let feb = fig13.metric("feb_client_sub_minute").unwrap();
    let apr = fig13.metric("apr_client_sub_minute").unwrap();
    assert_eq!(feb, 0.0, "Feb era cannot have sub-minute episodes");
    assert!(apr > 0.0, "Apr era must show jitter-induced sub-minute episodes");

    let fig17 = run_experiment("fig17", &ctx, &cache).unwrap();
    for city in ["manhattan", "sf"] {
        if let Some(max_k) = fig17.metric(&format!("{city}_max_simultaneous")) {
            assert!(max_k <= 6.0, "{city}: {max_k} simultaneous jitterers");
        }
    }

    let fig21 = run_experiment("fig21", &ctx, &cache).unwrap();
    let peaks = [
        fig21.metric("manhattan_peak_r").unwrap(),
        fig21.metric("sf_peak_r").unwrap(),
    ];
    assert!(peaks.iter().any(|&r| r > 0.1), "EWT correlation peaks: {peaks:?}");

    let tab01 = run_experiment("tab01", &ctx, &cache).unwrap();
    for (k, v) in &tab01.metrics {
        if k.ends_with("_r2") {
            assert!(*v < 0.9, "{k} = {v}: forecasting must stay hard");
        }
    }

    let fig23 = run_experiment("fig23", &ctx, &cache).unwrap();
    let m = fig23.metric("manhattan_median_success_pct").unwrap();
    let s = fig23.metric("sf_median_success_pct").unwrap();
    assert!(
        m > s,
        "walking must pay off more in Manhattan than SF ({m} vs {s})"
    );
}

#[test]
fn metrics_deterministic_section_identical_across_jobs() {
    use surgescope_experiments::schedule;

    // fig09 declares the clean Manhattan campaign; fault_sweep declares
    // four faulted legs (drops 0–20% plus delays). Prefetching the same
    // plan on 1 worker and on 4 must leave byte-identical deterministic
    // metrics — counters, gauges, and histograms are commutative, and
    // everything wall-clock lives in the (excluded) timing section.
    let ids: Vec<String> =
        ["fig09", "fault_sweep"].iter().map(|s| s.to_string()).collect();
    let ctx = RunCtx::quick(77);
    let runs: Vec<String> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let cache = CampaignCache::new();
            let n = schedule::prefetch(&ids, &ctx, &cache, jobs);
            assert_eq!(n, 5, "one clean + four faulted distinct campaigns");
            cache.metrics_deterministic_json()
        })
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "deterministic metrics section must not depend on --jobs"
    );
    assert!(runs[0].contains("\"schedule.tasks\":5"), "{}", runs[0]);
    assert!(runs[0].contains("\"cache.misses\":5"), "{}", runs[0]);
    assert!(runs[0].contains("campaign.ticks"), "{}", runs[0]);
    // Wall-clock values (timer .ns/.calls keys) must never leak into the
    // determinism-checked section.
    assert!(!runs[0].contains(".ns\":"), "{}", runs[0]);
    assert!(!runs[0].contains(".calls\":"), "{}", runs[0]);
}

#[test]
fn surge_experiments_survive_faulted_campaigns_with_unresolved_areas() {
    use surgescope_api::ProtocolEra;
    use surgescope_core::Campaign;
    use surgescope_experiments::cache::City;
    use surgescope_simcore::FaultPlan;

    let ctx = RunCtx::quick(31);
    let cache = CampaignCache::new();
    // Pre-seed the cache: simulate each city under heavy faults, force
    // one client to have no resolved surge area (the shape a badly
    // faulted campaign can produce), and register the result under the
    // *standard* Apr-era key so fig14/fig16/fig17 read it.
    for city in City::BOTH {
        let std_cfg = CampaignCache::campaign_config(city, ProtocolEra::Apr2015, &ctx);
        let mut cfg = std_cfg.clone();
        cfg.faults =
            FaultPlan { drop_chance: 0.40, delay_chance: 0.30, max_delay_secs: 120 };
        let mut data = Campaign::run_uber(city.model(), &cfg);
        data.client_area[0] = None;
        cache.insert(&std_cfg, data);
    }
    // Regression: fig14 used to `unwrap()` the picked client's area and
    // panic on exactly this input; all three must skip such clients.
    for id in ["fig14", "fig16", "fig17"] {
        let out = run_experiment(id, &ctx, &cache).expect(id);
        assert_eq!(out.id, id);
        for (k, v) in &out.metrics {
            assert!(v.is_finite(), "{id}: {k} must be finite");
        }
    }
}

#[test]
fn outcome_rendering_and_csv() {
    let ctx = RunCtx::quick(7);
    let cache = CampaignCache::new();
    let out = run_experiment("fig03", &ctx, &cache).unwrap();
    let rendered = out.render();
    assert!(rendered.contains("fig03"));
    assert!(rendered.contains("metrics"));
    assert!(ctx.out_dir.is_none(), "quick contexts write no CSV");
}
