//! Harness self-tests: experiment routing and quick-mode shape checks.
//! These are the "does `repro all` work" gate — heavier shape assertions
//! live in EXPERIMENTS.md against the full-fidelity run.

use surgescope_experiments::{cache::CampaignCache, run_experiment, RunCtx, ALL_IDS};

#[test]
fn scheduler_prefetch_matches_serial_byte_for_byte() {
    use surgescope_api::ProtocolEra;
    use surgescope_core::persist::campaign_encoded;
    use surgescope_experiments::cache::City;
    use surgescope_experiments::schedule;

    // Three experiments sharing the same pair of Apr-era campaigns.
    let ids: Vec<String> =
        ["fig05", "fig12", "fig16"].iter().map(|s| s.to_string()).collect();
    let ctx = RunCtx::quick(420);

    // Serial reference: experiments build their campaigns inline.
    let serial = CampaignCache::new();
    let serial_out: Vec<_> =
        ids.iter().map(|id| run_experiment(id, &ctx, &serial).unwrap()).collect();

    // Scheduled run: campaigns prefetched on 4 workers, then the same
    // experiments consume the cache.
    let scheduled = CampaignCache::new();
    let tasks = schedule::prefetch(&ids, &ctx, &scheduled, 4);
    assert_eq!(tasks, 2, "three experiments share exactly two campaigns");
    let scheduled_out: Vec<_> =
        ids.iter().map(|id| run_experiment(id, &ctx, &scheduled).unwrap()).collect();

    // The shared campaigns must be byte-identical down to the encoding.
    for city in City::BOTH {
        let a = serial.campaign(city, ProtocolEra::Apr2015, &ctx);
        let b = scheduled.campaign(city, ProtocolEra::Apr2015, &ctx);
        assert_eq!(
            campaign_encoded(&a),
            campaign_encoded(&b),
            "{}: scheduled campaign diverged from serial",
            city.label()
        );
    }
    // And so must everything derived from them.
    for (a, b) in serial_out.iter().zip(&scheduled_out) {
        assert_eq!(a.table, b.table, "{}: table diverged", a.id);
        assert_eq!(a.metrics, b.metrics, "{}: metrics diverged", a.id);
    }
}

#[test]
fn every_experiment_id_is_routable() {
    let ctx = RunCtx::quick(1);
    let cache = CampaignCache::new();
    assert!(run_experiment("nope", &ctx, &cache).is_none());
    // fig03 is pure geometry — run it for real as the cheap probe.
    let out = run_experiment("fig03", &ctx, &cache).expect("fig03 runs");
    assert_eq!(out.id, "fig03");
    assert!(out.metric("uber_manhattan_clients").unwrap() > 40.0);
    assert_eq!(ALL_IDS.len(), 26);
}

#[test]
fn fault_sweep_degrades_gracefully() {
    let ctx = RunCtx::quick(5);
    let cache = CampaignCache::new();
    let out = run_experiment("fault_sweep", &ctx, &cache).expect("fault_sweep runs");
    // The zero-drop run is the drift baseline by construction.
    assert_eq!(out.metric("supply_drift_d00").unwrap(), 0.0);
    // Even at zero drops the fixed 10% delay leg leaves gaps: a delayed
    // ping's send tick has no delivery, and its late payload lands on a
    // tick that usually already had one. So the floor sits a bit under
    // the 10% delay chance, and each drop increment adds on top.
    let g00 = out.metric("gap_frac_d00").unwrap();
    assert!(g00 > 0.0 && g00 < 0.12, "delay-only gap fraction {g00}");
    let g05 = out.metric("gap_frac_d05").unwrap();
    let g20 = out.metric("gap_frac_d20").unwrap();
    assert!(
        g00 < g05 && g05 < g20,
        "gap fraction must grow with the drop chance: {g00} {g05} {g20}"
    );
    let added = g20 - g00;
    assert!(
        (0.10..0.25).contains(&added),
        "20% drops should add ≈0.18 gap fraction, got {added}"
    );
    // The estimator's unique-ID supply count must degrade *gracefully*:
    // even at 20% drops the grace window absorbs most missed sightings.
    let drift = out.metric("supply_drift_d20").unwrap();
    assert!(drift < 0.15, "supply drifted {:.1}% at 20% drops", drift * 100.0);
    for (k, v) in &out.metrics {
        assert!(v.is_finite(), "{k} must be finite");
    }
}

#[test]
fn quick_run_of_campaign_backed_experiments_produces_shapes() {
    // One shared cache: this is the expensive test (several quick
    // campaigns) but it exercises the exact code path of `repro all`.
    let ctx = RunCtx::quick(99);
    let cache = CampaignCache::new();

    let fig12 = run_experiment("fig12", &ctx, &cache).unwrap();
    let m_ns = fig12.metric("manhattan_no_surge_frac").unwrap();
    let s_ns = fig12.metric("sf_no_surge_frac").unwrap();
    assert!(m_ns > s_ns, "Manhattan must surge less than SF: {m_ns} vs {s_ns}");

    let fig13 = run_experiment("fig13", &ctx, &cache).unwrap();
    let feb = fig13.metric("feb_client_sub_minute").unwrap();
    let apr = fig13.metric("apr_client_sub_minute").unwrap();
    assert_eq!(feb, 0.0, "Feb era cannot have sub-minute episodes");
    assert!(apr > 0.0, "Apr era must show jitter-induced sub-minute episodes");

    let fig17 = run_experiment("fig17", &ctx, &cache).unwrap();
    for city in ["manhattan", "sf"] {
        if let Some(max_k) = fig17.metric(&format!("{city}_max_simultaneous")) {
            assert!(max_k <= 6.0, "{city}: {max_k} simultaneous jitterers");
        }
    }

    let fig21 = run_experiment("fig21", &ctx, &cache).unwrap();
    let peaks = [
        fig21.metric("manhattan_peak_r").unwrap(),
        fig21.metric("sf_peak_r").unwrap(),
    ];
    assert!(peaks.iter().any(|&r| r > 0.1), "EWT correlation peaks: {peaks:?}");

    let tab01 = run_experiment("tab01", &ctx, &cache).unwrap();
    for (k, v) in &tab01.metrics {
        if k.ends_with("_r2") {
            assert!(*v < 0.9, "{k} = {v}: forecasting must stay hard");
        }
    }

    let fig23 = run_experiment("fig23", &ctx, &cache).unwrap();
    let m = fig23.metric("manhattan_median_success_pct").unwrap();
    let s = fig23.metric("sf_median_success_pct").unwrap();
    assert!(
        m > s,
        "walking must pay off more in Manhattan than SF ({m} vs {s})"
    );
}

#[test]
fn outcome_rendering_and_csv() {
    let ctx = RunCtx::quick(7);
    let cache = CampaignCache::new();
    let out = run_experiment("fig03", &ctx, &cache).unwrap();
    let rendered = out.render();
    assert!(rendered.contains("fig03"));
    assert!(rendered.contains("metrics"));
    assert!(ctx.out_dir.is_none(), "quick contexts write no CSV");
}
