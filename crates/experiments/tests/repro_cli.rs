//! CLI contract of the `repro` binary: the usage text enumerates every
//! flag, and unknown flags fail fast with that usage on stderr.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_flag_exits_nonzero_with_usage_on_stderr() {
    let out = repro().arg("--no-such-flag").output().expect("run repro");
    assert!(!out.status.success(), "unknown flags must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag: --no-such-flag"), "stderr was: {stderr}");
    assert!(stderr.contains("usage:"), "usage text must follow the error; stderr: {stderr}");
}

#[test]
fn no_arguments_prints_usage_and_exits_nonzero() {
    let out = repro().output().expect("run repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn usage_enumerates_every_flag() {
    let out = repro().output().expect("run repro");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--quick",
        "--quiet",
        "--seed",
        "--jobs",
        "--resume",
        "--metrics",
        "--serve",
        "--remote",
        "--remote-retries",
        "--remote-op-timeout",
    ] {
        assert!(stderr.contains(flag), "usage text is missing {flag}; stderr: {stderr}");
    }
}

#[test]
fn flags_that_need_values_fail_without_them() {
    for flag in [
        "--seed",
        "--jobs",
        "--resume",
        "--metrics",
        "--serve",
        "--remote",
        "--remote-retries",
        "--remote-op-timeout",
    ] {
        let out = repro().arg(flag).output().expect("run repro");
        assert!(!out.status.success(), "{flag} without a value must exit non-zero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("needs"), "{flag}: expected a 'needs …' error, got: {stderr}");
    }
}

#[test]
fn remote_flag_values_are_validated() {
    for (flag, bad) in [
        ("--remote-retries", "-1"),
        ("--remote-retries", "lots"),
        ("--remote-op-timeout", "0"),
        ("--remote-op-timeout", "soon"),
    ] {
        let out = repro().args([flag, bad]).output().expect("run repro");
        assert!(!out.status.success(), "{flag} {bad} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("needs"), "{flag} {bad}: expected a 'needs …' error, got: {stderr}");
    }
}

#[test]
fn list_prints_experiment_ids() {
    let out = repro().arg("list").output().expect("run repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().any(|l| l.trim() == "fig12"));
}
