//! Surge-avoidance strategy (§6): Figs. 23–24.

use crate::cache::{CampaignCache, City};
use crate::{Outcome, RunCtx, TextTable};
use surgescope_analysis::Ecdf;
use surgescope_api::ProtocolEra;
use surgescope_core::avoidance::evaluate;

/// Fig. 23: per-client fraction of surged intervals where walking to an
/// adjacent area yields a cheaper UberX (paper: 10–20% of the time around
/// Times Square; only ~2% in SF).
pub fn fig23(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "clients",
        "median success %",
        "p90 success %",
        "best client %",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let results = evaluate(
            &data.city,
            &data.clients,
            &data.client_area,
            &data.api_surge,
            &data.api_ewt,
        );
        let fracs: Vec<f64> = results.iter().map(|r| r.success_fraction() * 100.0).collect();
        let e = Ecdf::new(fracs.clone());
        table.row(vec![
            city.label().into(),
            results.len().to_string(),
            format!("{:.1}", e.quantile(0.5)),
            format!("{:.1}", e.quantile(0.9)),
            format!("{:.1}", e.max()),
        ]);
        let k = city.label().to_lowercase();
        metrics.push((format!("{k}_median_success_pct"), e.quantile(0.5)));
        metrics.push((format!("{k}_max_success_pct"), e.max()));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig23", &h, &rows);
    Outcome {
        id: "fig23",
        title: "Fraction of time walking beats local surge (paper Fig. 23)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 24: how much surge is reduced and how far riders walk (paper:
/// savings ≥ 0.5 in >50% of wins; walks under 7 min MHTN / 9 min SF).
pub fn fig24(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "wins",
        "P(saving≥0.5)",
        "median saving",
        "median walk (min)",
        "max walk (min)",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let results = evaluate(
            &data.city,
            &data.clients,
            &data.client_area,
            &data.api_surge,
            &data.api_ewt,
        );
        let savings: Vec<f64> = results.iter().flat_map(|r| r.savings.iter().copied()).collect();
        let walks: Vec<f64> =
            results.iter().flat_map(|r| r.walk_minutes.iter().copied()).collect();
        if savings.is_empty() {
            table.row(vec![city.label().into(), "0".into(), "-".into(), "-".into(), "-".into(), "-".into()]);
            continue;
        }
        let es = Ecdf::new(savings.clone());
        let ew = Ecdf::new(walks.clone());
        table.row(vec![
            city.label().into(),
            savings.len().to_string(),
            format!("{:.2}", 1.0 - es.at(0.4999)),
            format!("{:.2}", es.quantile(0.5)),
            format!("{:.1}", ew.quantile(0.5)),
            format!("{:.1}", ew.max()),
        ]);
        let k = city.label().to_lowercase();
        metrics.push((format!("{k}_wins"), savings.len() as f64));
        metrics.push((format!("{k}_median_saving"), es.quantile(0.5)));
        metrics.push((format!("{k}_max_walk_min"), ew.max()));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig24", &h, &rows);
    Outcome {
        id: "fig24",
        title: "Surge reduction and walking time under the §6 strategy (paper Fig. 24)",
        table: table.render(),
        metrics,
    }
}
