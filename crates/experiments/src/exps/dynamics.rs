//! Marketplace-dynamics experiments (§4): Figs. 5/6 (reconstructed), 7,
//! 8, 9, 10 and 11.

use crate::cache::{CampaignCache, City};
use crate::{Outcome, RunCtx, TextTable};
use surgescope_analysis::{mean, Ecdf};
use surgescope_api::ProtocolEra;
use surgescope_city::CarType;

/// Figs. 5/6 are absent from the supplied transcription; this experiment
/// reconstructs the §4.2 prose claims instead: the ranking of car-type
/// prevalence per city and the data-cleaning statistics of §4.1.
pub fn fig05(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&["type", "Manhattan avg supply", "SF avg supply"]);
    let mut per_city: Vec<Vec<(CarType, f64)>> = Vec::new();
    let mut cleaning = String::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let mut rows = Vec::new();
        for t in CarType::ALL {
            let s = data.estimator.supply_series(t);
            rows.push((t, mean(&s.iter().map(|&x| x as f64).collect::<Vec<_>>())));
        }
        cleaning.push_str(&format!(
            "{}: short-lived cars filtered = {}, edge-filtered deaths = {}\n",
            city.label(),
            data.estimator.short_lived_filtered,
            data.estimator.edge_filtered
        ));
        per_city.push(rows);
    }
    let mut metrics = Vec::new();
    for (i, t) in CarType::ALL.iter().enumerate() {
        table.row(vec![
            t.label().to_string(),
            format!("{:.1}", per_city[0][i].1),
            format!("{:.1}", per_city[1][i].1),
        ]);
    }
    let x_m = per_city[0][0].1;
    let x_s = per_city[1][0].1;
    metrics.push(("manhattan_uberx_mean".into(), x_m));
    metrics.push(("sf_uberx_mean".into(), x_s));
    // §4.2: SF has ~58% more Ubers overall, mostly UberX.
    let tot = |rows: &[(CarType, f64)]| rows.iter().map(|(_, v)| v).sum::<f64>();
    metrics.push(("sf_over_manhattan_supply".into(), tot(&per_city[1]) / tot(&per_city[0]).max(1e-9)));
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig05", &h, &rows);
    Outcome {
        id: "fig05",
        title: "Car-type prevalence + data cleaning (reconstruction of Figs. 5–6 / §4.1–4.2)",
        table: format!("{}\n{}", table.render(), cleaning),
        metrics,
    }
}

/// Fig. 7: car lifespan CDFs, low-priced vs premium tiers.
pub fn fig07(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "group",
        "n",
        "p25 (h)",
        "median (h)",
        "p90 (h)",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        for (group, low) in [("low-priced (X/XL/FAM/POOL)", true), ("premium (BLACK/SUV)", false)] {
            let sample: Vec<f64> = data
                .estimator
                .lifespans
                .iter()
                .filter(|(t, _)| {
                    if low {
                        t.is_low_priced()
                    } else {
                        matches!(t, CarType::UberBlack | CarType::UberSuv)
                    }
                })
                .map(|(_, secs)| *secs as f64 / 3600.0)
                .collect();
            let e = Ecdf::new(sample);
            table.row(vec![
                city.label().into(),
                group.into(),
                e.n().to_string(),
                format!("{:.2}", e.quantile(0.25)),
                format!("{:.2}", e.quantile(0.5)),
                format!("{:.2}", e.quantile(0.9)),
            ]);
            if city == City::Manhattan {
                let key = if low { "manhattan_low_median_h" } else { "manhattan_premium_median_h" };
                metrics.push((key.into(), e.quantile(0.5)));
            }
        }
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig07", &h, &rows);
    Outcome {
        id: "fig07",
        title: "Car lifespan distribution by tier group (paper Fig. 7)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 8: supply, demand, surge and EWT time series for both cities.
pub fn fig08(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "hour",
        "supply (X)",
        "deaths (X)",
        "surge (X)",
        "EWT min (X)",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let supply = data.estimator.supply_series(CarType::UberX);
        let deaths = data.estimator.death_series(CarType::UberX);
        let n_areas = data.api_surge.len();
        let intervals = data.intervals;
        // Mean across areas per interval.
        let surge_mean: Vec<f64> = (0..intervals)
            .map(|iv| {
                (0..n_areas)
                    .map(|a| *data.api_surge[a].get(iv).unwrap_or(&1.0) as f64)
                    .sum::<f64>()
                    / n_areas as f64
            })
            .collect();
        let ewt_mean: Vec<f64> = (0..intervals)
            .map(|iv| {
                (0..n_areas)
                    .map(|a| *data.api_ewt[a].get(iv).unwrap_or(&0.0) as f64)
                    .sum::<f64>()
                    / n_areas as f64
            })
            .collect();
        let per_hour = 12usize;
        let hours = intervals / per_hour;
        let mut day_peak_supply: f64 = 0.0;
        let mut night_supply = f64::INFINITY;
        for h in 0..hours {
            let span = h * per_hour..((h + 1) * per_hour).min(supply.len());
            if span.is_empty() {
                break;
            }
            let s = mean(&supply[span.clone()].iter().map(|&x| x as f64).collect::<Vec<_>>());
            let d_span = h * per_hour..((h + 1) * per_hour).min(deaths.len());
            let d = if d_span.is_empty() {
                0.0
            } else {
                mean(&deaths[d_span].iter().map(|&x| x as f64).collect::<Vec<_>>())
            };
            let m = mean(&surge_mean[h * per_hour..(h + 1) * per_hour]);
            let w = mean(&ewt_mean[h * per_hour..(h + 1) * per_hour]);
            let hod = h % 24;
            if (10..20).contains(&hod) {
                day_peak_supply = day_peak_supply.max(s);
            }
            if (3..5).contains(&hod) {
                night_supply = night_supply.min(s);
            }
            table.row(vec![
                city.label().into(),
                format!("{hod:02}"),
                format!("{s:.1}"),
                format!("{d:.1}"),
                format!("{m:.2}"),
                format!("{w:.1}"),
            ]);
        }
        metrics.push((
            format!("{}_day_night_supply_ratio", city.label().to_lowercase()),
            day_peak_supply / night_supply.max(1.0),
        ));
        metrics.push((
            format!("{}_mean_surge", city.label().to_lowercase()),
            mean(&surge_mean),
        ));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig08", &h, &rows);
    Outcome {
        id: "fig08",
        title: "Supply / demand / surge / EWT over time (paper Fig. 8)",
        table: table.render(),
        metrics,
    }
}

fn heatmap(ctx: &RunCtx, city: City, cache: &CampaignCache, id: &'static str) -> Outcome {
    let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
    let mut table = TextTable::new(&[
        "client",
        "x (m)",
        "y (m)",
        "cars/day",
        "cars/5min",
        "mean EWT (min)",
    ]);
    let mut best_cars = 0.0f64;
    for (i, spec) in data.clients.iter().enumerate() {
        let cars_per_day = mean(
            &data.client_daily_cars[i]
                .iter()
                .map(|&c| c as f64)
                .collect::<Vec<_>>(),
        );
        best_cars = best_cars.max(cars_per_day);
        table.row(vec![
            i.to_string(),
            format!("{:.0}", spec.position.x),
            format!("{:.0}", spec.position.y),
            format!("{cars_per_day:.0}"),
            format!("{:.1}", data.client_interval_cars[i]),
            format!("{:.2}", data.client_mean_ewt[i]),
        ]);
    }
    let ewts: Vec<f64> = data.client_mean_ewt.clone();
    let (h, rows) = table.csv_rows();
    ctx.write_csv(id, &h, &rows);
    Outcome {
        id,
        title: match city {
            City::Manhattan => "Heatmap: cars & EWT per client, Manhattan (paper Fig. 9)",
            City::SanFrancisco => "Heatmap: cars & EWT per client, SF (paper Fig. 10)",
        },
        table: table.render(),
        metrics: vec![
            ("max_client_cars_per_day".into(), best_cars),
            ("mean_client_ewt".into(), mean(&ewts)),
        ],
    }
}

/// Fig. 9: Manhattan per-client heatmap.
pub fn fig09(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    heatmap(ctx, City::Manhattan, cache, "fig09")
}

/// Fig. 10: SF per-client heatmap.
pub fn fig10(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    heatmap(ctx, City::SanFrancisco, cache, "fig10")
}

/// Fig. 11: distribution of EWTs (paper: 87% of waits ≤ 4 minutes).
pub fn fig11(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&["city", "P(EWT≤2)", "P(EWT≤4)", "P(EWT≤8)", "p99 (min)", "max (min)"]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let sample: Vec<f64> = data
            .client_ewt
            .iter()
            .flat_map(|v| v.iter().map(|&x| x as f64))
            .filter(|&x| x > 0.0)
            .collect();
        let e = Ecdf::new(sample);
        table.row(vec![
            city.label().into(),
            format!("{:.2}", e.at(2.0)),
            format!("{:.2}", e.at(4.0)),
            format!("{:.2}", e.at(8.0)),
            format!("{:.1}", e.quantile(0.99)),
            format!("{:.1}", e.max()),
        ]);
        metrics.push((
            format!("{}_ewt_le_4min", city.label().to_lowercase()),
            e.at(4.0),
        ));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig11", &h, &rows);
    Outcome {
        id: "fig11",
        title: "Distribution of EWTs for UberX (paper Fig. 11)",
        table: table.render(),
        metrics,
    }
}
