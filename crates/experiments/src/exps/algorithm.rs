//! Algorithm-identification experiments (§5.4–5.5): Figs. 20–22 and
//! Table 1.

use crate::cache::{CampaignCache, City};
use crate::{Outcome, RunCtx, TextTable};
use surgescope_analysis::cross_correlation;
use surgescope_api::ProtocolEra;
use surgescope_core::forecast::{fit_city, ModelFilter};
use surgescope_core::transitions::CarState;
use surgescope_core::CampaignData;

/// Per-area series `(supply, demand, ewt, surge)` assembled from a
/// campaign, truncated to a common length.
fn area_series(data: &CampaignData) -> Vec<(Vec<u32>, Vec<u32>, Vec<f32>, Vec<f32>)> {
    let n_areas = data.api_surge.len();
    let mut out = Vec::with_capacity(n_areas);
    for a in 0..n_areas {
        let surge = data.api_surge[a].clone();
        let ewt = data.api_ewt[a].clone();
        // §5.4 builds the supply series by averaging the per-ping counts
        // over each window, not by unioning IDs.
        let mut supply: Vec<u32> = data.avg_visible[a]
            .iter()
            .map(|&v| v.round() as u32)
            .collect();
        let mut demand = data.estimator.death_area_series(a).to_vec();
        let n = surge.len().min(ewt.len());
        supply.resize(n, 0);
        demand.resize(n, 0);
        out.push((supply, demand, ewt[..n].to_vec(), surge[..n].to_vec()));
    }
    out
}

fn xcorr_experiment(
    ctx: &RunCtx,
    cache: &CampaignCache,
    id: &'static str,
    title: &'static str,
    feature_of: impl Fn(&(Vec<u32>, Vec<u32>, Vec<f32>, Vec<f32>)) -> Vec<f64>,
) -> Outcome {
    let mut table = TextTable::new(&["lag (min)", "Manhattan r", "MHTN p", "SF r", "SF p"]);
    let mut metrics = Vec::new();
    let max_lag = 12usize; // ±60 minutes in 5-minute samples
    let mut per_city: Vec<Vec<(i64, f64, f64)>> = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let series = area_series(&data);
        // Average the per-area cross-correlations (areas are independent
        // price processes; pooling lags would mix scales).
        let mut acc: Vec<(f64, f64, u32)> = vec![(0.0, 0.0, 0); 2 * max_lag + 1];
        for s in &series {
            let feature = feature_of(s);
            let target: Vec<f64> = s.3.iter().map(|&m| m as f64).collect();
            if feature.len() < 30 {
                continue;
            }
            let lags = cross_correlation(&feature, &target, max_lag);
            for (i, l) in lags.iter().enumerate() {
                if l.corr.n >= 10 {
                    acc[i].0 += l.corr.r;
                    acc[i].1 += l.corr.p_value;
                    acc[i].2 += 1;
                }
            }
        }
        per_city.push(
            acc.iter()
                .enumerate()
                .map(|(i, (r, p, c))| {
                    let lag = i as i64 - max_lag as i64;
                    let cc = (*c).max(1) as f64;
                    (lag * 5, r / cc, p / cc)
                })
                .collect(),
        );
    }
    for i in 0..per_city[0].len() {
        let (lag, rm, pm) = per_city[0][i];
        let (_, rs, ps) = per_city[1][i];
        table.row(vec![
            lag.to_string(),
            format!("{rm:.3}"),
            format!("{pm:.3}"),
            format!("{rs:.3}"),
            format!("{ps:.3}"),
        ]);
    }
    // Peak magnitude near zero lag: strongest |r| for |lag| ≤ 10 min.
    for (ci, city) in City::BOTH.iter().enumerate() {
        let peak = per_city[ci]
            .iter()
            .filter(|(lag, _, _)| lag.abs() <= 10)
            .map(|(_, r, _)| *r)
            .fold(0.0f64, |a, b| if b.abs() > a.abs() { b } else { a });
        metrics.push((format!("{}_peak_r", city.label().to_lowercase()), peak));
        // Where is the global |r| max?
        let best_lag = per_city[ci]
            .iter()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(l, _, _)| *l)
            .unwrap_or(0);
        metrics.push((format!("{}_peak_lag_min", city.label().to_lowercase()), best_lag as f64));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv(id, &h, &rows);
    Outcome { id, title, table: table.render(), metrics }
}

/// Fig. 20: (supply − demand) vs surge cross-correlation. The paper found
/// a relatively strong *negative* correlation, strongest at lag 0.
pub fn fig20(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    xcorr_experiment(
        ctx,
        cache,
        "fig20",
        "(Supply − Demand) vs surge cross-correlation (paper Fig. 20)",
        |(supply, demand, _, _)| {
            supply
                .iter()
                .zip(demand)
                .map(|(&s, &d)| s as f64 - d as f64)
                .collect()
        },
    )
}

/// Fig. 21: EWT vs surge cross-correlation. The paper found a relatively
/// strong *positive* correlation at lag 0.
pub fn fig21(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    xcorr_experiment(
        ctx,
        cache,
        "fig21",
        "EWT vs surge cross-correlation (paper Fig. 21)",
        |(_, _, ewt, _)| ewt.iter().map(|&w| w as f64).collect(),
    )
}

/// Table 1: Raw / Threshold / Rush forecasting models per city.
pub fn tab01(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "model",
        "θ_sd_diff",
        "θ_ewt",
        "θ_prev_surge",
        "R²",
        "n",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let series = area_series(&data);
        for filter in [ModelFilter::Raw, ModelFilter::Threshold, ModelFilter::Rush] {
            match fit_city(&series, filter) {
                Some(fit) => {
                    table.row(vec![
                        city.label().into(),
                        filter.label().into(),
                        format!("{:.3}", fit.theta_sd_diff),
                        format!("{:.3}", fit.theta_ewt),
                        format!("{:.3}", fit.theta_prev_surge),
                        format!("{:.3}", fit.r2),
                        fit.n.to_string(),
                    ]);
                    metrics.push((
                        format!(
                            "{}_{}_r2",
                            city.label().to_lowercase(),
                            filter.label().to_lowercase()
                        ),
                        fit.r2,
                    ));
                }
                None => table.row(vec![
                    city.label().into(),
                    filter.label().into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "0".into(),
                ]),
            }
        }
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("tab01", &h, &rows);
    Outcome {
        id: "tab01",
        title: "Linear forecasting models: parameters and R² (paper Table 1)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 22: driver transition probabilities, equal-surge vs surging.
pub fn fig22(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "area",
        "context",
        "New",
        "Old",
        "In",
        "Out",
        "Dying",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        let mut new_deltas = Vec::new();
        let mut dying_deltas = Vec::new();
        for area in 0..data.transitions.area_count() {
            let mut per_ctx = [None, None];
            for (ctx_i, ctx_name) in [(0usize, "equal"), (1, "surging")] {
                if let Some(p) = data.transitions.probabilities(area, ctx_i) {
                    table.row(vec![
                        city.label().into(),
                        area.to_string(),
                        ctx_name.into(),
                        format!("{:.3}", p[0]),
                        format!("{:.3}", p[1]),
                        format!("{:.3}", p[2]),
                        format!("{:.3}", p[3]),
                        format!("{:.3}", p[4]),
                    ]);
                    per_ctx[ctx_i] = Some(p);
                }
            }
            if let (Some(eq), Some(su)) = (per_ctx[0], per_ctx[1]) {
                new_deltas.push(su[0] - eq[0]);
                dying_deltas.push(su[4] - eq[4]);
            }
        }
        let k = city.label().to_lowercase();
        if !new_deltas.is_empty() {
            metrics.push((
                format!("{k}_new_delta"),
                new_deltas.iter().sum::<f64>() / new_deltas.len() as f64,
            ));
            metrics.push((
                format!("{k}_dying_delta"),
                dying_deltas.iter().sum::<f64>() / dying_deltas.len() as f64,
            ));
        }
    }
    let _ = CarState::ALL; // states documented in transitions module
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig22", &h, &rows);
    Outcome {
        id: "fig22",
        title: "Driver transition probabilities under surge (paper Fig. 22)",
        table: table.render(),
        metrics,
    }
}
