//! Surge-area inference (§5.3): Figs. 18–19.
//!
//! A lattice of API probes queries `estimates/price` once per 5-minute
//! interval for several hours (each probe uses its own account to stay
//! within the 1,000 req/h limit, exactly as the paper's 43 accounts did),
//! then adjacent probes with identical multiplier series are clustered.
//! Unlike the paper we can score the recovered partition against the
//! ground-truth area polygons (Rand index).

use crate::cache::City;
use crate::{Outcome, RunCtx, TextTable};
use surgescope_api::{ApiService, ProtocolEra, WorldSnapshot};
use surgescope_city::CarType;
use surgescope_core::areas::{infer_areas, probe_lattice, rand_index};
use surgescope_marketplace::{Marketplace, MarketplaceConfig};

fn run_area_inference(ctx: &RunCtx, city: City, id: &'static str) -> Outcome {
    let mut model = city.model();
    model.supply = model.supply.scaled(ctx.scale());
    model.demand = model.demand.scaled(ctx.scale());
    // Probe the whole service region so every ground-truth area is
    // represented.
    let spacing = if city == City::Manhattan { 500.0 } else { 700.0 };
    let probes = probe_lattice(&model.service_region, spacing);

    let mut mp = Marketplace::new(model.clone(), MarketplaceConfig::default(), ctx.seed ^ 0xA5EA);
    let mut api = ApiService::new(ProtocolEra::Apr2015, ctx.seed ^ 0xA5EB);

    // Warm into the morning then probe through the active day (the paper
    // probed for 8 days; a surging day is enough for our 4-area truth).
    let hours = if ctx.quick { 10 } else { 24 };
    let warm_ticks = 6 * 720; // start at 06:00
    for _ in 0..warm_ticks {
        mp.tick();
    }
    let mut series: Vec<Vec<f32>> = vec![Vec::new(); probes.len()];
    let ticks = hours * 720;
    for _ in 0..ticks {
        mp.tick();
        if mp.now().seconds_into_surge_interval() == 45 {
            let snap = WorldSnapshot::of(&mp);
            for (pi, probe) in probes.iter().enumerate() {
                let loc = model.projection.to_latlng(*probe);
                // One account per probe: 12 requests/hour each.
                let est = api
                    .estimates_price(&snap, 2_000_000 + pi as u64, loc)
                    .expect("well under the rate limit");
                let m = est
                    .iter()
                    .find(|p| p.car_type == CarType::UberX)
                    .map_or(1.0, |p| p.surge_multiplier);
                series[pi].push(m as f32);
            }
        }
    }

    let inference = infer_areas(&probes, &series, spacing * 1.5);
    let ri = rand_index(&model, &inference);

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(vec!["probes".into(), probes.len().to_string()]);
    table.row(vec!["intervals probed".into(), series[0].len().to_string()]);
    table.row(vec!["clusters found".into(), inference.clusters.to_string()]);
    table.row(vec!["ground-truth areas".into(), model.area_count().to_string()]);
    table.row(vec!["rand index".into(), format!("{ri:.3}")]);

    // Cluster map rendered as ASCII rows (south → north).
    let mut map = String::from("\ncluster map (rows south→north):\n");
    let mut last_y = f64::NEG_INFINITY;
    for (p, &label) in probes.iter().zip(&inference.assignment) {
        if p.y > last_y {
            if last_y > f64::NEG_INFINITY {
                map.push('\n');
            }
            last_y = p.y;
        }
        map.push_str(&format!("{label:>2} "));
    }
    map.push('\n');

    let (h, rows) = table.csv_rows();
    ctx.write_csv(id, &h, &rows);
    Outcome {
        id,
        title: match city {
            City::Manhattan => "Surge areas recovered in Manhattan (paper Fig. 18)",
            City::SanFrancisco => "Surge areas recovered in SF (paper Fig. 19)",
        },
        table: format!("{}{}", table.render(), map),
        metrics: vec![
            ("clusters".into(), inference.clusters as f64),
            ("rand_index".into(), ri),
        ],
    }
}

/// Fig. 18: Manhattan surge-area recovery.
pub fn fig18(ctx: &RunCtx) -> Outcome {
    run_area_inference(ctx, City::Manhattan, "fig18")
}

/// Fig. 19: SF surge-area recovery.
pub fn fig19(ctx: &RunCtx) -> Outcome {
    run_area_inference(ctx, City::SanFrancisco, "fig19")
}
