//! Calibration experiments: Fig. 2 (visibility radius) and Fig. 3
//! (client placement).

use crate::{Outcome, RunCtx, TextTable};
use surgescope_api::{ApiService, ProtocolEra};
use surgescope_city::{CarType, CityModel};
use surgescope_core::calibration::{placement, visibility_radius};
use surgescope_core::UberSystem;
use surgescope_marketplace::{Marketplace, MarketplaceConfig};
use surgescope_simcore::SimDuration;

fn warmed_system(city: CityModel, scale: f64, seed: u64, hours: u64) -> UberSystem {
    let mut city = city;
    city.supply = city.supply.scaled(scale);
    city.demand = city.demand.scaled(scale);
    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), seed);
    mp.run_for(SimDuration::hours(hours));
    UberSystem::new(mp, ApiService::new(ProtocolEra::Feb2015, seed))
}

/// Fig. 2: client visibility radius over the day in both cities.
pub fn fig02(ctx: &RunCtx) -> Outcome {
    let hours: Vec<u64> = if ctx.quick {
        vec![4, 12, 19]
    } else {
        vec![0, 3, 6, 9, 12, 15, 18, 21]
    };
    let mut table = TextTable::new(&["hour", "Manhattan r (m)", "SF r (m)"]);
    let mut metrics = Vec::new();
    let mut sums = [0.0f64; 2];
    let mut counts = [0u32; 2];
    for &h in &hours {
        let mut row = vec![format!("{h:02}:00")];
        for (ci, city) in
            [CityModel::manhattan_midtown(), CityModel::san_francisco_downtown()]
                .into_iter()
                .enumerate()
        {
            let center = city.measurement_region.centroid();
            let mut sys = warmed_system(city, ctx.scale(), ctx.seed + h, h.max(1));
            let r = visibility_radius(&mut sys, center, CarType::UberX, 300);
            match r {
                Some(r) => {
                    row.push(format!("{r:.0}"));
                    sums[ci] += r;
                    counts[ci] += 1;
                }
                None => row.push("n/a".into()),
            }
        }
        table.row(row);
    }
    for (ci, name) in ["manhattan_mean_radius_m", "sf_mean_radius_m"].iter().enumerate() {
        if counts[ci] > 0 {
            metrics.push((name.to_string(), sums[ci] / counts[ci] as f64));
        }
    }
    // Shape check input: the paper measured 247 m (MHTN) < 387 m (SF).
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig02", &h, &rows);
    Outcome {
        id: "fig02",
        title: "Visibility radius of clients over the day (paper Fig. 2)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 3: measurement-client placements in both cities plus the denser
/// taxi lattice used for validation.
pub fn fig03(ctx: &RunCtx) -> Outcome {
    let mut table =
        TextTable::new(&["deployment", "spacing (m)", "clients", "region (km × km)"]);
    let mut metrics = Vec::new();
    let specs: [(&str, CityModel, f64); 3] = [
        ("Uber Manhattan", CityModel::manhattan_midtown(), 200.0),
        ("Uber SF", CityModel::san_francisco_downtown(), 350.0),
        ("Taxi Manhattan", CityModel::manhattan_midtown(), 150.0),
    ];
    for (name, city, spacing) in specs {
        let clients = placement(&city.measurement_region, spacing);
        let bb = city.measurement_region.bbox();
        table.row(vec![
            name.to_string(),
            format!("{spacing:.0}"),
            clients.len().to_string(),
            format!("{:.1} × {:.1}", bb.width() / 1000.0, bb.height() / 1000.0),
        ]);
        metrics.push((
            format!("{}_clients", name.to_lowercase().replace(' ', "_")),
            clients.len() as f64,
        ));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig03", &h, &rows);
    Outcome {
        id: "fig03",
        title: "Measurement-point placement (paper Fig. 3)",
        table: table.render(),
        metrics,
    }
}
