//! Surge-pricing observations (§5.1–5.2): Figs. 12–17.

use crate::cache::{CampaignCache, City};
use crate::{Outcome, RunCtx, TextTable};
use surgescope_analysis::Ecdf;
use surgescope_api::ProtocolEra;
use surgescope_core::surge_obs::{change_moments, detect_jitter, episodes, simultaneity, JitterEvent};

/// Fig. 12: distribution of surge multipliers (paper: 86% of the time no
/// surge in Manhattan vs 43% in SF; max 2.8 vs 4.1).
pub fn fig12(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "P(m=1)",
        "P(m≤1.5)",
        "mean m",
        "max m",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        // API series across all areas and intervals (the paper's Fig. 12
        // counts client samples; area-interval samples give the same
        // distribution without jitter artifacts).
        let sample: Vec<f64> = data
            .api_surge
            .iter()
            .flat_map(|a| a.iter().map(|&m| m as f64))
            .collect();
        let e = Ecdf::new(sample.clone());
        let no_surge = sample.iter().filter(|&&m| m <= 1.0).count() as f64 / sample.len() as f64;
        let mean_m = sample.iter().sum::<f64>() / sample.len() as f64;
        table.row(vec![
            city.label().into(),
            format!("{no_surge:.2}"),
            format!("{:.2}", e.at(1.5)),
            format!("{mean_m:.3}"),
            format!("{:.1}", e.max()),
        ]);
        let k = city.label().to_lowercase();
        metrics.push((format!("{k}_no_surge_frac"), no_surge));
        metrics.push((format!("{k}_mean_surge"), mean_m));
        metrics.push((format!("{k}_max_surge"), e.max()));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig12", &h, &rows);
    Outcome {
        id: "fig12",
        title: "Distribution of surge multipliers (paper Fig. 12)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 13: surge episode durations — Feb-era clients (clean 5-minute
/// stair-step), Apr-era clients (large sub-minute mass from jitter), and
/// the API (always stair-step).
pub fn fig13(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "stream",
        "episodes",
        "P(≤1min)",
        "P(≤5min)",
        "P(≤10min)",
        "P(≤20min)",
    ]);
    let mut metrics = Vec::new();

    let durations_for = |era: ProtocolEra| -> Vec<f64> {
        let mut durs = Vec::new();
        for city in City::BOTH {
            let data = cache.campaign(city, era, ctx);
            for series in &data.client_surge {
                durs.extend(episodes(series, data.tick_secs).into_iter().map(|d| d as f64));
            }
        }
        durs
    };
    let feb = durations_for(ProtocolEra::Feb2015);
    let apr = durations_for(ProtocolEra::Apr2015);
    // API stream: per-area interval series → durations in multiples of 300.
    let mut api = Vec::new();
    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        for area in &data.api_surge {
            api.extend(episodes(area, 300).into_iter().map(|d| d as f64));
        }
    }

    for (name, durs) in [("Feb client", &feb), ("Apr client", &apr), ("API", &api)] {
        let e = Ecdf::new(durs.clone());
        table.row(vec![
            name.into(),
            e.n().to_string(),
            format!("{:.2}", e.at(60.0)),
            format!("{:.2}", e.at(300.0)),
            format!("{:.2}", e.at(600.0)),
            format!("{:.2}", e.at(1200.0)),
        ]);
        let key = name.to_lowercase().replace(' ', "_");
        metrics.push((format!("{key}_sub_minute"), e.at(60.0)));
        metrics.push((format!("{key}_le_5min"), e.at(300.0)));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig13", &h, &rows);
    Outcome {
        id: "fig13",
        title: "Duration of surges (paper Fig. 13)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 14: an example 25-minute window of API vs jittery-client surge.
pub fn fig14(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let data = cache.campaign(City::SanFrancisco, ProtocolEra::Apr2015, ctx);
    // Find a client and a 5-interval window containing a jitter event.
    // The pick carries the client's resolved area so the render loop
    // never has to re-unwrap `client_area` — clients that never resolved
    // an area (possible under heavily faulted campaigns) are skipped by
    // the search itself.
    let mut pick: Option<(usize, usize, usize)> = None; // (client, area, start interval)
    'outer: for (ci, series) in data.client_surge.iter().enumerate() {
        let Some(area) = data.client_area[ci] else { continue };
        let events = detect_jitter(series, &data.api_surge[area], data.tick_secs);
        for e in &events {
            if e.interval >= 2 && (e.interval as usize) + 3 < data.intervals {
                pick = Some((ci, area, e.interval as usize - 2));
                break 'outer;
            }
        }
    }
    let mut table = TextTable::new(&["t (min)", "API m", "client m"]);
    let mut jitter_points = 0u32;
    if let Some((ci, area, start_iv)) = pick {
        let ticks_per_iv = (300 / data.tick_secs) as usize;
        for k in 0..(5 * ticks_per_iv) {
            let tick = start_iv * ticks_per_iv + k;
            let iv = start_iv + k / ticks_per_iv;
            let api_m = data.api_surge[area][iv];
            let cli_m = data.client_surge[ci][tick];
            if (api_m - cli_m).abs() > 1e-6 {
                jitter_points += 1;
            }
            // Print at 30 s granularity to keep the table readable.
            if k % 6 == 0 {
                table.row(vec![
                    format!("{:.1}", k as f64 * data.tick_secs as f64 / 60.0),
                    format!("{api_m:.1}"),
                    format!("{cli_m:.1}"),
                ]);
            }
        }
    }
    let found = pick.is_some();
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig14", &h, &rows);
    Outcome {
        id: "fig14",
        title: "Example surge timeline: API vs Apr-era client (paper Fig. 14)",
        table: if found {
            table.render()
        } else {
            "no jitter event found in this campaign window\n".to_string()
        },
        metrics: vec![
            ("example_found".into(), found as u32 as f64),
            ("divergent_ticks".into(), jitter_points as f64),
        ],
    }
}

/// Fig. 15: the moment within each 5-minute interval when the observed
/// multiplier changes (Feb/API within ~35 s; Apr clients within ~2 min).
pub fn fig15(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&["stream", "changes", "p50 (s)", "p95 (s)", "max (s)"]);
    let mut metrics = Vec::new();
    for (name, era) in [("Feb client", ProtocolEra::Feb2015), ("Apr client", ProtocolEra::Apr2015)]
    {
        let mut moments = Vec::new();
        for city in City::BOTH {
            let data = cache.campaign(city, era, ctx);
            for series in &data.client_surge {
                moments.extend(
                    change_moments(series, data.tick_secs)
                        .into_iter()
                        .flatten()
                        .map(|m| m as f64),
                );
            }
        }
        let e = Ecdf::new(moments);
        table.row(vec![
            name.into(),
            e.n().to_string(),
            format!("{:.0}", e.quantile(0.5)),
            format!("{:.0}", e.quantile(0.95)),
            format!("{:.0}", e.max()),
        ]);
        let key = name.to_lowercase().replace(' ', "_");
        metrics.push((format!("{key}_p95_change_s"), e.quantile(0.95)));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig15", &h, &rows);
    Outcome {
        id: "fig15",
        title: "Moment of surge change within the 5-minute interval (paper Fig. 15)",
        table: table.render(),
        metrics,
    }
}

fn all_jitter_events(
    ctx: &RunCtx,
    cache: &CampaignCache,
    city: City,
) -> (Vec<Vec<JitterEvent>>, u64) {
    let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
    let mut per_client = Vec::with_capacity(data.client_surge.len());
    for (ci, series) in data.client_surge.iter().enumerate() {
        match data.client_area[ci] {
            Some(area) => per_client
                .push(detect_jitter(series, &data.api_surge[area], data.tick_secs)),
            None => per_client.push(Vec::new()),
        }
    }
    (per_client, data.tick_secs)
}

/// Fig. 16: the multiplier seen during jitter (it equals the previous
/// interval's value, so it usually *drops* the price; 30–50% of events
/// drop it all the way to 1).
pub fn fig16(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "city",
        "events",
        "P(drop)",
        "P(stale=1)",
        "median stale m",
    ]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let (per_client, _) = all_jitter_events(ctx, cache, city);
        let events: Vec<&JitterEvent> = per_client.iter().flatten().collect();
        let n = events.len();
        if n == 0 {
            table.row(vec![city.label().into(), "0".into(), "-".into(), "-".into(), "-".into()]);
            continue;
        }
        let drops = events.iter().filter(|e| e.is_price_drop()).count() as f64 / n as f64;
        let to_one =
            events.iter().filter(|e| e.stale_value <= 1.0).count() as f64 / n as f64;
        let e = Ecdf::new(events.iter().map(|e| e.stale_value as f64).collect());
        table.row(vec![
            city.label().into(),
            n.to_string(),
            format!("{drops:.2}"),
            format!("{to_one:.2}"),
            format!("{:.1}", e.quantile(0.5)),
        ]);
        let k = city.label().to_lowercase();
        metrics.push((format!("{k}_jitter_events"), n as f64));
        metrics.push((format!("{k}_jitter_drop_frac"), drops));
        metrics.push((format!("{k}_jitter_to_one_frac"), to_one));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig16", &h, &rows);
    Outcome {
        id: "fig16",
        title: "Multiplier during jitter (paper Fig. 16)",
        table: table.render(),
        metrics,
    }
}

/// Fig. 17: simultaneity of jitter across the 43-client fleet (paper:
/// ~90% of events touch a single client; never more than 5).
pub fn fig17(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&["city", "k=1", "k=2", "k=3", "k≥4", "max k"]);
    let mut metrics = Vec::new();
    for city in City::BOTH {
        let (per_client, tick) = all_jitter_events(ctx, cache, city);
        let hist = simultaneity(&per_client, tick);
        let total: u64 = hist.iter().sum();
        if total == 0 {
            table.row(vec![city.label().into(), "-".into(), "-".into(), "-".into(), "-".into(), "0".into()]);
            continue;
        }
        let frac = |k: usize| {
            if k < hist.len() {
                hist[k] as f64 / total as f64
            } else {
                0.0
            }
        };
        let four_plus: f64 = hist.iter().skip(3).sum::<u64>() as f64 / total as f64;
        table.row(vec![
            city.label().into(),
            format!("{:.2}", frac(0)),
            format!("{:.2}", frac(1)),
            format!("{:.2}", frac(2)),
            format!("{four_plus:.2}"),
            hist.len().to_string(),
        ]);
        let k = city.label().to_lowercase();
        metrics.push((format!("{k}_single_client_frac"), frac(0)));
        metrics.push((format!("{k}_max_simultaneous"), hist.len() as f64));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig17", &h, &rows);
    Outcome {
        id: "fig17",
        title: "Clients with simultaneous jitter (paper Fig. 17)",
        table: table.render(),
        metrics,
    }
}
