//! Extension experiments beyond the paper's own evaluation.
//!
//! `ext01` evaluates the mitigation §8 of the paper *proposes* but could
//! not test: "rather than oscillating between periods of no and
//! high-surge, Uber could use a weighted moving average to smooth the
//! price changes over time. This would make surge price changes more
//! predictable and less dramatic." We run the same SF campaign under the
//! measured Threshold policy and under an EMA-smoothed policy and compare
//! exactly the properties the paper cares about: episode durations
//! (Fig. 13's pathology), forecastability (Table 1's R²), and the rider
//! impact (riders priced out vs served).

use crate::cache::{CampaignCache, City};
use crate::{Outcome, RunCtx, TextTable};
use surgescope_analysis::Ecdf;
use surgescope_api::ProtocolEra;
use surgescope_core::forecast::{fit_city, ModelFilter};
use surgescope_core::surge_obs::episodes;
use surgescope_core::CampaignConfig;
use surgescope_marketplace::SurgePolicy;

/// The SF extension campaign config under `policy`. Shared by `ext01`,
/// `ext02` and the scheduler's needs declaration, so all three agree on
/// the cache identity and the campaign is simulated exactly once.
pub fn ext_config(ctx: &RunCtx, policy: SurgePolicy) -> CampaignConfig {
    CampaignConfig {
        seed: ctx.seed ^ 0xE801,
        hours: if ctx.quick { 8 } else { 48 },
        era: ProtocolEra::Apr2015,
        scale: ctx.scale(),
        surge_policy: policy,
        ..CampaignConfig::test_default(ctx.seed ^ 0xE801)
    }
}

/// The smoothed-policy variant (the paper's §8 proposal).
pub fn smoothed_policy() -> SurgePolicy {
    SurgePolicy::Smoothed { alpha: 0.35 }
}

/// ext01: Threshold (measured Uber) vs Smoothed (paper's §8 proposal).
pub fn ext01(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "policy",
        "surge frac",
        "mean m",
        "median episode (min)",
        "P(episode≤5min)",
        "Raw R²",
        "priced out",
        "pickups",
    ]);
    let mut metrics = Vec::new();
    for (name, policy) in [
        ("Threshold", SurgePolicy::Threshold),
        ("Smoothed α=0.35", smoothed_policy()),
    ] {
        let data = cache.campaign_custom(City::SanFrancisco, ext_config(ctx, policy), ctx);

        // Surge statistics from the jitter-free API stream.
        let all: Vec<f64> = data
            .api_surge
            .iter()
            .flat_map(|a| a.iter().map(|&m| m as f64))
            .collect();
        let surged = all.iter().filter(|&&m| m > 1.0).count() as f64 / all.len() as f64;
        let mean_m = all.iter().sum::<f64>() / all.len() as f64;

        // Episode durations (API, 300 s resolution).
        let durs: Vec<f64> = data
            .api_surge
            .iter()
            .flat_map(|a| episodes(a, 300))
            .map(|d| d as f64 / 60.0)
            .collect();
        let e = Ecdf::new(durs);

        // Forecastability: the Raw model of Table 1.
        let series: Vec<(Vec<u32>, Vec<u32>, Vec<f32>, Vec<f32>)> = (0..data.api_surge.len())
            .map(|a| {
                let surge = data.api_surge[a].clone();
                let ewt = data.api_ewt[a].clone();
                let n = surge.len().min(ewt.len());
                let mut supply: Vec<u32> =
                    data.avg_visible[a].iter().map(|&v| v.round() as u32).collect();
                let mut demand = data.estimator.death_area_series(a).to_vec();
                supply.resize(n, 0);
                demand.resize(n, 0);
                (supply, demand, ewt[..n].to_vec(), surge[..n].to_vec())
            })
            .collect();
        let r2 = fit_city(&series, ModelFilter::Raw).map_or(f64::NAN, |f| f.r2);

        // Rider outcomes.
        let priced_out: u64 = data.truth.intervals.iter().map(|s| s.priced_out as u64).sum();
        let pickups: u64 = data.truth.intervals.iter().map(|s| s.pickups as u64).sum();

        table.row(vec![
            name.into(),
            format!("{:.2}", surged),
            format!("{mean_m:.3}"),
            format!("{:.1}", e.quantile(0.5)),
            format!("{:.2}", e.at(5.0)),
            format!("{r2:.3}"),
            priced_out.to_string(),
            pickups.to_string(),
        ]);
        let key = if matches!(policy, SurgePolicy::Threshold) { "threshold" } else { "smoothed" };
        metrics.push((format!("{key}_median_episode_min"), e.quantile(0.5)));
        metrics.push((format!("{key}_raw_r2"), r2));
        metrics.push((format!("{key}_mean_surge"), mean_m));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("ext01", &h, &rows);
    Outcome {
        id: "ext01",
        title: "Extension: smoothed surge updates (the paper's §8 proposal) vs measured policy",
        table: table.render(),
        metrics,
    }
}

/// ext02: surge persistence. The paper concludes surge "cannot be
/// forecast"; the autocorrelation function of the multiplier series makes
/// that quantitative — and shows how the §8 smoothing proposal changes
/// it. Uses the cached Apr-era campaigns plus a smoothed SF run.
pub fn ext02(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    use surgescope_analysis::autocorrelation;
    use surgescope_api::ProtocolEra;

    let mut table = TextTable::new(&["series", "ACF lag 5min", "lag 15min", "lag 30min"]);
    let mut metrics = Vec::new();

    let mut add_row = |name: String, series: Vec<f64>, metrics: &mut Vec<(String, f64)>| {
        let acf = autocorrelation(&series, 6);
        table.row(vec![
            name.clone(),
            format!("{:.2}", acf[0]),
            format!("{:.2}", acf[2]),
            format!("{:.2}", acf[5]),
        ]);
        metrics.push((format!("{}_acf_lag1", name.replace(' ', "_").to_lowercase()), acf[0]));
    };

    for city in City::BOTH {
        let data = cache.campaign(city, ProtocolEra::Apr2015, ctx);
        // Pool all areas' series (per-area ACFs averaged would also do;
        // concatenation keeps it simple and the areas are homogeneous).
        for a in 0..data.api_surge.len().min(1) {
            let series: Vec<f64> = data.api_surge[a].iter().map(|&m| m as f64).collect();
            add_row(format!("{} threshold", city.label()), series, &mut metrics);
        }
    }
    // Smoothed SF for contrast — the *same* campaign ext01 scores, served
    // from the shared cache instead of simulated a second time.
    let data = cache.campaign_custom(City::SanFrancisco, ext_config(ctx, smoothed_policy()), ctx);
    let series: Vec<f64> = data.api_surge[0].iter().map(|&m| m as f64).collect();
    add_row("SF smoothed".into(), series, &mut metrics);

    let (h, rows) = table.csv_rows();
    ctx.write_csv("ext02", &h, &rows);
    Outcome {
        id: "ext02",
        title: "Extension: surge persistence (autocorrelation) under both policies",
        table: table.render(),
        metrics,
    }
}
