//! Robustness ablation: the measurement pipeline under transport faults.
//!
//! The paper's clients rode on real cellular/Wi-Fi links, so some pings
//! never came back and others came back late; §3.3's estimators implicitly
//! claim to tolerate that. This experiment makes the claim quantitative:
//! the same Manhattan campaign is re-run under increasing drop chances
//! (plus a fixed 10% chance of a ≤30 s delay), and the supply estimator is
//! scored against the marketplace's ground truth each time. Faults perturb
//! only the transport — the marketplace evolution is bit-identical across
//! runs — so any drift in the estimate is estimator degradation, not
//! world-level noise.

use crate::cache::{CampaignCache, City};
use crate::{Outcome, RunCtx, TextTable};
use surgescope_api::ProtocolEra;
use surgescope_city::CarType;
use surgescope_core::CampaignConfig;
use surgescope_simcore::FaultPlan;

/// Drop chances swept (the delay leg is fixed at 10% ≤ 30 s).
pub const DROP_CHANCES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// One leg of the sweep: the Manhattan campaign under `drop` drop chance.
/// Shared with the scheduler's needs declaration so the prefetch builds
/// exactly the campaigns the sweep will read.
pub fn sweep_config(ctx: &RunCtx, drop: f64) -> CampaignConfig {
    let hours = if ctx.quick { 6 } else { 24 };
    CampaignConfig {
        seed: ctx.seed ^ 0xFA01,
        hours,
        era: ProtocolEra::Apr2015,
        scale: 0.35,
        parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        faults: FaultPlan { drop_chance: drop, delay_chance: 0.10, max_delay_secs: 30 },
        ..CampaignConfig::test_default(ctx.seed ^ 0xFA01)
    }
}

/// fault_sweep: estimator error vs ground truth as the drop chance grows.
pub fn fault_sweep(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let mut table = TextTable::new(&[
        "drop",
        "gap frac",
        "meas supply",
        "true idle",
        "ratio",
        "mean EWT (min)",
        "supply drift vs clean",
    ]);
    let mut metrics = Vec::new();
    let mut clean_supply = f64::NAN;
    for drop in DROP_CHANCES {
        let data = cache.campaign_custom(City::Manhattan, sweep_config(ctx, drop), ctx);

        // How much of the series is actually missing (NaN gaps).
        let total = (data.ticks * data.clients.len()) as f64;
        let gaps = data
            .client_surge
            .iter()
            .flatten()
            .filter(|v| v.is_nan())
            .count() as f64;
        let gap_frac = gaps / total.max(1.0);

        // Estimated supply vs the truth the paper never had: mean unique
        // visible UberX per interval vs mean idle drivers per interval.
        let supply = data.estimator.supply_series(CarType::UberX);
        let meas =
            supply.iter().map(|&s| s as f64).sum::<f64>() / supply.len().max(1) as f64;
        let truth_idle = data.truth.intervals.iter().map(|s| s.idle_supply).sum::<f64>()
            / data.intervals.max(1) as f64;
        let ratio = meas / truth_idle.max(1e-9);

        let mean_ewt = data.client_mean_ewt.iter().sum::<f64>()
            / data.client_mean_ewt.len().max(1) as f64;

        if drop == 0.0 {
            clean_supply = meas;
        }
        let drift = (meas - clean_supply).abs() / clean_supply.max(1e-9);

        table.row(vec![
            format!("{drop:.2}"),
            format!("{gap_frac:.3}"),
            format!("{meas:.1}"),
            format!("{truth_idle:.1}"),
            format!("{ratio:.3}"),
            format!("{mean_ewt:.2}"),
            format!("{:.1}%", drift * 100.0),
        ]);
        let pct = (drop * 100.0).round() as u32;
        metrics.push((format!("gap_frac_d{pct:02}"), gap_frac));
        metrics.push((format!("supply_ratio_d{pct:02}"), ratio));
        metrics.push((format!("supply_drift_d{pct:02}"), drift));
    }
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fault_sweep", &h, &rows);
    Outcome {
        id: "fault_sweep",
        title: "Robustness: supply estimation under transport drops and delays",
        table: table.render(),
        metrics,
    }
}
