//! Fig. 4: methodology validation against taxi ground truth (§3.5).

use crate::cache::CampaignCache;
use crate::{Outcome, RunCtx, TextTable};
use surgescope_city::CarType;

/// Fig. 4: measured vs ground-truth taxi supply and demand. The paper's
/// taxi clients captured 97% of cars and 95% of deaths.
pub fn fig04(ctx: &RunCtx, cache: &CampaignCache) -> Outcome {
    let v = cache.taxi(ctx);
    let measured_supply = v.estimator.supply_series(CarType::UberT);
    let measured_deaths = v.estimator.death_series(CarType::UberT);
    let truth_supply = &v.truth.supply;
    let truth_demand = &v.truth.demand;

    let n = measured_supply
        .len()
        .min(truth_supply.len())
        .min(truth_demand.len());

    // Capture ratios over the aligned horizon.
    let sum = |xs: &[u32]| xs.iter().map(|&x| x as u64).sum::<u64>() as f64;
    let ms = sum(&measured_supply[..n.min(measured_supply.len())]);
    let ts = sum(&truth_supply[..n]);
    let mut md = sum(measured_deaths);
    let td = sum(&truth_demand[..n]);
    if md > td {
        // Deaths are an upper bound; clip for the ratio display.
        md = md.min(td * 2.0);
    }
    let supply_capture = if ts > 0.0 { ms / ts } else { 0.0 };
    let death_capture = if td > 0.0 { md / td } else { 0.0 };

    // Hourly series sample (12 intervals per row).
    let mut table = TextTable::new(&[
        "hour",
        "truth supply",
        "measured supply",
        "truth demand",
        "measured deaths",
    ]);
    let per_hour = 12usize;
    for h in 0..(n / per_hour) {
        let span = h * per_hour..(h + 1) * per_hour;
        let mean_u32 = |xs: &[u32]| {
            xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len().max(1) as f64
        };
        let m_sup = if span.end <= measured_supply.len() {
            mean_u32(&measured_supply[span.clone()])
        } else {
            0.0
        };
        let m_dea = if span.end <= measured_deaths.len() {
            mean_u32(&measured_deaths[span.clone()])
        } else {
            0.0
        };
        table.row(vec![
            format!("{h:02}"),
            format!("{:.1}", mean_u32(&truth_supply[span.clone()])),
            format!("{m_sup:.1}"),
            format!("{:.1}", mean_u32(&truth_demand[span.clone()])),
            format!("{m_dea:.1}"),
        ]);
    }

    let mut out = table.render();
    out.push_str(&format!(
        "\ncars captured: {:.1}% (paper: 97%)   deaths captured: {:.1}% (paper: 95%)\n",
        supply_capture * 100.0,
        death_capture * 100.0
    ));
    out.push_str(&format!(
        "trace: {} rides, {} taxis\n",
        v.trace.rides.len(),
        v.trace.taxi_count
    ));
    let (h, rows) = table.csv_rows();
    ctx.write_csv("fig04", &h, &rows);
    Outcome {
        id: "fig04",
        title: "Measured vs ground-truth taxi supply/demand (paper Fig. 4)",
        table: out,
        metrics: vec![
            ("supply_capture".into(), supply_capture),
            ("death_capture".into(), death_capture),
        ],
    }
}
