//! One module per group of related experiments.

pub mod algorithm;
pub mod areas_exp;
pub mod avoidance_exp;
pub mod calib;
pub mod dynamics;
pub mod extensions;
pub mod fault_sweep;
pub mod surge;
pub mod validation;
