//! Cross-campaign parallel scheduler.
//!
//! `repro all` spends nearly all of its time simulating measurement
//! campaigns, and most experiments share them. Serially, the first
//! experiment to need a campaign pays for it while every core but one
//! idles. The scheduler inverts that: a planning pass asks each requested
//! experiment which campaign configs it will read ([`needs`]), dedupes
//! them by the cache's own semantic key, orders the distinct tasks
//! longest-job-first (cost = `hours × 720 × scale` estimated ticks, with
//! a stable cache-key tiebreak), and drains them over an atomic work
//! index on a bounded worker pool feeding the shared [`CampaignCache`].
//! The previous LIFO pop-queue could schedule the single longest
//! campaign *last*, serializing the tail behind one worker; starting it
//! first bounds the makespan at `max(longest task, total/jobs)`-ish.
//! The experiments then run in their usual order and find every campaign
//! already cached.
//!
//! Correctness is inherited, not re-proved: each campaign is a pure
//! function of its config simulated *within one worker* (the existing
//! bit-identity guarantees cover intra-campaign parallelism), and the
//! experiments themselves still run serially. So the CSVs are
//! byte-identical at any `--jobs` value — only the wall clock changes.

use crate::cache::{self, CampaignCache, City};
use crate::RunCtx;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use surgescope_api::ProtocolEra;
use surgescope_core::CampaignConfig;
use surgescope_obs::Timer;

/// Panicking attempts a prefetch task gets before it is quarantined.
const QUARANTINE_ATTEMPTS: usize = 2;

/// One unit of prefetch work.
pub enum Prefetch {
    /// A measurement campaign over a city.
    Campaign(City, CampaignConfig),
    /// The §3.5 taxi validation replay.
    Taxi,
}

/// The campaigns experiment `id` will read. Over-declaring wastes work
/// and under-declaring only costs parallelism (the experiment falls back
/// to building the campaign inline), so this map is kept exact: it names
/// precisely the configs the experiment's own code requests.
pub fn needs(id: &str, ctx: &RunCtx) -> Vec<Prefetch> {
    let std_city = |city: City| {
        Prefetch::Campaign(
            city,
            CampaignCache::campaign_config(city, ProtocolEra::Apr2015, ctx),
        )
    };
    let both_apr = || City::BOTH.map(std_city).into_iter().collect::<Vec<_>>();
    let both_eras = || {
        let mut v = Vec::with_capacity(4);
        for era in [ProtocolEra::Feb2015, ProtocolEra::Apr2015] {
            for city in City::BOTH {
                v.push(Prefetch::Campaign(
                    city,
                    CampaignCache::campaign_config(city, era, ctx),
                ));
            }
        }
        v
    };
    match id {
        "fig04" => vec![Prefetch::Taxi],
        "fig05" | "fig07" | "fig08" | "fig11" | "fig12" | "fig16" | "fig17" | "fig20"
        | "fig21" | "tab01" | "fig22" | "fig23" | "fig24" => both_apr(),
        "fig09" => vec![std_city(City::Manhattan)],
        "fig10" | "fig14" => vec![std_city(City::SanFrancisco)],
        "fig13" | "fig15" => both_eras(),
        "ext01" => vec![
            Prefetch::Campaign(
                City::SanFrancisco,
                crate::exps::extensions::ext_config(
                    ctx,
                    surgescope_marketplace::SurgePolicy::Threshold,
                ),
            ),
            Prefetch::Campaign(
                City::SanFrancisco,
                crate::exps::extensions::ext_config(
                    ctx,
                    crate::exps::extensions::smoothed_policy(),
                ),
            ),
        ],
        "ext02" => {
            let mut v = both_apr();
            v.push(Prefetch::Campaign(
                City::SanFrancisco,
                crate::exps::extensions::ext_config(
                    ctx,
                    crate::exps::extensions::smoothed_policy(),
                ),
            ));
            v
        }
        "fault_sweep" => crate::exps::fault_sweep::DROP_CHANCES
            .iter()
            .map(|&d| {
                Prefetch::Campaign(
                    City::Manhattan,
                    crate::exps::fault_sweep::sweep_config(ctx, d),
                )
            })
            .collect(),
        // fig02/fig03 are pure geometry; fig18/fig19 run their own
        // spacing-swept mini-campaigns inline (not cache-shaped).
        _ => Vec::new(),
    }
}

/// Runs `f` with panic isolation: up to `attempts` tries, each unwind
/// caught (the default panic hook still prints the message and
/// backtrace). Returns whether any attempt completed. The cache the
/// closures touch recovers from lock poisoning ([`cache`] uses
/// poison-tolerant locks), so a caught panic leaves it usable.
pub(crate) fn run_quarantined(attempts: usize, f: impl Fn()) -> bool {
    for _ in 0..attempts.max(1) {
        if catch_unwind(AssertUnwindSafe(&f)).is_ok() {
            return true;
        }
    }
    false
}

fn run_task(t: &Prefetch, ctx: &RunCtx, cache: &CampaignCache) {
    match t {
        Prefetch::Taxi => {
            cache.taxi(ctx);
        }
        Prefetch::Campaign(city, cfg) => {
            cache.campaign_custom(*city, cfg.clone(), ctx);
        }
    }
}

/// Estimated cost of a task, in simulated ticks: `hours × 720 × scale`.
/// The estimate only has to *order* the tasks — campaign wall time is
/// almost exactly proportional to tick count, and the taxi replay runs
/// one simulated day per `days` at full scale.
fn cost_ticks(t: &Prefetch, ctx: &RunCtx) -> f64 {
    match t {
        Prefetch::Taxi => {
            let days = if ctx.quick { 1.0 } else { 3.0 };
            days * 24.0 * 720.0
        }
        Prefetch::Campaign(_, cfg) => cfg.hours as f64 * 720.0 * cfg.scale,
    }
}

/// Stable tiebreak for equal-cost tasks: the cache's own semantic key
/// (the taxi replay sorts before any campaign).
fn tie_key(t: &Prefetch) -> u64 {
    match t {
        Prefetch::Taxi => 0,
        Prefetch::Campaign(city, cfg) => cache::cache_key(&city.model().name, &cfg),
    }
}

fn describe(t: &Prefetch) -> String {
    match t {
        Prefetch::Taxi => "taxi validation replay".to_string(),
        Prefetch::Campaign(city, cfg) => {
            format!("{} campaign ({} h, {:?} era, scale {})", city.label(), cfg.hours, cfg.era, cfg.scale)
        }
    }
}

/// Plans and runs the prefetch for `ids`: dedupes every declared campaign
/// by the cache's semantic key, orders the distinct tasks longest-first
/// (cost = `hours × 720 × scale` ticks, stable tiebreak on cache key),
/// and drains them over an atomic work index on `jobs` worker threads,
/// filling `cache`. Longest-first keeps one long campaign from
/// serializing the tail: it starts immediately instead of being popped
/// last while the short jobs finish. Task *start order* is the sorted
/// order at any `jobs` value — workers claim the next unstarted index —
/// so the plan logged under `[schedule]` is deterministic. Returns the
/// number of distinct prefetch tasks. With `jobs <= 1` the tasks run
/// serially on the caller's thread in the same order — same work, same
/// cache contents, no thread machinery.
pub fn prefetch(ids: &[String], ctx: &RunCtx, cache: &CampaignCache, jobs: usize) -> usize {
    let mut seen = HashSet::new();
    let mut want_taxi = false;
    let mut tasks: Vec<Prefetch> = Vec::new();
    for id in ids {
        for need in needs(id, ctx) {
            match need {
                Prefetch::Taxi => {
                    if !want_taxi {
                        want_taxi = true;
                        tasks.push(Prefetch::Taxi);
                    }
                }
                Prefetch::Campaign(city, cfg) => {
                    if seen.insert(cache::cache_key(&city.model().name, &cfg)) {
                        tasks.push(Prefetch::Campaign(city, cfg));
                    }
                }
            }
        }
    }
    let n = tasks.len();
    order_longest_first(&mut tasks, ctx);
    let jobs = jobs.max(1).min(n.max(1));
    // Plan telemetry into the run registry. The drain order (and hence
    // `schedule.order.<i>` = the task's semantic key) is the sorted order
    // at *any* `jobs` value, so these gauges sit in the deterministic
    // section; per-worker busy time is wall clock and lands in the
    // timing section, where worker count may legitimately vary.
    let reg = cache.registry();
    reg.gauge("schedule.tasks").set(n as u64);
    for (i, t) in tasks.iter().enumerate() {
        reg.gauge(&format!("schedule.order.{i:02}")).set(tie_key(t));
    }
    if !ctx.quiet && n > 0 {
        eprintln!("[schedule] prefetching {n} distinct campaigns on {jobs} workers, longest first:");
        for (i, t) in tasks.iter().enumerate() {
            eprintln!("[schedule]   {:>2}. {} (~{} ticks)", i + 1, describe(t), cost_ticks(t, ctx) as u64);
        }
    }
    // Panic isolation: a task that panics (a poisoned experiment config,
    // a bug in one campaign's path) is retried once and then
    // quarantined with an explicit report — the worker moves on and
    // every other campaign still completes. Quarantine count is a pure
    // function of the inputs (0 in healthy runs), so the counter lives
    // in the deterministic section.
    let quarantined = reg.counter("resilience.quarantined");
    let run_isolated = |t: &Prefetch| {
        if !run_quarantined(QUARANTINE_ATTEMPTS, || run_task(t, ctx, cache)) {
            quarantined.incr();
            eprintln!(
                "[schedule] quarantined {} after {QUARANTINE_ATTEMPTS} panicking attempts; \
                 dependent experiments will rebuild it inline or fail individually",
                describe(t)
            );
        }
    };
    if jobs <= 1 {
        let busy = reg.timer("schedule.worker00.busy");
        let _span = busy.start();
        for t in &tasks {
            run_isolated(t);
        }
        return n;
    }
    let busy: Vec<Timer> = (0..jobs)
        .map(|w| reg.timer(&format!("schedule.worker{w:02}.busy")))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for timer in &busy {
            s.spawn(|| {
                let _span = timer.start();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(t) = tasks.get(i) else { break };
                    run_isolated(t);
                }
            });
        }
    });
    n
}

/// Sorts tasks by descending estimated cost, breaking ties by cache key.
pub fn order_longest_first(tasks: &mut [Prefetch], ctx: &RunCtx) {
    tasks.sort_by(|a, b| {
        cost_ticks(b, ctx)
            .partial_cmp(&cost_ticks(a, ctx))
            .expect("task costs are finite")
            .then_with(|| tie_key(a).cmp(&tie_key(b)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn quarantine_gives_up_after_the_attempt_budget() {
        let tries = AtomicUsize::new(0);
        let ok = run_quarantined(2, || {
            tries.fetch_add(1, Ordering::Relaxed);
            panic!("always broken");
        });
        assert!(!ok, "a task that always panics must be quarantined");
        assert_eq!(tries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn a_flaky_task_that_recovers_is_not_quarantined() {
        let tries = AtomicUsize::new(0);
        let ok = run_quarantined(2, || {
            if tries.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("first attempt dies");
            }
        });
        assert!(ok, "the second attempt succeeded");
        assert_eq!(tries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn a_clean_task_runs_exactly_once() {
        let tries = AtomicUsize::new(0);
        assert!(run_quarantined(3, || {
            tries.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(tries.load(Ordering::Relaxed), 1);
    }
}
