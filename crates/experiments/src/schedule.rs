//! Cross-campaign parallel scheduler.
//!
//! `repro all` spends nearly all of its time simulating measurement
//! campaigns, and most experiments share them. Serially, the first
//! experiment to need a campaign pays for it while every core but one
//! idles. The scheduler inverts that: a planning pass asks each requested
//! experiment which campaign configs it will read ([`needs`]), dedupes
//! them by the cache's own semantic key, and simulates the distinct
//! campaigns concurrently on a bounded worker pool feeding the shared
//! [`CampaignCache`]. The experiments then run in their usual order and
//! find every campaign already cached.
//!
//! Correctness is inherited, not re-proved: each campaign is a pure
//! function of its config simulated *within one worker* (the existing
//! bit-identity guarantees cover intra-campaign parallelism), and the
//! experiments themselves still run serially. So the CSVs are
//! byte-identical at any `--jobs` value — only the wall clock changes.

use crate::cache::{self, CampaignCache, City};
use crate::RunCtx;
use std::collections::HashSet;
use std::sync::Mutex;
use surgescope_api::ProtocolEra;
use surgescope_core::CampaignConfig;

/// One unit of prefetch work.
pub enum Prefetch {
    /// A measurement campaign over a city.
    Campaign(City, CampaignConfig),
    /// The §3.5 taxi validation replay.
    Taxi,
}

/// The campaigns experiment `id` will read. Over-declaring wastes work
/// and under-declaring only costs parallelism (the experiment falls back
/// to building the campaign inline), so this map is kept exact: it names
/// precisely the configs the experiment's own code requests.
pub fn needs(id: &str, ctx: &RunCtx) -> Vec<Prefetch> {
    let std_city = |city: City| {
        Prefetch::Campaign(
            city,
            CampaignCache::campaign_config(city, ProtocolEra::Apr2015, ctx),
        )
    };
    let both_apr = || City::BOTH.map(std_city).into_iter().collect::<Vec<_>>();
    let both_eras = || {
        let mut v = Vec::with_capacity(4);
        for era in [ProtocolEra::Feb2015, ProtocolEra::Apr2015] {
            for city in City::BOTH {
                v.push(Prefetch::Campaign(
                    city,
                    CampaignCache::campaign_config(city, era, ctx),
                ));
            }
        }
        v
    };
    match id {
        "fig04" => vec![Prefetch::Taxi],
        "fig05" | "fig07" | "fig08" | "fig11" | "fig12" | "fig16" | "fig17" | "fig20"
        | "fig21" | "tab01" | "fig22" | "fig23" | "fig24" => both_apr(),
        "fig09" => vec![std_city(City::Manhattan)],
        "fig10" | "fig14" => vec![std_city(City::SanFrancisco)],
        "fig13" | "fig15" => both_eras(),
        "ext01" => vec![
            Prefetch::Campaign(
                City::SanFrancisco,
                crate::exps::extensions::ext_config(
                    ctx,
                    surgescope_marketplace::SurgePolicy::Threshold,
                ),
            ),
            Prefetch::Campaign(
                City::SanFrancisco,
                crate::exps::extensions::ext_config(
                    ctx,
                    crate::exps::extensions::smoothed_policy(),
                ),
            ),
        ],
        "ext02" => {
            let mut v = both_apr();
            v.push(Prefetch::Campaign(
                City::SanFrancisco,
                crate::exps::extensions::ext_config(
                    ctx,
                    crate::exps::extensions::smoothed_policy(),
                ),
            ));
            v
        }
        "fault_sweep" => crate::exps::fault_sweep::DROP_CHANCES
            .iter()
            .map(|&d| {
                Prefetch::Campaign(
                    City::Manhattan,
                    crate::exps::fault_sweep::sweep_config(ctx, d),
                )
            })
            .collect(),
        // fig02/fig03 are pure geometry; fig18/fig19 run their own
        // spacing-swept mini-campaigns inline (not cache-shaped).
        _ => Vec::new(),
    }
}

fn run_task(t: Prefetch, ctx: &RunCtx, cache: &CampaignCache) {
    match t {
        Prefetch::Taxi => {
            cache.taxi(ctx);
        }
        Prefetch::Campaign(city, cfg) => {
            cache.campaign_custom(city, cfg, ctx);
        }
    }
}

/// Plans and runs the prefetch for `ids`: dedupes every declared campaign
/// by its cache key and simulates the distinct ones on `jobs` worker
/// threads, filling `cache`. Returns the number of distinct prefetch
/// tasks. With `jobs <= 1` the tasks run serially on the caller's thread
/// — same work, same cache contents, no thread machinery.
pub fn prefetch(ids: &[String], ctx: &RunCtx, cache: &CampaignCache, jobs: usize) -> usize {
    let mut seen = HashSet::new();
    let mut want_taxi = false;
    let mut tasks: Vec<Prefetch> = Vec::new();
    for id in ids {
        for need in needs(id, ctx) {
            match need {
                Prefetch::Taxi => {
                    if !want_taxi {
                        want_taxi = true;
                        tasks.push(Prefetch::Taxi);
                    }
                }
                Prefetch::Campaign(city, cfg) => {
                    if seen.insert(cache::cache_key(&city.model().name, &cfg)) {
                        tasks.push(Prefetch::Campaign(city, cfg));
                    }
                }
            }
        }
    }
    let n = tasks.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        for t in tasks {
            run_task(t, ctx, cache);
        }
        return n;
    }
    eprintln!("[schedule] prefetching {n} distinct campaigns on {jobs} workers…");
    let queue = Mutex::new(tasks);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let Some(t) = queue.lock().expect("prefetch queue").pop() else { break };
                run_task(t, ctx, cache);
            });
        }
    });
    n
}
