//! `calib` — per-area diagnostic for surge-tuning calibration.
//!
//! Prints, per city and surge area, the fraction of intervals with
//! multiplier > 1, the mean multiplier, and mean utilisation inputs from
//! ground truth. Used when fitting the city models to the paper's
//! Fig. 12 shape targets.

use surgescope_api::ProtocolEra;
use surgescope_core::{Campaign, CampaignConfig};
use surgescope_experiments::cache::City;

fn main() {
    let hours: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    for city in City::BOTH {
        let cfg = CampaignConfig::paper_default(2015, ProtocolEra::Apr2015, hours);
        let data = Campaign::run_uber(city.model(), &cfg);
        println!("== {} ==", city.label());
        for a in 0..data.city.area_count() {
            let series = &data.api_surge[a];
            let surged = series.iter().filter(|&&m| m > 1.0).count() as f64 / series.len() as f64;
            let mean: f64 =
                series.iter().map(|&m| m as f64).sum::<f64>() / series.len() as f64;
            let max = series.iter().cloned().fold(1.0f32, f32::max);
            // Ground truth per area.
            let stats: Vec<_> = data.truth.area_series(a).collect();
            let sup: f64 = stats.iter().map(|s| s.supply).sum::<f64>() / stats.len() as f64;
            let idle: f64 =
                stats.iter().map(|s| s.idle_supply).sum::<f64>() / stats.len() as f64;
            let req: f64 =
                stats.iter().map(|s| s.requests as f64).sum::<f64>() / stats.len() as f64;
            let ewt: f64 =
                stats.iter().map(|s| s.mean_ewt_min).sum::<f64>() / stats.len() as f64;
            println!(
                "area {a}: surged {:4.1}%  mean m {:5.3}  max {:3.1}  | supply {:5.1} (idle {:4.1})  req/5min {:4.1}  ewt {:4.1}",
                surged * 100.0, mean, max, sup, idle, req, ewt
            );
        }
    }
}
