//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!   repro [--quick] [--seed N] <id>...   run specific experiments
//!   repro [--quick] [--seed N] all       run everything
//!   repro --resume <checkpoint> [<id>...]  finish an interrupted campaign
//!                                          first, then run experiments
//!   repro list                           list experiment ids
//!
//! `--resume` loads a campaign checkpoint written by the store layer
//! (see `results/campaign-cache/*.ckpt`), runs the remaining ticks —
//! continuing bit-identically to the uninterrupted run — streams the
//! completed event log into the disk cache, and seeds the in-process
//! cache so the listed experiments reuse the finished campaign.
//!
//! `--serve ADDR` hosts the simulated marketplace over TCP (lockstep
//! campaign worlds plus a free-running world for load generation);
//! `--remote ADDR` points the experiments' campaigns at such a server —
//! the measured bytes are identical to the in-process run.

use std::path::PathBuf;
use surgescope_core::{CampaignConfig, CampaignRunner, StoreHooks};
use surgescope_experiments::{cache, cache::CampaignCache, run_experiment, RunCtx, ALL_IDS};

fn usage() -> ! {
    eprintln!(
        "usage: repro [options] <id>... | all | list\n\
         \x20      repro --serve ADDR\n\
         \n\
         options:\n\
         \x20 --quick       shorter campaigns, scaled-down cities\n\
         \x20 --quiet       suppress [schedule]/[cache] progress chatter\n\
         \x20 --seed N      root seed for every campaign (default 2015)\n\
         \x20 --jobs N      simulate distinct campaigns on N worker threads\n\
         \x20               (default: available parallelism; results are\n\
         \x20               byte-identical at any value)\n\
         \x20 --resume P    finish the campaign checkpointed at P first\n\
         \x20 --metrics P   write the run's metrics snapshot (JSON) to P\n\
         \x20 --serve ADDR  run the marketplace server on ADDR (port 0 picks\n\
         \x20               an ephemeral port; prints 'listening on <addr>'\n\
         \x20               and serves until killed)\n\
         \x20 --remote ADDR measure campaigns over the wire against the\n\
         \x20               server at ADDR (byte-identical to in-process)\n\
         \x20 --remote-retries N    wire retry budget per remote operation\n\
         \x20               (default 4; 0 trips the circuit breaker on the\n\
         \x20               first failure and falls back to local execution)\n\
         \x20 --remote-op-timeout SECS  per-operation socket deadline for\n\
         \x20               remote campaigns (default 30; bounds how long a\n\
         \x20               hung server can stall any single operation)"
    );
    std::process::exit(2);
}

/// Finishes the campaign checkpointed at `ckpt` and seeds `cache` with it.
fn resume_campaign(ckpt: &PathBuf, ctx: &RunCtx, campaigns: &CampaignCache) {
    use serde::Deserialize;
    let (_, state) = surgescope_store::read_checkpoint(ckpt).unwrap_or_else(|e| {
        eprintln!("--resume: cannot read {}: {e}", ckpt.display());
        std::process::exit(1);
    });
    fn die(ckpt: &PathBuf, e: &dyn std::fmt::Display) -> ! {
        eprintln!("--resume: bad checkpoint {}: {e}", ckpt.display());
        std::process::exit(1);
    }
    let cfg = state
        .field("config")
        .and_then(CampaignConfig::from_value)
        .unwrap_or_else(|e| die(ckpt, &e));
    let city_name = state
        .field("city")
        .and_then(|c| c.field("name"))
        .and_then(String::from_value)
        .unwrap_or_else(|e| die(ckpt, &e));
    // Stream the finished log into the disk cache so later processes
    // replay it instead of re-simulating.
    let hooks = match cache::cache_dir(ctx) {
        Some(dir) if std::fs::create_dir_all(&dir).is_ok() => {
            let key = cache::cache_key(&city_name, &cfg);
            StoreHooks {
                log_path: Some(cache::log_path(&dir, key)),
                checkpoint_path: Some(cache::checkpoint_path(&dir, key)),
                checkpoint_every_ticks: Some(((cfg.hours * 720) / 8).max(720)),
            }
        }
        _ => StoreHooks::none(),
    };
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut runner = CampaignRunner::resume(&state, parallelism, hooks)
        .unwrap_or_else(|e| die(ckpt, &e));
    eprintln!(
        "[resume] {} campaign at tick {}/{} — running the remaining {}…",
        city_name,
        runner.ticks_done(),
        runner.ticks_total(),
        runner.ticks_total() - runner.ticks_done()
    );
    let cfg = runner.config().clone();
    let data = runner
        .run_to_end()
        .and_then(|()| runner.finish())
        .unwrap_or_else(|e| die(ckpt, &e));
    if let Some(cp) = &cfg.store.checkpoint_path {
        let _ = std::fs::remove_file(cp);
    }
    if ckpt.exists() && Some(ckpt) != cfg.store.checkpoint_path.as_ref() {
        let _ = std::fs::remove_file(ckpt);
    }
    eprintln!("[resume] campaign finished ({} ticks); cache seeded", data.ticks);
    campaigns.insert(&cfg, data);
}

/// `--serve ADDR`: host the simulated marketplace over the wire — lockstep
/// remote campaigns plus a free-running world for load generation — until
/// the process is killed. Never returns.
fn serve_forever(addr: &str, seed: u64, quick: bool) -> ! {
    use std::io::Write as _;
    use surgescope_serve::{FreeWorldSpec, ServeConfig, Server};
    let spec = FreeWorldSpec {
        city: surgescope_city::CityModel::san_francisco_downtown(),
        scale: if quick { 0.25 } else { 1.0 },
        seed,
        era: surgescope_api::ProtocolEra::Apr2015,
        warmup_hours: 1,
        tick_ms: None,
    };
    let cfg = ServeConfig { free: Some(spec), ..ServeConfig::default() };
    let server = Server::bind(addr, cfg).unwrap_or_else(|e| {
        eprintln!("--serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The exact bound address on stdout (port 0 resolves here), flushed so
    // a supervising script can scrape it before any campaign traffic.
    println!("[serve] listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut quiet = false;
    let mut seed = 2015u64;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut resume: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut serve: Option<String> = None;
    let mut remote: Option<String> = None;
    let mut remote_retries: Option<u32> = None;
    let mut remote_op_timeout: Option<u64> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serve" => {
                serve = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--serve needs a bind address (e.g. 127.0.0.1:0)");
                    std::process::exit(2);
                }))
            }
            "--remote" => {
                remote = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--remote needs a server address");
                    std::process::exit(2);
                }))
            }
            "--remote-retries" => {
                remote_retries = Some(
                    it.next().and_then(|s| s.parse::<u32>().ok()).unwrap_or_else(|| {
                        eprintln!("--remote-retries needs a non-negative integer");
                        std::process::exit(2);
                    }),
                )
            }
            "--remote-op-timeout" => {
                remote_op_timeout = Some(
                    it.next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("--remote-op-timeout needs a positive number of seconds");
                            std::process::exit(2);
                        }),
                )
            }
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    })
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    })
            }
            "--resume" => {
                resume = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--resume needs a checkpoint path");
                    std::process::exit(2);
                })))
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--metrics needs an output path");
                    std::process::exit(2);
                })))
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => {
                if other.starts_with('-') {
                    eprintln!("unknown flag: {other}");
                    usage();
                }
                ids.push(other.to_string());
            }
        }
    }
    if let Some(addr) = serve {
        serve_forever(&addr, seed, quick);
    }
    if ids.is_empty() && resume.is_none() {
        usage();
    }
    let mut ctx = RunCtx::full(seed);
    ctx.quick = quick;
    ctx.quiet = quiet;
    ctx.remote = remote;
    ctx.remote_retries = remote_retries;
    ctx.remote_op_timeout = remote_op_timeout;
    let cache = CampaignCache::new();
    if let Some(ckpt) = &resume {
        resume_campaign(ckpt, &ctx, &cache);
    }
    // Plan: simulate every distinct campaign the requested experiments
    // declare, concurrently, before the (serial, order-preserving)
    // experiment loop reads them from the cache. Running the planner even
    // at --jobs 1 keeps the schedule.* metrics (and the logged plan)
    // identical across jobs settings; with one worker it drains the same
    // order on the caller's thread.
    if ids.len() > 1 {
        surgescope_experiments::schedule::prefetch(&ids, &ctx, &cache, jobs);
    }
    let mut failed = false;
    for id in &ids {
        match run_experiment(id, &ctx, &cache) {
            Some(outcome) => println!("{}", outcome.render()),
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if let Some(path) = &metrics {
        if let Err(e) = std::fs::write(path, cache.metrics_json() + "\n") {
            eprintln!("--metrics: cannot write {}: {e}", path.display());
            failed = true;
        } else if !quiet {
            eprintln!("[metrics] wrote {}", path.display());
        }
    }
    if failed {
        std::process::exit(1);
    }
}
