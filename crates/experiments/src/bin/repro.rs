//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!   repro [--quick] [--seed N] <id>...   run specific experiments
//!   repro [--quick] [--seed N] all       run everything
//!   repro list                           list experiment ids

use surgescope_experiments::{cache::CampaignCache, run_experiment, RunCtx, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 2015u64;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    })
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--quick] [--seed N] <id>... | all | list");
        std::process::exit(2);
    }
    let mut ctx = RunCtx::full(seed);
    ctx.quick = quick;
    let mut cache = CampaignCache::new();
    let mut failed = false;
    for id in &ids {
        match run_experiment(id, &ctx, &mut cache) {
            Some(outcome) => println!("{}", outcome.render()),
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
