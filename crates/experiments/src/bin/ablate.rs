//! `ablate` — ablation sweeps over the design choices DESIGN.md calls out.
//!
//! Three sweeps, each at quick scale:
//!
//! 1. **Client spacing** (§3.4's coverage/extent trade-off): how much of
//!    the true taxi supply does the lattice capture as spacing grows?
//! 2. **Rider price elasticity** (the demand response that stabilizes
//!    surge): surge frequency and mean multiplier as elasticity varies.
//! 3. **Consistency-bug probability** (the jitter knob): the Fig. 13
//!    sub-minute episode mass and the Fig. 17 single-client fraction as
//!    the stale-serving probability varies — the tension discussed in
//!    EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p surgescope-experiments --bin ablate
//! ```

use surgescope_api::{JitterConfig, ProtocolEra};
use surgescope_city::{CarType, CityModel};
use surgescope_core::estimate::EstimatorConfig;
use surgescope_core::surge_obs::{detect_jitter, episodes, simultaneity};
use surgescope_core::{Campaign, CampaignConfig};
use surgescope_marketplace::{Marketplace, MarketplaceConfig};
use surgescope_simcore::SimDuration;
use surgescope_taxi::TraceGenerator;

fn main() {
    sweep_spacing();
    sweep_elasticity();
    sweep_jitter();
    sweep_location_noise();
}

fn sweep_spacing() {
    println!("== ablation 1: client lattice spacing vs supply capture ==");
    println!("{:<12} {:>8} {:>16}", "spacing (m)", "clients", "supply capture");
    let city = CityModel::manhattan_midtown();
    let trace = TraceGenerator { taxis: 120, days: 1, ..Default::default() }
        .generate(&city, 4001);
    for spacing in [150.0, 250.0, 400.0, 600.0, 900.0] {
        let (est, truth) = Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            spacing,
            24,
            4001,
            EstimatorConfig::default(),
        );
        let clients =
            surgescope_core::calibration::placement(&city.measurement_region, spacing).len();
        let sum = |v: &[u32]| v.iter().map(|&x| x as u64).sum::<u64>() as f64;
        let capture = sum(est.supply_series(CarType::UberT)) / sum(&truth.supply).max(1.0);
        println!("{spacing:<12.0} {clients:>8} {:>15.1}%", capture * 100.0);
    }
    println!();
}

fn sweep_elasticity() {
    println!("== ablation 2: rider price elasticity vs surge dynamics ==");
    println!(
        "{:<11} {:>12} {:>10} {:>12} {:>12}",
        "elasticity", "surge frac", "mean m", "priced out", "pickups"
    );
    for elasticity in [0.5, 1.0, 1.8, 2.6, 4.0] {
        let mut city = CityModel::san_francisco_downtown();
        city.supply = city.supply.scaled(0.4);
        city.demand = city.demand.scaled(0.4);
        let cfg = MarketplaceConfig { elasticity, ..Default::default() };
        let mut mp = Marketplace::new(city, cfg, 4002);
        // Skip the quiet night, measure a busy stretch.
        mp.run_for(SimDuration::hours(6));
        mp.run_for(SimDuration::hours(10));
        let truth = mp.truth();
        let priced_out: u64 = truth.intervals.iter().map(|s| s.priced_out as u64).sum();
        let pickups: u64 = truth.intervals.iter().map(|s| s.pickups as u64).sum();
        println!(
            "{elasticity:<11.1} {:>11.1}% {:>10.3} {:>12} {:>12}",
            truth.surge_fraction() * 100.0,
            truth.mean_surge(),
            priced_out,
            pickups
        );
    }
    println!();
}

fn sweep_jitter() {
    println!("== ablation 3: consistency-bug probability vs observable jitter ==");
    println!(
        "{:<8} {:>10} {:>14} {:>16}",
        "p", "events", "sub-min frac", "single-client"
    );
    for p in [0.05, 0.18, 0.4, 0.8] {
        let cfg = CampaignConfig {
            seed: 4003,
            hours: 8,
            era: ProtocolEra::Apr2015,
            scale: 0.4,
            ..CampaignConfig::test_default(4003)
        };
        // The campaign builds its own ApiService; to sweep the bug we run
        // the marketplace + clients manually at interval resolution would
        // duplicate the campaign, so instead rebuild the service behaviour
        // analytically: use the jitter config on a standalone service and
        // replay one campaign's API series through it. Simplest faithful
        // approach: run the campaign and post-filter client streams built
        // with the default bug, then *re-detect* with a synthetic client
        // stream generated from the API series and the swept config.
        let data = Campaign::run_uber(CityModel::san_francisco_downtown(), &cfg);
        let jcfg = JitterConfig { prob_per_interval: p, short_fraction: 0.9 };
        let bug_seed = 4003;
        let ticks_per_iv = (300 / data.tick_secs) as usize;
        // Synthesize per-client streams: API value everywhere, except the
        // previous interval's value inside each client's jitter window.
        let mut per_client_events = Vec::new();
        let mut all_durs = Vec::new();
        for (ci, _) in data.clients.iter().enumerate() {
            let Some(area) = data.client_area[ci] else { continue };
            let api = &data.api_surge[area];
            let mut stream = Vec::with_capacity(data.intervals * ticks_per_iv);
            for iv in 0..data.intervals {
                let cur = api[iv];
                let prev = if iv > 0 { api[iv - 1] } else { cur };
                let window = jcfg.window(bug_seed, ci as u64, iv as u64);
                for k in 0..ticks_per_iv {
                    let offset = (k as u64) * data.tick_secs;
                    let stale = window.map_or(false, |w| w.contains(offset));
                    stream.push(if stale { prev } else { cur });
                }
            }
            all_durs.extend(episodes(&stream, data.tick_secs));
            per_client_events.push(detect_jitter(&stream, api, data.tick_secs));
        }
        let events: usize = per_client_events.iter().map(Vec::len).sum();
        let sub_min = if all_durs.is_empty() {
            0.0
        } else {
            all_durs.iter().filter(|&&d| d < 60).count() as f64 / all_durs.len() as f64
        };
        let hist = simultaneity(&per_client_events, data.tick_secs);
        let total: u64 = hist.iter().sum();
        let single = if total == 0 {
            1.0
        } else {
            hist[0] as f64 / total as f64
        };
        println!(
            "{p:<8.2} {events:>10} {:>13.1}% {:>15.1}%",
            sub_min * 100.0,
            single * 100.0
        );
    }
    println!("\n(paper targets: ~40% sub-minute mass, ~90% single-client — the two pull");
    println!(" against each other; the default p=0.18 is the documented compromise)\n");
}

fn sweep_location_noise() {
    use surgescope_core::calibration::placement;
    use surgescope_core::estimate::SupplyDemandEstimator;
    use surgescope_core::{MeasuredSystem, UberSystem};

    println!("== ablation 4: driver-safety location noise vs estimator accuracy ==");
    println!("{:<10} {:>14} {:>14} {:>14}", "sigma (m)", "supply/5min", "deaths", "edge-filtered");
    for sigma in [0.0, 25.0, 100.0, 250.0] {
        let mut city = CityModel::manhattan_midtown();
        city.supply = city.supply.scaled(0.4);
        city.demand = city.demand.scaled(0.4);
        let clients = placement(&city.measurement_region, city.client_spacing_m);
        let mut mp = Marketplace::new(city.clone(), MarketplaceConfig::default(), 4004);
        mp.run_for(SimDuration::hours(8));
        let api = surgescope_api::ApiService::new(ProtocolEra::Apr2015, 4004)
            .with_location_noise(sigma);
        let mut sys = UberSystem::new(mp, api);
        let mut est = SupplyDemandEstimator::new(
            EstimatorConfig::default(),
            city.measurement_region.clone(),
            vec![],
        );
        for _ in 0..(6 * 720u64) {
            sys.advance_tick();
            let now = sys.now();
            let state_t = now.saturating_sub(surgescope_simcore::SimDuration::secs(5));
            for blocks in sys.ping_all(&clients) {
                est.observe(state_t, &blocks);
            }
            est.end_tick(now);
        }
        est.finish(sys.now());
        let supply: u64 = est
            .supply_series(CarType::UberX)
            .iter()
            .map(|&x| x as u64)
            .sum();
        let intervals = est.supply_series(CarType::UberX).len().max(1) as f64;
        let deaths: u64 = est.death_series(CarType::UberX).iter().map(|&x| x as u64).sum();
        println!(
            "{sigma:<10.0} {:>14.1} {:>14} {:>14}",
            supply as f64 / intervals,
            deaths,
            est.edge_filtered
        );
    }
    println!("\n(GPS-scale noise (≤25 m) shifts death counts ~15% via edge attribution;");
    println!(" larger perturbations inflate the demand estimate through boundary");
    println!(" flicker — quantifying how much Uber's safety perturbation could bias");
    println!(" the paper's demand upper bounds)");
}
