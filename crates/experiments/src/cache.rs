//! Campaign sharing across experiments.
//!
//! A full campaign is minutes of CPU; ten experiments read from the same
//! one. The cache keys campaigns by (city, protocol era) and taxi
//! validations by city, and builds each at most once per process.

use crate::RunCtx;
use std::collections::HashMap;
use std::rc::Rc;
use surgescope_api::ProtocolEra;
use surgescope_city::CityModel;
use surgescope_core::estimate::{EstimatorConfig, SupplyDemandEstimator};
use surgescope_core::{Campaign, CampaignConfig, CampaignData};
use surgescope_taxi::{TaxiGroundTruth, TaxiTrace, TraceGenerator};

/// Which study city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum City {
    /// Midtown Manhattan.
    Manhattan,
    /// Downtown San Francisco.
    SanFrancisco,
}

impl City {
    /// Both cities in the paper's reporting order.
    pub const BOTH: [City; 2] = [City::Manhattan, City::SanFrancisco];

    /// The city model.
    pub fn model(self) -> CityModel {
        match self {
            City::Manhattan => CityModel::manhattan_midtown(),
            City::SanFrancisco => CityModel::san_francisco_downtown(),
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            City::Manhattan => "Manhattan",
            City::SanFrancisco => "SF",
        }
    }
}

/// A finished taxi validation: estimator plus ground truth.
pub struct TaxiValidation {
    /// The finished estimator.
    pub estimator: SupplyDemandEstimator,
    /// Replay ground truth.
    pub truth: TaxiGroundTruth,
    /// The generated trace (for workload statistics).
    pub trace: TaxiTrace,
}

/// Lazily built, shared campaign results.
#[derive(Default)]
pub struct CampaignCache {
    campaigns: HashMap<(City, ProtocolEra), Rc<CampaignData>>,
    taxi: Option<Rc<TaxiValidation>>,
}

impl CampaignCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The campaign for (city, era), building it on first use.
    pub fn campaign(&mut self, city: City, era: ProtocolEra, ctx: &RunCtx) -> Rc<CampaignData> {
        if let Some(c) = self.campaigns.get(&(city, era)) {
            return Rc::clone(c);
        }
        eprintln!(
            "[cache] running {} campaign ({} h, {:?} era)…",
            city.label(),
            ctx.hours(),
            era
        );
        let cfg = CampaignConfig {
            seed: ctx.seed ^ (city as u64 + 1) ^ ((era == ProtocolEra::Apr2015) as u64) << 8,
            hours: ctx.hours(),
            era,
            estimator: EstimatorConfig::default(),
            spacing_override_m: None,
            scale: ctx.scale(),
            surge_policy: surgescope_marketplace::SurgePolicy::Threshold,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            faults: surgescope_simcore::FaultPlan::none(),
        };
        let data = Rc::new(Campaign::run_uber(city.model(), &cfg));
        self.campaigns.insert((city, era), Rc::clone(&data));
        data
    }

    /// The §3.5 taxi validation (Manhattan), building it on first use.
    pub fn taxi(&mut self, ctx: &RunCtx) -> Rc<TaxiValidation> {
        if let Some(t) = &self.taxi {
            return Rc::clone(t);
        }
        eprintln!("[cache] running taxi validation replay…");
        let city = City::Manhattan.model();
        let (taxis, days) = if ctx.quick { (150, 1) } else { (400, 3) };
        let gen = TraceGenerator { taxis, days, ..Default::default() };
        let trace = gen.generate(&city, ctx.seed ^ 0x7A51);
        let hours = days * 24;
        // Taxi visibility is much shorter-range than Uber's (r ≈ 100 m in
        // the paper), so the edge-exclusion band shrinks accordingly.
        let est_cfg = EstimatorConfig {
            edge_margin_m: 75.0,
            // Taxi IDs rotate per availability period, and short idle
            // gaps between trips are real — don't discard them.
            short_lived_secs: 45,
            ..Default::default()
        };
        let (estimator, truth) = Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            150.0,
            hours,
            ctx.seed ^ 0x7A52,
            est_cfg,
        );
        let v = Rc::new(TaxiValidation { estimator, truth, trace });
        self.taxi = Some(Rc::clone(&v));
        v
    }
}
