//! Campaign sharing across experiments.
//!
//! A full campaign is minutes of CPU; ten experiments read from the same
//! one. The cache has two layers:
//!
//! * **In-process** — campaigns keyed by the full semantic config hash
//!   ([`CampaignConfig::config_hash`] folded with the city), so *any*
//!   config difference (estimator tuning, fault plan, scale, …) gets its
//!   own entry. The old key was `(city, era)` only, which silently served
//!   stale data to callers that varied anything else.
//! * **On disk** — when the run context has an output directory, each
//!   campaign is streamed into a durable event log under
//!   `results/campaign-cache/` (override with `SURGESCOPE_CACHE_DIR`).
//!   A later process replays the log into the identical `CampaignData`
//!   without re-simulation, and an interrupted campaign resumes from its
//!   periodic checkpoint instead of starting over.

use crate::RunCtx;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use surgescope_api::ProtocolEra;
use surgescope_obs::{Counter, MetricsRegistry, Snapshot};
use surgescope_city::CityModel;
use surgescope_core::estimate::{EstimatorConfig, SupplyDemandEstimator};
use surgescope_core::persist::replay_campaign;
use surgescope_core::{
    Campaign, CampaignConfig, CampaignData, CampaignRunner, RemoteOptions, StoreHooks,
};
use surgescope_taxi::{TaxiGroundTruth, TaxiTrace, TraceGenerator};

/// Which study city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum City {
    /// Midtown Manhattan.
    Manhattan,
    /// Downtown San Francisco.
    SanFrancisco,
}

/// Locks a mutex, recovering from poisoning: a panic in one prefetch
/// worker (already isolated and reported by the scheduler) must not
/// cascade `PoisonError` panics into every other experiment that shares
/// the cache. The guarded maps are always left structurally consistent —
/// each critical section is a single insert or lookup.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl City {
    /// Both cities in the paper's reporting order.
    pub const BOTH: [City; 2] = [City::Manhattan, City::SanFrancisco];

    /// The city model.
    pub fn model(self) -> CityModel {
        match self {
            City::Manhattan => CityModel::manhattan_midtown(),
            City::SanFrancisco => CityModel::san_francisco_downtown(),
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            City::Manhattan => "Manhattan",
            City::SanFrancisco => "SF",
        }
    }
}

/// A finished taxi validation: estimator plus ground truth.
pub struct TaxiValidation {
    /// The finished estimator.
    pub estimator: SupplyDemandEstimator,
    /// Replay ground truth.
    pub truth: TaxiGroundTruth,
    /// The generated trace (for workload statistics).
    pub trace: TaxiTrace,
}

/// Lazily built, shared campaign results.
///
/// Thread-safe: the scheduler's prefetch workers fill it concurrently
/// (each distinct campaign simulated once, on one worker), and the
/// experiments later read it from any thread. The locks guard only the
/// map, never a running simulation, so concurrent *distinct* campaigns
/// proceed in parallel.
pub struct CampaignCache {
    campaigns: Mutex<HashMap<u64, Arc<CampaignData>>>,
    taxi: Mutex<Option<Arc<TaxiValidation>>>,
    /// Run-level metrics registry: the cache's own counters plus whatever
    /// the scheduler registers ([`crate::schedule::prefetch`] adds its
    /// drain order and per-worker busy timers here).
    registry: MetricsRegistry,
    hits: Counter,
    misses: Counter,
    disk_replays: Counter,
    resumes: Counter,
    store_failures: Counter,
    remote_runs: Counter,
    remote_failures: Counter,
    /// Remote campaigns whose wire retry budget ran out (the client's
    /// circuit breaker tripped) before the local fallback kicked in.
    /// A strict subset of `remote_failures`.
    breaker_trips: Counter,
    taxi_runs: Counter,
    /// Per-campaign metrics snapshots, captured just before each
    /// simulated campaign finished, keyed by cache key. Replayed and
    /// in-process-hit campaigns have no entry — nothing was simulated.
    snapshots: Mutex<BTreeMap<u64, Snapshot>>,
}

impl Default for CampaignCache {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        CampaignCache {
            campaigns: Mutex::new(HashMap::new()),
            taxi: Mutex::new(None),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            disk_replays: registry.counter("cache.disk_replays"),
            resumes: registry.counter("cache.resumes"),
            store_failures: registry.counter("cache.store_failures"),
            remote_runs: registry.counter("cache.remote_runs"),
            remote_failures: registry.counter("cache.remote_failures"),
            breaker_trips: registry.counter("resilience.breaker_trips"),
            taxi_runs: registry.counter("cache.taxi_runs"),
            registry,
            snapshots: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Cache identity of one campaign: the semantic config hash folded with
/// the city name (the config alone does not identify the city).
pub fn cache_key(city_name: &str, cfg: &CampaignConfig) -> u64 {
    use serde::{Serialize, Value};
    surgescope_store::value_hash(&Value::Map(vec![
        ("city".into(), city_name.to_value()),
        ("config".into(), cfg.config_hash().to_value()),
    ]))
}

/// Directory of the on-disk campaign cache for this run context, if any:
/// `SURGESCOPE_CACHE_DIR` when set, else `<out_dir>/campaign-cache`, else
/// `None` (no output directory ⇒ memory-only cache).
pub fn cache_dir(ctx: &RunCtx) -> Option<PathBuf> {
    if let Ok(d) = std::env::var("SURGESCOPE_CACHE_DIR") {
        if !d.is_empty() {
            return Some(PathBuf::from(d));
        }
    }
    ctx.out_dir.as_ref().map(|d| d.join("campaign-cache"))
}

/// Event-log path for a cache key inside `dir`.
pub fn log_path(dir: &std::path::Path, key: u64) -> PathBuf {
    dir.join(format!("campaign-{key:016x}.sslog"))
}

/// Checkpoint path for a cache key inside `dir`.
pub fn checkpoint_path(dir: &std::path::Path, key: u64) -> PathBuf {
    dir.join(format!("campaign-{key:016x}.ckpt"))
}

impl CampaignCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The run-level metrics registry (cache counters + scheduler
    /// instruments). The scheduler registers into this, so one registry
    /// describes the whole `repro` run.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Renders the full metrics document for this run: the run-level
    /// registry plus one entry per *simulated* campaign, keyed by cache
    /// key — `{"run": {...}, "campaigns": {"campaign-<key>": {...}}}`.
    /// Keys are sorted at every level; see
    /// [`CampaignCache::metrics_deterministic_json`] for the
    /// determinism-checked subset.
    pub fn metrics_json(&self) -> String {
        let mut s = String::from("{\"run\":");
        s.push_str(&self.registry.snapshot().to_json());
        s.push_str(",\"campaigns\":{");
        let snaps = lock_ok(&self.snapshots);
        for (i, (key, snap)) in snaps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"campaign-{key:016x}\":"));
            s.push_str(&snap.to_json());
        }
        s.push_str("}}");
        s
    }

    /// The determinism-checked sections only (run + per-campaign), in the
    /// same shape as [`CampaignCache::metrics_json`]. Byte-identical at
    /// any `--jobs`/parallelism setting for the same inputs.
    pub fn metrics_deterministic_json(&self) -> String {
        let mut s = String::from("{\"run\":");
        s.push_str(&self.registry.snapshot().deterministic_json());
        s.push_str(",\"campaigns\":{");
        let snaps = lock_ok(&self.snapshots);
        for (i, (key, snap)) in snaps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"campaign-{key:016x}\":"));
            s.push_str(&snap.deterministic_json());
        }
        s.push_str("}}");
        s
    }

    /// The standard campaign configuration for (city, era) under `ctx` —
    /// shared by the cache and the `repro --resume` path so both compute
    /// the same identity hash.
    pub fn campaign_config(city: City, era: ProtocolEra, ctx: &RunCtx) -> CampaignConfig {
        CampaignConfig {
            seed: ctx.seed ^ (city as u64 + 1) ^ ((era == ProtocolEra::Apr2015) as u64) << 8,
            hours: ctx.hours(),
            era,
            estimator: EstimatorConfig::default(),
            spacing_override_m: None,
            scale: ctx.scale(),
            surge_policy: surgescope_marketplace::SurgePolicy::Threshold,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            faults: surgescope_simcore::FaultPlan::none(),
            store: StoreHooks::none(),
        }
    }

    /// Seeds the in-process layer with an externally produced campaign
    /// (e.g. one finished via `repro --resume <checkpoint>`).
    pub fn insert(&self, cfg: &CampaignConfig, data: CampaignData) -> Arc<CampaignData> {
        let key = cache_key(&data.city.name, cfg);
        let rc = Arc::new(data);
        lock_ok(&self.campaigns).insert(key, Arc::clone(&rc));
        rc
    }

    /// The standard campaign for (city, era), building it on first use.
    pub fn campaign(&self, city: City, era: ProtocolEra, ctx: &RunCtx) -> Arc<CampaignData> {
        self.campaign_custom(city, Self::campaign_config(city, era, ctx), ctx)
    }

    /// The campaign for an arbitrary config, building it on first use.
    /// Checks the layers in order: in-process map, on-disk log (replayed,
    /// no re-simulation), leftover checkpoint (resumed from the
    /// interruption point), and only then runs the campaign from scratch —
    /// streaming it into the disk cache when one is configured.
    ///
    /// `cfg.store` is overwritten; the cache owns persistence placement.
    pub fn campaign_custom(
        &self,
        city: City,
        mut cfg: CampaignConfig,
        ctx: &RunCtx,
    ) -> Arc<CampaignData> {
        cfg.store = StoreHooks::none();
        let key = cache_key(&city.model().name, &cfg);
        if let Some(c) = lock_ok(&self.campaigns).get(&key) {
            self.hits.incr();
            return Arc::clone(c);
        }

        // Remote measurement: the campaign runs against a serve endpoint
        // over a lockstep party of sockets. Byte-identical to the local
        // path, so it can share the in-process layer; the disk layers are
        // skipped (remote campaigns cannot stream the event log). A wire
        // failure degrades to the in-process path below with a warning —
        // a dead server must cost the topology, never the run.
        if let Some(addr) = ctx.remote.clone() {
            self.misses.incr();
            self.remote_runs.incr();
            if !ctx.quiet {
                eprintln!(
                    "[cache] running {} campaign ({} h, {:?} era) remotely via {addr}…",
                    city.label(),
                    cfg.hours,
                    cfg.era
                );
            }
            let connections = cfg.parallelism.clamp(1, 4);
            let mut options = RemoteOptions::default();
            if let Some(n) = ctx.remote_retries {
                options.policy.max_retries = n;
            }
            if let Some(secs) = ctx.remote_op_timeout {
                options.policy.op_timeout = Duration::from_secs(secs.max(1));
            }
            let fallible = CampaignRunner::new_remote_with(
                city.model(),
                &cfg,
                &addr,
                connections,
                options,
            )
            .and_then(|mut r| r.run_to_end().map(|()| r))
            .and_then(|r| {
                let snap = r.metrics_snapshot();
                r.finish().map(|data| (data, snap))
            });
            match fallible {
                Ok((data, snap)) => {
                    lock_ok(&self.snapshots).insert(key, snap);
                    let data = Arc::new(data);
                    lock_ok(&self.campaigns).insert(key, Arc::clone(&data));
                    return data;
                }
                Err(e) => {
                    self.remote_failures.incr();
                    // The client names the breaker in the error it
                    // surfaces when a retry budget runs out; anything
                    // else is a setup/handshake failure.
                    if e.to_string().contains("circuit breaker") {
                        self.breaker_trips.incr();
                    }
                    eprintln!("[cache] remote campaign via {addr} failed ({e}); running locally");
                }
            }
        }

        let dir = cache_dir(ctx);
        if let Some(dir) = &dir {
            let lp = log_path(dir, key);
            if lp.exists() {
                match replay_campaign(&lp) {
                    Ok(data) => {
                        self.disk_replays.incr();
                        if !ctx.quiet {
                            eprintln!(
                                "[cache] replayed {} campaign ({:?} era) from {}",
                                city.label(),
                                cfg.era,
                                lp.display()
                            );
                        }
                        let data = Arc::new(data);
                        self.campaigns
                            .lock()
                            .expect("cache lock")
                            .insert(key, Arc::clone(&data));
                        return data;
                    }
                    Err(e) => {
                        if !ctx.quiet {
                            eprintln!(
                                "[cache] cached log {} unusable ({e}); re-running",
                                lp.display()
                            );
                        }
                        let _ = std::fs::remove_file(&lp);
                    }
                }
            }
            if std::fs::create_dir_all(dir).is_ok() {
                cfg.store = StoreHooks {
                    log_path: Some(lp),
                    checkpoint_path: Some(checkpoint_path(dir, key)),
                    // ~8 checkpoints per campaign, at least hourly chunks.
                    checkpoint_every_ticks: Some(((cfg.hours * 720) / 8).max(720)),
                };
            }
        }

        self.misses.incr();
        let (data, snapshot) = self.run_campaign(city, &cfg, ctx.quiet);
        if let Some(snap) = snapshot {
            lock_ok(&self.snapshots).insert(key, snap);
        }
        if let Some(cp) = &cfg.store.checkpoint_path {
            let _ = std::fs::remove_file(cp);
        }
        let data = Arc::new(data);
        lock_ok(&self.campaigns).insert(key, Arc::clone(&data));
        data
    }

    /// Runs (or crash-resumes) one campaign, degrading to a memory-only
    /// run if the store layer fails — a broken disk must cost the cache,
    /// never the run. Returns the campaign plus its metrics snapshot,
    /// read at the last tick boundary (the store-failure fallback path
    /// has no runner to read from and returns `None`).
    fn run_campaign(
        &self,
        city: City,
        cfg: &CampaignConfig,
        quiet: bool,
    ) -> (CampaignData, Option<Snapshot>) {
        if let Some(cp) = cfg.store.checkpoint_path.as_ref().filter(|p| p.exists()) {
            match CampaignRunner::resume_from_file(cp, cfg.parallelism, cfg.store.clone()) {
                Ok(mut runner) => {
                    self.resumes.incr();
                    if !quiet {
                        eprintln!(
                            "[cache] resuming {} campaign ({:?} era) from checkpoint at tick {}/{}…",
                            city.label(),
                            cfg.era,
                            runner.ticks_done(),
                            runner.ticks_total()
                        );
                    }
                    let finished = runner.run_to_end().and_then(|()| {
                        let snap = runner.metrics_snapshot();
                        runner.finish().map(|data| (data, Some(snap)))
                    });
                    match finished {
                        Ok(out) => return out,
                        Err(e) => {
                            if !quiet {
                                eprintln!(
                                    "[cache] resumed run failed to persist ({e}); re-running"
                                );
                            }
                        }
                    }
                }
                Err(e) => {
                    if !quiet {
                        eprintln!(
                            "[cache] checkpoint {} unusable ({e}); re-running from scratch",
                            cp.display()
                        );
                    }
                }
            }
        }
        if !quiet {
            eprintln!(
                "[cache] running {} campaign ({} h, {:?} era)…",
                city.label(),
                cfg.hours,
                cfg.era
            );
        }
        let fallible = CampaignRunner::new(city.model(), cfg)
            .and_then(|mut r| r.run_to_end().map(|()| r))
            .and_then(|r| {
                let snap = r.metrics_snapshot();
                r.finish().map(|data| (data, snap))
            });
        match fallible {
            Ok((data, snap)) => (data, Some(snap)),
            Err(e) => {
                self.store_failures.incr();
                if !quiet {
                    eprintln!("[cache] store layer failed ({e}); running without persistence");
                }
                let mut plain = cfg.clone();
                plain.store = StoreHooks::none();
                (Campaign::run_uber(city.model(), &plain), None)
            }
        }
    }

    /// The §3.5 taxi validation (Manhattan), building it on first use.
    pub fn taxi(&self, ctx: &RunCtx) -> Arc<TaxiValidation> {
        if let Some(t) = lock_ok(&self.taxi).as_ref() {
            return Arc::clone(t);
        }
        self.taxi_runs.incr();
        if !ctx.quiet {
            eprintln!("[cache] running taxi validation replay…");
        }
        let city = City::Manhattan.model();
        let (taxis, days) = if ctx.quick { (150, 1) } else { (400, 3) };
        let gen = TraceGenerator { taxis, days, ..Default::default() };
        let trace = gen.generate(&city, ctx.seed ^ 0x7A51);
        let hours = days * 24;
        // Taxi visibility is much shorter-range than Uber's (r ≈ 100 m in
        // the paper), so the edge-exclusion band shrinks accordingly.
        let est_cfg = EstimatorConfig {
            edge_margin_m: 75.0,
            // Taxi IDs rotate per availability period, and short idle
            // gaps between trips are real — don't discard them.
            short_lived_secs: 45,
            ..Default::default()
        };
        let (estimator, truth) = Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            150.0,
            hours,
            ctx.seed ^ 0x7A52,
            est_cfg,
        );
        let v = Arc::new(TaxiValidation { estimator, truth, trace });
        *lock_ok(&self.taxi) = Some(Arc::clone(&v));
        v
    }
}
