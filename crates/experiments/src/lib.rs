//! Experiment harness: one runnable reproduction per table and figure of
//! the paper's evaluation.
//!
//! Every experiment implements the same contract: given a [`RunCtx`]
//! (seed, quick/full fidelity, output directory) it produces an
//! [`Outcome`] — a printable table plus named scalar metrics. The
//! `repro` binary runs experiments by id (`repro fig12`, `repro all`),
//! prints the tables, and drops one CSV per experiment under `results/`.
//!
//! Experiments that share a measurement campaign (most of §4–§6) obtain
//! it from a [`cache::CampaignCache`], so `repro all` runs each
//! multi-hour campaign exactly once per (city, protocol era).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod exps;
pub mod schedule;

use std::fmt::Write as _;
use std::path::PathBuf;

/// Shared run context.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Root seed for every campaign in the run.
    pub seed: u64,
    /// Quick mode: shorter horizons and a scaled-down city. The shapes
    /// survive; the confidence intervals widen.
    pub quick: bool,
    /// Directory for CSV output (created on demand); `None` disables CSV.
    pub out_dir: Option<PathBuf>,
    /// Suppress progress chatter (`[schedule]`/`[cache]` lines) on
    /// stderr. Warnings and errors still print.
    pub quiet: bool,
    /// Measure campaigns over the wire against a `surgescope-serve`
    /// endpoint at this address instead of in-process. Byte-identical
    /// results (the serving layer's lockstep determinism contract), so
    /// experiments neither know nor care; the disk cache is bypassed
    /// because remote campaigns cannot stream the event log.
    pub remote: Option<String>,
    /// Remote wire retry budget per operation (`--remote-retries`);
    /// `None` uses the client default. 0 means the first wire failure
    /// trips the circuit breaker and the campaign falls back to local
    /// execution (counted in `resilience.breaker_trips`, never silent).
    pub remote_retries: Option<u32>,
    /// Remote per-operation socket deadline in seconds
    /// (`--remote-op-timeout`); `None` uses the client default. Bounds
    /// how long a hung server can stall any single wire operation.
    pub remote_op_timeout: Option<u64>,
}

impl RunCtx {
    /// Full-fidelity context (72-hour campaigns, full city scale).
    pub fn full(seed: u64) -> Self {
        RunCtx {
            seed,
            quick: false,
            out_dir: Some(PathBuf::from("results")),
            quiet: false,
            remote: None,
            remote_retries: None,
            remote_op_timeout: None,
        }
    }

    /// Quick context for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        RunCtx {
            seed,
            quick: true,
            out_dir: None,
            quiet: false,
            remote: None,
            remote_retries: None,
            remote_op_timeout: None,
        }
    }

    /// Campaign length in hours.
    pub fn hours(&self) -> u64 {
        if self.quick {
            8
        } else {
            72
        }
    }

    /// City scale factor.
    pub fn scale(&self) -> f64 {
        if self.quick {
            0.4
        } else {
            1.0
        }
    }

    /// Writes a CSV artifact if an output directory is configured.
    pub fn write_csv(&self, id: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.out_dir else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        body.push_str(header);
        body.push('\n');
        for r in rows {
            body.push_str(r);
            body.push('\n');
        }
        let _ = std::fs::write(dir.join(format!("{id}.csv")), body);
    }
}

/// The result of one experiment.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Experiment id ("fig12", "tab01", …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The printable reproduction (rows/series as the paper reports).
    pub table: String,
    /// Named scalar metrics (used by tests and EXPERIMENTS.md).
    pub metrics: Vec<(String, f64)>,
}

impl Outcome {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the outcome for the terminal.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "==== {} — {} ====", self.id, self.title);
        s.push_str(&self.table);
        if !self.metrics.is_empty() {
            let _ = writeln!(s, "-- metrics --");
            for (k, v) in &self.metrics {
                let _ = writeln!(s, "{k} = {v:.4}");
            }
        }
        s
    }
}

/// Simple fixed-width table builder for terminal output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                let _ = write!(out, "{:<w$}  ", cells[i], w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Rows as CSV strings.
    pub fn csv_rows(&self) -> (String, Vec<String>) {
        (
            self.header.join(","),
            self.rows.iter().map(|r| r.join(",")).collect(),
        )
    }
}

/// All experiment ids in run order (`ext01` is an extension beyond the
/// paper's own evaluation — the §8 smoothing proposal, evaluated).
pub const ALL_IDS: [&str; 26] = [
    "fig02", "fig03", "fig04", "fig05", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "tab01",
    "fig22", "fig23", "fig24", "ext01", "ext02", "fault_sweep",
];

/// Runs one experiment by id against a (shared) campaign cache.
pub fn run_experiment(
    id: &str,
    ctx: &RunCtx,
    cache: &cache::CampaignCache,
) -> Option<Outcome> {
    let out = match id {
        "fig02" => exps::calib::fig02(ctx),
        "fig03" => exps::calib::fig03(ctx),
        "fig04" => exps::validation::fig04(ctx, cache),
        "fig05" => exps::dynamics::fig05(ctx, cache),
        "fig07" => exps::dynamics::fig07(ctx, cache),
        "fig08" => exps::dynamics::fig08(ctx, cache),
        "fig09" => exps::dynamics::fig09(ctx, cache),
        "fig10" => exps::dynamics::fig10(ctx, cache),
        "fig11" => exps::dynamics::fig11(ctx, cache),
        "fig12" => exps::surge::fig12(ctx, cache),
        "fig13" => exps::surge::fig13(ctx, cache),
        "fig14" => exps::surge::fig14(ctx, cache),
        "fig15" => exps::surge::fig15(ctx, cache),
        "fig16" => exps::surge::fig16(ctx, cache),
        "fig17" => exps::surge::fig17(ctx, cache),
        "fig18" => exps::areas_exp::fig18(ctx),
        "fig19" => exps::areas_exp::fig19(ctx),
        "fig20" => exps::algorithm::fig20(ctx, cache),
        "fig21" => exps::algorithm::fig21(ctx, cache),
        "tab01" => exps::algorithm::tab01(ctx, cache),
        "fig22" => exps::algorithm::fig22(ctx, cache),
        "fig23" => exps::avoidance_exp::fig23(ctx, cache),
        "fig24" => exps::avoidance_exp::fig24(ctx, cache),
        "ext01" => exps::extensions::ext01(ctx, cache),
        "ext02" => exps::extensions::ext02(ctx, cache),
        "fault_sweep" => exps::fault_sweep::fault_sweep(ctx, cache),
        _ => return None,
    };
    if let Some(dir) = &ctx.out_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    Some(out)
}
