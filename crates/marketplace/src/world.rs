//! The marketplace world: ties drivers, riders, dispatch and surge into a
//! single deterministic tick loop.
//!
//! One tick is 5 simulated seconds (the client ping cadence); the surge
//! clock closes a window every 60 ticks. Within a tick the order is fixed
//! — shifts, retries, fresh arrivals, movement, accounting — so a seeded
//! run is bit-reproducible.

use crate::driver::{Driver, DriverId, DriverState};
use crate::metrics::{GroundTruth, IntervalStats, TickTimers, TripRecord};
use crate::surge::{SurgeEngine, SurgePolicy};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;
use surgescope_city::{AreaId, CarType, CityModel};
use surgescope_geo::{DynamicGrid, LatLng, Meters, PathVector};
use surgescope_simcore::{EventQueue, SimDuration, SimRng, SimTime};

/// Behavioural constants of the marketplace (city-independent).
#[derive(Debug, Clone, Copy)]
pub struct MarketplaceConfig {
    /// Simulation step, seconds. The protocol pings every 5 s, so 5 is
    /// the natural (and default) resolution.
    pub tick_secs: u64,
    /// Riders farther than this from every idle driver go unserved.
    pub match_radius_m: f64,
    /// Fixed dispatch overhead added to EWT estimates, seconds.
    pub dispatch_overhead_secs: f64,
    /// Price elasticity: conversion probability is `m^(-elasticity)` at
    /// multiplier `m` (the paper found surge has a *large negative* effect
    /// on demand, §5.5).
    pub elasticity: f64,
    /// Fraction of priced-out riders who "wait out" the surge and retry
    /// early in the next 5-minute interval (§5.5 discussion).
    pub wait_out_prob: f64,
    /// Extra supply attracted per unit of mean surge above 1 (the small
    /// positive supply effect of Fig. 22: ≈3.7% more new cars).
    pub surge_supply_boost: f64,
    /// Per-tick probability that an idle driver retargets toward an
    /// adjacent area surging ≥ 0.2 above its own (weak flocking).
    pub reposition_prob: f64,
    /// EWT reported when no car of the requested tier is findable, minutes
    /// (the app shows large worst-case waits; paper saw up to 43 min).
    pub default_ewt_min: f64,
    /// Probability a ride request originates at a hotspot rather than
    /// uniformly.
    pub hotspot_bias: f64,
    /// Fraction of shift-capacity churn applied per tick (smooths the
    /// online-count toward its target instead of teleporting it).
    pub shift_smoothing: f64,
    /// Surge publication policy. `Threshold` reproduces measured Uber;
    /// `Smoothed` evaluates the paper's §8 moving-average proposal.
    pub surge_policy: SurgePolicy,
}

impl Default for MarketplaceConfig {
    fn default() -> Self {
        MarketplaceConfig {
            tick_secs: 5,
            match_radius_m: 3_000.0,
            dispatch_overhead_secs: 60.0,
            elasticity: 1.8,
            wait_out_prob: 0.5,
            surge_supply_boost: 0.05,
            reposition_prob: 0.02,
            default_ewt_min: 12.0,
            hotspot_bias: 0.7,
            shift_smoothing: 0.15,
            surge_policy: SurgePolicy::Threshold,
        }
    }
}

/// A car as exposed to the protocol layer: only what pingClient reveals.
#[derive(Debug, Clone)]
pub struct VisibleCar {
    /// Randomized per-session public ID.
    pub session: crate::driver::SessionId,
    /// Product tier.
    pub car_type: CarType,
    /// Planar position.
    pub position: Meters,
    /// Geographic position.
    pub latlng: LatLng,
    /// Recent movement trace, shared with the driver (snapshots clone the
    /// handle, not the points).
    pub path: Arc<PathVector>,
}

/// A rider who was priced out and chose to wait for the next interval.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RetryRequest {
    pickup: Meters,
    dropoff: Meters,
    car_type: CarType,
}

/// Per-area accumulators for the open 5-minute interval.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct AreaAccum {
    online_ticks: f64,
    idle_ticks: f64,
    requests: u32,
    pickups: u32,
    priced_out: u32,
    unserved: u32,
    ewt_sum_min: f64,
    ewt_samples: u32,
}

/// The simulated city marketplace.
pub struct Marketplace {
    city: Arc<CityModel>,
    cfg: MarketplaceConfig,
    now: SimTime,
    drivers: Vec<Driver>,
    surge: SurgeEngine,
    retries: EventQueue<RetryRequest>,
    truth: GroundTruth,
    acc: Vec<AreaAccum>,
    rng_shift: SimRng,
    rng_demand: SimRng,
    rng_drive: SimRng,
    ticks_run: u64,
    /// Per-tier spatial index over idle (visible) drivers, keyed by driver
    /// index, maintained *incrementally*: every visibility or position
    /// transition (shift start/end, dispatch, trip completion, idle
    /// cruising) updates the grid in place, so at any query point it holds
    /// exactly the currently visible drivers at their current positions —
    /// no per-tick rebuilds, no staleness filter.
    idle_index: Vec<(CarType, DynamicGrid)>,
    /// Scratch buffer for `idle_drift`'s surge-chasing candidate list,
    /// reused across drivers and ticks. Purely transient (cleared before
    /// every use); never serialized.
    drift_scratch: Vec<AreaId>,
    /// The root seed every random stream derives from, kept so coupled
    /// subsystems (e.g. the transport fault injector) can derive their own
    /// independent streams from the same campaign seed.
    seed: u64,
    /// Wall-clock tick-phase telemetry. Purely observational (never
    /// serialized — a restored world starts fresh timers).
    timers: TickTimers,
}

impl Marketplace {
    /// Builds a marketplace for `city`, seeding every random stream from
    /// `seed`. The driver pool is materialized immediately (all offline);
    /// call [`Marketplace::run_for`] or [`Marketplace::tick`] to start the
    /// world.
    pub fn new(city: CityModel, cfg: MarketplaceConfig, seed: u64) -> Self {
        assert!(cfg.tick_secs > 0 && 300 % cfg.tick_secs == 0, "tick must divide 300 s");
        let root = SimRng::seed_from_u64(seed);
        let mut rng_fleet = root.split("fleet");
        let mut drivers = Vec::with_capacity(city.supply.fleet_size);
        for i in 0..city.supply.fleet_size {
            let car_type = city.sample_car_type(&mut rng_fleet);
            let position = city.sample_point(&mut rng_fleet, cfg.hotspot_bias);
            drivers.push(Driver::new(DriverId(i as u32), car_type, position));
        }
        let surge = SurgeEngine::new(
            city.area_count(),
            city.surge_tuning,
            root.split("surge"),
        )
        .with_policy(cfg.surge_policy);
        let acc = vec![AreaAccum::default(); city.area_count()];
        let mut mp = Marketplace {
            city: Arc::new(city),
            cfg,
            now: SimTime::EPOCH,
            drivers,
            surge,
            retries: EventQueue::new(),
            truth: GroundTruth::default(),
            acc,
            rng_shift: root.split("shift"),
            rng_demand: root.split("demand"),
            rng_drive: root.split("drive"),
            ticks_run: 0,
            idle_index: Vec::new(),
            drift_scratch: Vec::new(),
            seed,
            timers: TickTimers::default(),
        };
        mp.rebuild_idle_index();
        mp
    }

    /// The root seed this world was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serializes every piece of mutable world state — drivers, surge
    /// engine (including its RNG), retry queue, ground truth, interval
    /// accumulators, the three world RNG streams and the clock. The city
    /// model and behaviour config are *not* included: they are pure
    /// functions of the campaign config and are supplied again on
    /// [`restore_state`](Marketplace::restore_state). The idle index is
    /// derived state, rebuilt on restore.
    pub fn save_state(&self) -> Value {
        Value::Map(vec![
            ("now".into(), self.now.to_value()),
            ("drivers".into(), self.drivers.to_value()),
            ("surge".into(), self.surge.to_value()),
            ("retries".into(), self.retries.to_value()),
            ("truth".into(), self.truth.to_value()),
            ("acc".into(), self.acc.to_value()),
            ("rng_shift".into(), self.rng_shift.to_value()),
            ("rng_demand".into(), self.rng_demand.to_value()),
            ("rng_drive".into(), self.rng_drive.to_value()),
            ("ticks_run".into(), self.ticks_run.to_value()),
            ("seed".into(), self.seed.to_value()),
        ])
    }

    /// Rebuilds a world from [`save_state`](Marketplace::save_state)
    /// output plus the (re-derived) city model and config. The restored
    /// world continues bit-identically to the original.
    pub fn restore_state(
        city: CityModel,
        cfg: MarketplaceConfig,
        v: &Value,
    ) -> Result<Self, serde::Error> {
        let mut mp = Marketplace {
            city: Arc::new(city),
            cfg,
            now: SimTime::from_value(v.field("now")?)?,
            drivers: Vec::<Driver>::from_value(v.field("drivers")?)?,
            surge: SurgeEngine::from_value(v.field("surge")?)?,
            retries: EventQueue::from_value(v.field("retries")?)?,
            truth: GroundTruth::from_value(v.field("truth")?)?,
            acc: Vec::<AreaAccum>::from_value(v.field("acc")?)?,
            rng_shift: SimRng::from_value(v.field("rng_shift")?)?,
            rng_demand: SimRng::from_value(v.field("rng_demand")?)?,
            rng_drive: SimRng::from_value(v.field("rng_drive")?)?,
            ticks_run: u64::from_value(v.field("ticks_run")?)?,
            idle_index: Vec::new(),
            drift_scratch: Vec::new(),
            seed: u64::from_value(v.field("seed")?)?,
            timers: TickTimers::default(),
        };
        mp.rebuild_idle_index();
        Ok(mp)
    }

    /// Current simulated time (start of the next tick).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The city being simulated.
    pub fn city(&self) -> &CityModel {
        &self.city
    }

    /// Shared handle to the (immutable) city model, for snapshots that
    /// outlive a borrow of the marketplace.
    pub fn city_arc(&self) -> Arc<CityModel> {
        Arc::clone(&self.city)
    }

    /// The behaviour configuration.
    pub fn config(&self) -> &MarketplaceConfig {
        &self.cfg
    }

    /// The surge engine (read access for the protocol layer).
    pub fn surge_engine(&self) -> &SurgeEngine {
        &self.surge
    }

    /// Ground truth recorded so far.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Consumes the world, returning its ground truth.
    pub fn into_truth(self) -> GroundTruth {
        self.truth
    }

    /// All currently visible (idle) cars, in driver-index order.
    pub fn visible_cars(&self) -> Vec<VisibleCar> {
        let mut out = Vec::new();
        self.for_each_visible_car(|c| out.push(c));
        out
    }

    /// Visits every visible (idle) car in driver-index order without
    /// materializing a vector — the per-tick snapshot capture streams
    /// cars straight into its reused tier buckets through this.
    pub fn for_each_visible_car(&self, mut f: impl FnMut(VisibleCar)) {
        for d in self.drivers.iter().filter(|d| d.state.is_visible()) {
            f(VisibleCar {
                session: d.session.expect("idle driver always has a session"),
                car_type: d.car_type,
                position: d.position,
                latlng: self.city.projection.to_latlng(d.position),
                path: d.path.clone(),
            });
        }
    }

    /// True number of online drivers (any state).
    pub fn online_count(&self) -> usize {
        self.drivers.iter().filter(|d| d.state.is_online()).count()
    }

    /// Estimated wait time in minutes for a `car_type` pickup at `pos`:
    /// travel time of the nearest idle car of that tier plus dispatch
    /// overhead, or the configured default when none is in range.
    pub fn ewt_minutes(&self, pos: Meters, car_type: CarType) -> f64 {
        // Drive time is rectilinear distance over a speed that depends only
        // on the clock, so the nearest-L1 idle car from the tier's grid is
        // exactly the car a full scan's running minimum would settle on
        // (the grid breaks distance ties by lowest driver index).
        let best = self.idle_grid(car_type).and_then(|g| {
            g.nearest_l1(pos).map(|(i, _)| {
                let d = &self.drivers[i as usize];
                self.city.drive_time_secs(d.position, pos, self.now)
            })
        });
        match best {
            Some(secs) => ((secs + self.cfg.dispatch_overhead_secs) / 60.0).max(1.0),
            None => self.cfg.default_ewt_min,
        }
    }

    fn idle_grid(&self, car_type: CarType) -> Option<&DynamicGrid> {
        self.idle_index.iter().find(|(t, _)| *t == car_type).map(|(_, g)| g)
    }

    fn idle_grid_mut(index: &mut [(CarType, DynamicGrid)], car_type: CarType) -> &mut DynamicGrid {
        &mut index
            .iter_mut()
            .find(|(t, _)| *t == car_type)
            .expect("every fleet tier has a grid from rebuild_idle_index")
            .1
    }

    /// Builds the per-tier idle-driver grids from scratch: one (initially
    /// empty) grid per tier present in the fleet, then one insert per
    /// currently visible driver. Called once at construction/restore;
    /// after that every state transition maintains the grids in place.
    /// Kept `pub(crate)` so tests can diff incremental maintenance against
    /// a fresh rebuild.
    pub(crate) fn rebuild_idle_index(&mut self) {
        let bb = self.city.service_region.bbox();
        let n = self.drivers.len();
        let mut index: Vec<(CarType, DynamicGrid)> = Vec::new();
        for d in &self.drivers {
            if !index.iter().any(|(t, _)| *t == d.car_type) {
                index.push((d.car_type, DynamicGrid::new(bb.min, bb.max, n)));
            }
        }
        for (i, d) in self.drivers.iter().enumerate() {
            if d.state.is_visible() {
                Self::idle_grid_mut(&mut index, d.car_type).insert(i as u32, d.position);
            }
        }
        self.idle_index = index;
    }

    /// The live per-tier idle index (for equivalence tests).
    #[cfg(test)]
    pub(crate) fn idle_index(&self) -> &[(CarType, DynamicGrid)] {
        &self.idle_index
    }

    /// Runs the world for a duration (must be a whole number of ticks).
    pub fn run_for(&mut self, d: SimDuration) {
        let ticks = d.as_secs() / self.cfg.tick_secs;
        assert_eq!(d.as_secs() % self.cfg.tick_secs, 0, "duration must align to ticks");
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// This world's tick-phase timers (wall clock, observational only).
    pub fn tick_timers(&self) -> &TickTimers {
        &self.timers
    }

    /// Advances the world by one tick (5 s by default).
    pub fn tick(&mut self) {
        let dt = self.cfg.tick_secs;
        let t = self.now;

        {
            let _span = self.timers.dispatch.start();
            self.manage_shifts(t);
            self.process_retries(t);
            self.generate_demand(t, dt);
        }
        {
            let _span = self.timers.mv.start();
            self.move_drivers(t, dt);
        }
        {
            let _span = self.timers.accumulate.start();
            self.accumulate(t, dt);
        }

        self.now = t + SimDuration::secs(dt);
        self.ticks_run += 1;
        if self.now.seconds_into_surge_interval() == 0 {
            let _span = self.timers.surge.start();
            self.close_interval();
        }
    }

    // ---- shift management -------------------------------------------------

    fn surge_attraction(&self) -> f64 {
        let base = &self.surge.current().base;
        if base.is_empty() {
            return 0.0;
        }
        let mean: f64 = base.iter().sum::<f64>() / base.len() as f64;
        (mean - 1.0).max(0.0)
    }

    fn manage_shifts(&mut self, t: SimTime) {
        let mut target = self.city.supply.target_online(t) as f64;
        // Higher prices pull a few extra drivers onto the road.
        target *= 1.0 + self.cfg.surge_supply_boost * self.surge_attraction();
        let target = target.round() as usize;
        let online = self.online_count();

        if online < target {
            let deficit = target - online;
            let batch = ((deficit as f64 * self.cfg.shift_smoothing).ceil() as usize).max(1);
            let mut brought = 0;
            // Scan from a random offset so the same drivers don't always
            // start first.
            let n = self.drivers.len();
            let start = self.rng_shift.range_usize(0, n);
            for k in 0..n {
                if brought >= batch {
                    break;
                }
                let i = (start + k) % n;
                if !self.drivers[i].state.is_online() {
                    let pos = self.city.sample_point(&mut self.rng_shift, self.cfg.hotspot_bias);
                    let d = &mut self.drivers[i];
                    d.come_online(pos, t, &mut self.rng_shift);
                    d.shift_secs = Self::sample_shift_secs(d.car_type, &mut self.rng_shift);
                    let car_type = d.car_type;
                    self.truth.sessions_started += 1;
                    Self::idle_grid_mut(&mut self.idle_index, car_type).insert(i as u32, pos);
                    brought += 1;
                }
            }
        } else if online > target {
            let excess = online - target;
            let batch = ((excess as f64 * self.cfg.shift_smoothing).ceil() as usize).max(1);
            let mut sent = 0;
            let n = self.drivers.len();
            let start = self.rng_shift.range_usize(0, n);
            for k in 0..n {
                if sent >= batch {
                    break;
                }
                let i = (start + k) % n;
                if matches!(self.drivers[i].state, DriverState::Idle) {
                    let (car_type, pos) = (self.drivers[i].car_type, self.drivers[i].position);
                    self.drivers[i].go_offline();
                    Self::idle_grid_mut(&mut self.idle_index, car_type).remove(i as u32, pos);
                    sent += 1;
                }
            }
        }

        // Idle drivers past their shift go home regardless of the target.
        let Marketplace { drivers, idle_index, .. } = self;
        for (i, d) in drivers.iter_mut().enumerate() {
            if matches!(d.state, DriverState::Idle) {
                if let Some(since) = d.online_since {
                    if t.since(since).as_secs() >= d.shift_secs {
                        d.go_offline();
                        Self::idle_grid_mut(idle_index, d.car_type).remove(i as u32, d.position);
                    }
                }
            }
        }
    }

    /// Shift lengths: low-priced tiers are dominated by short casual
    /// sessions; BLACK/SUV drivers are professionals with long shifts —
    /// this asymmetry is what Fig. 7 measures.
    fn sample_shift_secs(car_type: CarType, rng: &mut SimRng) -> u64 {
        let hours = if car_type.is_low_priced() {
            // Mostly 1–6 h, occasionally longer.
            0.75 + rng.exp(1.0 / 2.0)
        } else {
            3.0 + rng.exp(1.0 / 4.0)
        };
        (hours.min(14.0) * 3600.0) as u64
    }

    // ---- demand -----------------------------------------------------------

    fn process_retries(&mut self, t: SimTime) {
        while let Some(ev) = self.retries.pop_due(t) {
            let r = ev.event;
            // Retrying riders accept the price if it dropped; they have
            // already demonstrated elasticity, so only a still-surging
            // price can price them out again (without a second retry).
            let area = self.city.area_of(r.pickup);
            let m = area.map_or(1.0, |a| self.surge.multiplier(a, r.car_type));
            let accept = m <= 1.0 || self.rng_demand.chance(m.powf(-self.cfg.elasticity));
            if let Some(a) = area {
                self.acc[a.0].requests += 1;
                self.surge.record_request(a);
            }
            if accept {
                self.try_match(t, r.pickup, r.dropoff, r.car_type, m, area);
            } else if let Some(a) = area {
                self.acc[a.0].priced_out += 1;
            }
        }
    }

    fn generate_demand(&mut self, t: SimTime, dt: u64) {
        let lambda = self.city.demand.expected_in_window(t, dt);
        let n = self.rng_demand.poisson(lambda);
        for _ in 0..n {
            let pickup = self.city.sample_point(&mut self.rng_demand, self.cfg.hotspot_bias);
            let dropoff = self.city.sample_point(&mut self.rng_demand, 0.5);
            let car_type = self.city.sample_car_type(&mut self.rng_demand);
            let area = self.city.area_of(pickup);
            if let Some(a) = area {
                self.acc[a.0].requests += 1;
                self.surge.record_request(a);
            }
            let m = area.map_or(1.0, |a| self.surge.multiplier(a, car_type));

            // Price elasticity: surge suppresses conversion sharply.
            if m > 1.0 && !self.rng_demand.chance(m.powf(-self.cfg.elasticity)) {
                if let Some(a) = area {
                    self.acc[a.0].priced_out += 1;
                }
                if self.rng_demand.chance(self.cfg.wait_out_prob) {
                    // Retry shortly after the next surge recomputation.
                    let next = t.surge_interval_start()
                        + SimDuration::secs(300 + self.rng_demand.range_u64(5, 60));
                    self.retries.schedule(next, RetryRequest { pickup, dropoff, car_type });
                }
                continue;
            }
            self.try_match(t, pickup, dropoff, car_type, m, area);
        }
    }

    fn try_match(
        &mut self,
        t: SimTime,
        pickup: Meters,
        dropoff: Meters,
        car_type: CarType,
        surge: f64,
        area: Option<AreaId>,
    ) {
        // Nearest idle driver of the requested tier, from the tier's grid.
        // The grid tracks dispatches and completions as they happen, so no
        // visibility re-check is needed; it breaks distance ties by lowest
        // driver index, which is what a first-strictly-closer linear scan
        // would keep.
        let best: Option<usize> = self
            .idle_grid(car_type)
            .and_then(|g| g.nearest_l1_within(pickup, self.cfg.match_radius_m))
            .map(|(i, _)| i as usize);
        match best {
            Some(i) => {
                let trip_idx = self.truth.trips.len();
                let distance_m =
                    (pickup.x - dropoff.x).abs() + (pickup.y - dropoff.y).abs();
                self.truth.trips.push(TripRecord {
                    requested_at: t,
                    car_type,
                    surge,
                    pickup_area: area.map_or(usize::MAX, |a| a.0),
                    distance_m,
                    fare: None,
                });
                let d = &mut self.drivers[i];
                d.dispatch(pickup, dropoff);
                d.trip_idx = Some(trip_idx);
                let (car_type, pos) = (d.car_type, d.position);
                Self::idle_grid_mut(&mut self.idle_index, car_type).remove(i as u32, pos);
                if let Some(a) = area {
                    self.acc[a.0].pickups += 1;
                }
            }
            None => {
                if let Some(a) = area {
                    self.acc[a.0].unserved += 1;
                }
            }
        }
    }

    // ---- movement ---------------------------------------------------------

    fn move_drivers(&mut self, t: SimTime, dt: u64) {
        let speed = self.city.drive_speed_mps(t);
        let step = speed * dt as f64;
        // Idle drivers cruise slower than dispatched ones.
        let idle_step = step * 0.5;

        // Split the borrow: repositioning reads the surge base in place
        // while drivers are mutated, instead of cloning the per-area vector
        // every tick.
        let Marketplace {
            city, cfg, drivers, surge, truth, rng_drive, idle_index, drift_scratch, ..
        } = self;
        let city: &CityModel = city;
        let base: &[f64] = &surge.current().base;

        for (i, d) in drivers.iter_mut().enumerate() {
            let state = d.state;
            match state {
                DriverState::Offline => continue,
                DriverState::EnRoute { pickup, dropoff } => {
                    if d.advance_towards(pickup, step) {
                        d.state = DriverState::OnTrip { dropoff };
                        d.trip_started = Some(t);
                    }
                }
                DriverState::OnTrip { dropoff } => {
                    if d.advance_towards(dropoff, step) {
                        Self::complete_trip(city, truth, d, t);
                        Self::idle_grid_mut(idle_index, d.car_type)
                            .insert(i as u32, d.position);
                    }
                }
                DriverState::Idle => {
                    let old = d.position;
                    Self::idle_drift(city, cfg, rng_drive, d, idle_step, base, drift_scratch);
                    if d.position != old {
                        Self::idle_grid_mut(idle_index, d.car_type)
                            .update(i as u32, old, d.position);
                    }
                }
            }
            // Record the position into the public path trace. The driver
            // owns its path unless a snapshot from the *previous* tick is
            // still alive, so this is an in-place push in steady state.
            let ll = city.projection.to_latlng(d.position);
            Arc::make_mut(&mut d.path).push(ll);
        }
    }

    fn complete_trip(city: &CityModel, truth: &mut GroundTruth, d: &mut Driver, t: SimTime) {
        d.state = DriverState::Idle;
        d.waypoint = None;
        d.dwell_ticks = 0;
        if let (Some(idx), Some(started)) = (d.trip_idx, d.trip_started) {
            let duration = t.since(started).as_secs() as f64;
            let rec = &mut truth.trips[idx];
            let schedule = city.fare_schedule(rec.car_type);
            rec.fare = Some(schedule.fare(rec.distance_m, duration, rec.surge.max(1.0)));
        }
        d.trip_idx = None;
        d.trip_started = None;
    }

    fn idle_drift(
        city: &CityModel,
        cfg: &MarketplaceConfig,
        rng_drive: &mut SimRng,
        d: &mut Driver,
        step: f64,
        base: &[f64],
        scratch: &mut Vec<AreaId>,
    ) {
        // Pick (or re-pick) a waypoint when none is active.
        if d.waypoint.is_none() {
            if d.dwell_ticks > 0 {
                d.dwell_ticks -= 1;
                return;
            }
            let here = city.area_of(d.position);
            let mut target = None;
            // Weak flocking toward a clearly-surging adjacent area.
            if let Some(a) = here {
                if rng_drive.chance(cfg.reposition_prob) {
                    let my_m = base.get(a.0).copied().unwrap_or(1.0);
                    scratch.clear();
                    scratch.extend(
                        city.adjacency[a.0]
                            .iter()
                            .copied()
                            .filter(|n| base.get(n.0).copied().unwrap_or(1.0) >= my_m + 0.2),
                    );
                    if let Some(dest) = rng_drive.choose(scratch).copied() {
                        let poly = &city.areas[dest.0].polygon;
                        let bb = poly.bbox();
                        for _ in 0..16 {
                            let p = Meters::new(
                                rng_drive.range_f64(bb.min.x, bb.max.x),
                                rng_drive.range_f64(bb.min.y, bb.max.y),
                            );
                            if poly.contains(p) && city.service_region.contains(p) {
                                target = Some(p);
                                break;
                            }
                        }
                    }
                }
            }
            let target =
                target.unwrap_or_else(|| city.sample_point(rng_drive, cfg.hotspot_bias));
            d.waypoint = Some(target);
        }
        if let Some(w) = d.waypoint {
            if d.advance_towards(w, step) {
                d.waypoint = None;
                // Dwell 0–5 minutes at the destination.
                d.dwell_ticks = rng_drive.range_u64(0, 60) as u32;
            }
        }
    }

    // ---- accounting ---------------------------------------------------------

    fn accumulate(&mut self, t: SimTime, dt: u64) {
        let dtf = dt as f64;
        for d in &self.drivers {
            if !d.state.is_online() {
                continue;
            }
            if let Some(a) = self.city.area_of(d.position) {
                self.acc[a.0].online_ticks += dtf;
                if d.state.is_visible() {
                    self.acc[a.0].idle_ticks += dtf;
                }
                self.surge.accumulate(a, dtf, if d.state.is_busy() { dtf } else { 0.0 });
            }
        }
        // Sample EWT at each area centroid once per tick (matches the
        // cadence at which the engine would observe wait times).
        for ai in 0..self.city.area_count() {
            let centroid = self.city.areas[ai].polygon.centroid();
            let ewt = self.ewt_minutes(centroid, CarType::UberX);
            self.surge.record_ewt(AreaId(ai), ewt);
            self.acc[ai].ewt_sum_min += ewt;
            self.acc[ai].ewt_samples += 1;
        }
        let _ = t;
    }

    fn close_interval(&mut self) {
        let closed_interval = self.now.surge_interval() - 1;
        // The multipliers that were in force during the interval we are
        // closing (recompute replaces them, so snapshot first) — one
        // snapshot serves every area record below.
        let in_force = crate::surge::SurgeSnapshot {
            interval: closed_interval,
            base: self.surge.current().base.clone(),
        };
        self.surge.recompute(self.now);
        let ticks_per_interval = (300 / self.cfg.tick_secs) as f64;
        for (ai, a) in self.acc.iter().enumerate() {
            self.truth.intervals.push(IntervalStats {
                interval: closed_interval,
                area: ai,
                supply: a.online_ticks / self.cfg.tick_secs as f64 / ticks_per_interval,
                idle_supply: a.idle_ticks / self.cfg.tick_secs as f64 / ticks_per_interval,
                requests: a.requests,
                pickups: a.pickups,
                priced_out: a.priced_out,
                unserved: a.unserved,
                mean_ewt_min: if a.ewt_samples > 0 {
                    a.ewt_sum_min / a.ewt_samples as f64
                } else {
                    0.0
                },
                surge: in_force.multiplier(AreaId(ai), CarType::UberX),
            });
        }
        for a in &mut self.acc {
            *a = AreaAccum::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_city::CityModel;

    fn small_city() -> CityModel {
        // Shrink Manhattan's fleet/demand for fast unit tests.
        let mut c = CityModel::manhattan_midtown();
        c.supply = c.supply.scaled(0.3);
        c.demand = c.demand.scaled(0.3);
        c
    }

    fn world() -> Marketplace {
        Marketplace::new(small_city(), MarketplaceConfig::default(), 1234)
    }

    #[test]
    fn supply_converges_to_target() {
        let mut w = world();
        w.run_for(SimDuration::hours(1));
        let target = w.city().supply.target_online(w.now());
        let online = w.online_count();
        let diff = (online as f64 - target as f64).abs();
        assert!(
            diff <= (target as f64 * 0.35).max(8.0),
            "online {online} vs target {target}"
        );
    }

    #[test]
    fn trips_happen_and_complete() {
        let mut w = world();
        w.run_for(SimDuration::hours(2));
        let trips = &w.truth().trips;
        assert!(!trips.is_empty(), "no trips in 2 busy hours");
        let completed = trips.iter().filter(|t| t.fare.is_some()).count();
        assert!(completed > 0, "no trip completed");
        for t in trips.iter().filter(|t| t.fare.is_some()) {
            assert!(t.fare.unwrap() > 0.0);
            assert!(t.surge >= 1.0);
        }
    }

    #[test]
    fn interval_stats_recorded_every_five_minutes() {
        let mut w = world();
        w.run_for(SimDuration::mins(30));
        let per_area = 30 / 5;
        assert_eq!(w.truth().intervals.len(), per_area * w.city().area_count());
        // Interval indices must be consecutive.
        let mut intervals: Vec<u64> = w.truth().intervals.iter().map(|s| s.interval).collect();
        intervals.dedup();
        assert_eq!(intervals, (0..per_area as u64).collect::<Vec<_>>());
    }

    #[test]
    fn save_restore_continues_bit_identically() {
        // Run 40 minutes, checkpoint, run both worlds 40 more minutes:
        // every downstream observable must match bit-for-bit.
        let mut a = world();
        a.run_for(SimDuration::mins(40));
        let state = a.save_state();
        let mut b = Marketplace::restore_state(
            small_city(),
            MarketplaceConfig::default(),
            &state,
        )
        .expect("restore");
        assert_eq!(b.now(), a.now());
        a.run_for(SimDuration::mins(40));
        b.run_for(SimDuration::mins(40));

        let (va, vb) = (a.visible_cars(), b.visible_cars());
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.session, y.session);
            assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
            assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
        }
        assert_eq!(a.truth().trips.len(), b.truth().trips.len());
        for (x, y) in a.truth().trips.iter().zip(&b.truth().trips) {
            assert_eq!(x.requested_at, y.requested_at);
            assert_eq!(
                x.fare.map(f64::to_bits),
                y.fare.map(f64::to_bits),
                "fares must match bit-for-bit"
            );
            assert_eq!(x.surge.to_bits(), y.surge.to_bits());
        }
        assert_eq!(a.truth().intervals.len(), b.truth().intervals.len());
        assert_eq!(
            a.surge_engine().current().base.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            b.surge_engine().current().base.iter().map(|m| m.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn visible_cars_are_idle_only() {
        let mut w = world();
        w.run_for(SimDuration::mins(30));
        let visible = w.visible_cars();
        assert!(!visible.is_empty());
        // Every visible car carries a session ID and a path.
        for c in &visible {
            assert!(c.session.0 > 0);
            assert!(!c.path.is_empty());
        }
        // Visible count is at most online count.
        assert!(visible.len() <= w.online_count());
    }

    #[test]
    fn ewt_reasonable_when_supply_exists() {
        let mut w = world();
        w.run_for(SimDuration::hours(1));
        let center = w.city().measurement_region.centroid();
        let ewt = w.ewt_minutes(center, CarType::UberX);
        assert!(ewt >= 1.0 && ewt <= w.config().default_ewt_min, "ewt {ewt}");
    }

    #[test]
    fn ewt_default_for_missing_tier() {
        let w = world(); // nothing online yet
        let center = w.city().measurement_region.centroid();
        assert_eq!(w.ewt_minutes(center, CarType::UberWav), w.config().default_ewt_min);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut w = Marketplace::new(small_city(), MarketplaceConfig::default(), 99);
            w.run_for(SimDuration::mins(45));
            let trips = w.truth().trips.len();
            let sessions = w.truth().sessions_started;
            let surge: Vec<f64> = w.truth().intervals.iter().map(|s| s.surge).collect();
            (trips, sessions, surge)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut w = Marketplace::new(small_city(), MarketplaceConfig::default(), seed);
            w.run_for(SimDuration::mins(45));
            w.truth().trips.len()
        };
        // Demand is Poisson-random; distinct seeds almost surely differ.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn drivers_stay_inside_service_region() {
        let mut w = world();
        w.run_for(SimDuration::hours(1));
        let region = &w.city().service_region;
        for c in w.visible_cars() {
            assert!(
                region.contains(c.position),
                "visible car at {:?} outside service region",
                c.position
            );
        }
    }

    #[test]
    fn diurnal_supply_night_vs_day() {
        let mut w = world();
        // 4 a.m. (trough)
        w.run_for(SimDuration::hours(4));
        let night = w.online_count();
        // noon
        w.run_for(SimDuration::hours(8));
        let noon = w.online_count();
        assert!(noon > night, "noon {noon} should exceed 4am {night}");
    }

    /// The incremental idle index must stay *exactly* the rebuilt one: the
    /// tick loop is itself a long randomized sequence of shift starts/ends,
    /// dispatches, completions and idle moves, so ticking a seeded world
    /// and diffing the live grids against a from-scratch rebuild after
    /// every tick exercises every transition path. Membership and stored
    /// positions (compared as bits) fully determine query answers — both
    /// index flavours break ties by (L1 distance, driver id) — so content
    /// equality implies query equality; a brute-force probe check on top
    /// guards the ring search itself.
    #[test]
    fn incremental_idle_index_matches_fresh_rebuild() {
        for seed in [7u64, 99, 31337] {
            let mut w = Marketplace::new(small_city(), MarketplaceConfig::default(), seed);
            let probes = [
                w.city().measurement_region.centroid(),
                w.city().service_region.bbox().min,
                w.city().service_region.bbox().max,
            ];
            for tick in 0..720u64 {
                w.tick();
                // Expected contents: visible drivers by tier, from scratch.
                for (t, g) in w.idle_index() {
                    let mut expect: Vec<(u32, (u64, u64))> = w
                        .drivers
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.car_type == *t && d.state.is_visible())
                        .map(|(i, d)| {
                            (i as u32, (d.position.x.to_bits(), d.position.y.to_bits()))
                        })
                        .collect();
                    expect.sort_unstable();
                    let mut got: Vec<(u32, (u64, u64))> = g
                        .items()
                        .map(|(i, p)| (i, (p.x.to_bits(), p.y.to_bits())))
                        .collect();
                    got.sort_unstable();
                    assert_eq!(got, expect, "tier {t:?} diverged at tick {tick} (seed {seed})");
                    for pos in probes {
                        let brute = w
                            .drivers
                            .iter()
                            .enumerate()
                            .filter(|(_, d)| d.car_type == *t && d.state.is_visible())
                            .map(|(i, d)| {
                                (i, (d.position.x - pos.x).abs() + (d.position.y - pos.y).abs())
                            })
                            .fold(None::<(usize, f64)>, |best, (i, dist)| {
                                match best {
                                    Some((_, bd)) if bd <= dist => best,
                                    _ => Some((i, dist)),
                                }
                            });
                        assert_eq!(
                            g.nearest_l1(pos).map(|(i, d)| (i as usize, d.to_bits())),
                            brute.map(|(i, d)| (i, d.to_bits())),
                            "nearest mismatch at tick {tick} (seed {seed})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sessions_restart_with_fresh_ids() {
        let mut w = world();
        w.run_for(SimDuration::hours(6));
        assert!(
            w.truth().sessions_started as usize > w.online_count(),
            "shift churn should have started more sessions than are concurrently online"
        );
    }
}
