//! The simulated ride-sharing marketplace.
//!
//! This crate is the stand-in for the black-box service the paper audits.
//! It is a full agent-based marketplace:
//!
//! * [`Driver`]s follow a shift schedule, drift toward demand hotspots
//!   while idle, weakly reposition toward surging areas, and serve trips
//!   end-to-end (en-route → pickup → dropoff);
//! * riders arrive as an inhomogeneous Poisson process shaped by the
//!   city's [`DemandProfile`](surgescope_city::DemandProfile), are
//!   price-elastic (surge suppresses conversion; some riders wait out the
//!   surge and retry), and are matched to the nearest idle driver;
//! * the [`SurgeEngine`] recomputes one multiplier per surge area on the
//!   paper's 5-minute clock from the previous window's utilisation and
//!   wait times, quantized to 0.1 steps;
//! * every quantity the paper could not see — true supply, true fulfilled
//!   demand, true requested demand — is recorded per interval as ground
//!   truth ([`IntervalStats`]), so the measurement toolkit's estimates can
//!   be scored exactly.
//!
//! The externally visible protocol (nearest-8 cars, randomized session
//! IDs, the jitter bug) lives one layer up in `surgescope-api`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod metrics;
mod surge;
mod world;

pub use driver::{Driver, DriverId, DriverState, SessionId};
pub use metrics::{GroundTruth, IntervalStats, TickTimers, TripRecord};
pub use surge::{SurgeEngine, SurgePolicy, SurgeSnapshot};
pub use world::{Marketplace, MarketplaceConfig, VisibleCar};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use surgescope_city::{CarType, CityModel};
    use surgescope_geo::Meters;
    use surgescope_simcore::{SimDuration, SimRng, SimTime};

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        #[test]
        fn driver_reaches_any_target(tx in -500.0f64..500.0, ty in -500.0f64..500.0,
                                     step in 1.0f64..200.0) {
            let mut d = Driver::new(DriverId(0), CarType::UberX, Meters::new(0.0, 0.0));
            let target = Meters::new(tx, ty);
            let l1 = tx.abs() + ty.abs();
            let max_steps = (l1 / step).ceil() as u32 + 2;
            let mut steps = 0;
            while !d.advance_towards(target, step) {
                steps += 1;
                prop_assert!(steps <= max_steps, "did not converge in {max_steps} steps");
            }
            prop_assert_eq!(d.position, target);
        }

        #[test]
        fn world_invariants_hold_over_time(seed in 0u64..50) {
            let mut c = CityModel::manhattan_midtown();
            c.supply = c.supply.scaled(0.15);
            c.demand = c.demand.scaled(0.15);
            let mut w = Marketplace::new(c, MarketplaceConfig::default(), seed);
            w.run_for(SimDuration::mins(90));
            // Visible ⊆ online; multipliers quantized and within caps.
            prop_assert!(w.visible_cars().len() <= w.online_count());
            for s in &w.truth().intervals {
                prop_assert!(s.surge >= 1.0);
                prop_assert!(s.surge <= w.city().surge_tuning.max_multiplier + 1e-9);
                let tenths = s.surge * 10.0;
                prop_assert!((tenths - tenths.round()).abs() < 1e-6, "unquantized {}", s.surge);
                prop_assert!(s.pickups <= s.requests, "more pickups than requests");
                prop_assert!(s.idle_supply <= s.supply + 1e-9);
            }
            // Completed fares positive; surged fares carry their multiplier.
            for t in w.truth().trips.iter().filter(|t| t.fare.is_some()) {
                prop_assert!(t.fare.unwrap() > 0.0);
                prop_assert!(t.surge >= 1.0);
            }
        }

        #[test]
        fn observed_sessions_bounded_by_sessions_started(seed in 0u64..30) {
            // Every public ID a client could ever observe corresponds to
            // one started driver session (IDs persist across bookings
            // within a session, so the observed-distinct count can never
            // exceed the session count).
            let mut c = CityModel::manhattan_midtown();
            c.supply = c.supply.scaled(0.15);
            c.demand = c.demand.scaled(0.15);
            let mut w = Marketplace::new(c, MarketplaceConfig::default(), seed);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..12 {
                w.run_for(SimDuration::mins(10));
                for v in w.visible_cars() {
                    prop_assert!(v.session.0 != 0, "session id zero is reserved");
                    seen.insert(v.session.0);
                }
            }
            prop_assert!(
                seen.len() as u64 <= w.truth().sessions_started,
                "observed {} ids but only {} sessions started",
                seen.len(),
                w.truth().sessions_started
            );
        }

        #[test]
        fn surge_engine_rejects_nothing_reasonable(online in 0.0f64..10_000.0,
                                                   busy_frac in 0.0f64..1.0,
                                                   ewt in 0.0f64..60.0,
                                                   reqs in 0u32..100) {
            use surgescope_city::{AreaId, SurgeTuning};
            let mut e = SurgeEngine::new(1, SurgeTuning::default_test(), SimRng::seed_from_u64(1));
            e.accumulate(AreaId(0), online, online * busy_frac);
            e.record_ewt(AreaId(0), ewt);
            for _ in 0..reqs {
                e.record_request(AreaId(0));
            }
            e.recompute(SimTime(300));
            let m = e.multiplier(AreaId(0), CarType::UberX);
            prop_assert!(m >= 1.0 && m <= SurgeTuning::default_test().max_multiplier + 1e-9);
        }
    }
}
