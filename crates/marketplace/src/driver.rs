//! Driver agents.
//!
//! A driver is a small state machine (§2 of the paper, driver's
//! perspective):
//!
//! ```text
//! Offline ──come online──▶ Idle ──dispatch──▶ EnRoute ──pickup──▶ OnTrip
//!    ▲                      │ ▲                                      │
//!    └──────end shift───────┘ └──────────────dropoff─────────────────┘
//! ```
//!
//! Two facts about identity matter for the measurement methodology:
//! the *internal* [`DriverId`] is stable for the life of the simulation
//! (ground truth can track individuals), while the *public* [`SessionId`]
//! shown in pingClient responses is re-randomized every time the driver
//! comes online — exactly the behaviour that prevents the paper's clients
//! from tracking drivers over time (§3.3, limitation 4).

use serde::{Deserialize, Error, Serialize, Value};
use std::sync::Arc;
use surgescope_city::CarType;
use surgescope_geo::{Meters, PathVector};
use surgescope_simcore::{SimRng, SimTime};

/// Stable internal driver identifier. Never exposed through the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DriverId(pub u32);

/// Public per-online-session identifier, randomized at each online
/// transition (the protocol's car "ID").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

/// The driver's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriverState {
    /// Not on the road; invisible to everyone.
    Offline,
    /// On the road, waiting for a dispatch; visible in the client app.
    Idle,
    /// Dispatched, driving to a pickup at the given point. Invisible
    /// (booked cars disappear from the client app — the basis of the
    /// paper's demand estimator).
    EnRoute {
        /// Pickup location.
        pickup: Meters,
        /// Where the trip will end, carried through to `OnTrip`.
        dropoff: Meters,
    },
    /// Carrying a passenger toward the dropoff point. Invisible.
    OnTrip {
        /// Trip destination.
        dropoff: Meters,
    },
}

impl DriverState {
    /// Visible in pingClient responses (only idle cars are shown).
    pub fn is_visible(&self) -> bool {
        matches!(self, DriverState::Idle)
    }

    /// On the road in any state (counts toward true supply).
    pub fn is_online(&self) -> bool {
        !matches!(self, DriverState::Offline)
    }

    /// Currently serving a request (en-route or on trip).
    pub fn is_busy(&self) -> bool {
        matches!(self, DriverState::EnRoute { .. } | DriverState::OnTrip { .. })
    }
}

impl Serialize for DriverState {
    fn to_value(&self) -> Value {
        // Data-carrying enum: the derive stub only handles unit variants,
        // so encode as {"k": variant, ...payload fields}.
        match self {
            DriverState::Offline => Value::Map(vec![("k".into(), "Offline".to_value())]),
            DriverState::Idle => Value::Map(vec![("k".into(), "Idle".to_value())]),
            DriverState::EnRoute { pickup, dropoff } => Value::Map(vec![
                ("k".into(), "EnRoute".to_value()),
                ("pickup".into(), pickup.to_value()),
                ("dropoff".into(), dropoff.to_value()),
            ]),
            DriverState::OnTrip { dropoff } => Value::Map(vec![
                ("k".into(), "OnTrip".to_value()),
                ("dropoff".into(), dropoff.to_value()),
            ]),
        }
    }
}

impl Deserialize for DriverState {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match String::from_value(v.field("k")?)?.as_str() {
            "Offline" => Ok(DriverState::Offline),
            "Idle" => Ok(DriverState::Idle),
            "EnRoute" => Ok(DriverState::EnRoute {
                pickup: Meters::from_value(v.field("pickup")?)?,
                dropoff: Meters::from_value(v.field("dropoff")?)?,
            }),
            "OnTrip" => Ok(DriverState::OnTrip {
                dropoff: Meters::from_value(v.field("dropoff")?)?,
            }),
            other => Err(Error::custom(format!("unknown driver state `{other}`"))),
        }
    }
}

/// A driver agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Driver {
    /// Stable internal identity.
    pub id: DriverId,
    /// Product tier this driver serves.
    pub car_type: CarType,
    /// Lifecycle state.
    pub state: DriverState,
    /// Current position (planar frame).
    pub position: Meters,
    /// Public ID for the current online session (None while offline).
    pub session: Option<SessionId>,
    /// Recent positions, as exposed in pingClient responses. Behind an
    /// `Arc` so per-tick snapshots share the trace instead of deep-cloning
    /// the ring buffer; the world pushes through `Arc::make_mut`, which is
    /// an in-place write whenever no snapshot still holds the handle.
    pub path: Arc<PathVector>,
    /// Where this driver is drifting toward while idle.
    pub waypoint: Option<Meters>,
    /// When the current online session started (for shift bookkeeping).
    pub online_since: Option<SimTime>,
    /// Ticks remaining to pause at the current waypoint before choosing a
    /// new one (idle drivers dwell near hotspots rather than circling).
    pub dwell_ticks: u32,
    /// Index of the in-flight trip in the ground-truth log, if any.
    pub trip_idx: Option<usize>,
    /// When the passenger was picked up (fare needs the trip duration).
    pub trip_started: Option<SimTime>,
    /// Maximum shift length for the current session; idle drivers past
    /// this go home even when supply is short (drives the lifespan
    /// distributions of Fig. 7).
    pub shift_secs: u64,
}

/// Capacity of the path vector in protocol responses (recent ~40 s of
/// movement at one point per 5-second ping).
pub const PATH_CAPACITY: usize = 8;

impl Driver {
    /// Creates an offline driver of the given tier parked at `position`.
    pub fn new(id: DriverId, car_type: CarType, position: Meters) -> Self {
        Driver {
            id,
            car_type,
            state: DriverState::Offline,
            position,
            session: None,
            path: Arc::new(PathVector::new(PATH_CAPACITY)),
            waypoint: None,
            online_since: None,
            dwell_ticks: 0,
            trip_idx: None,
            trip_started: None,
            shift_secs: 0,
        }
    }

    /// Brings the driver online at `position`, minting a fresh session ID
    /// from `rng` (IDs are randomized each time a car comes online).
    pub fn come_online(&mut self, position: Meters, now: SimTime, rng: &mut SimRng) {
        debug_assert!(!self.state.is_online(), "driver already online");
        self.state = DriverState::Idle;
        self.position = position;
        self.session = Some(SessionId(rng.range_u64(1, u64::MAX)));
        self.path = Arc::new(PathVector::new(PATH_CAPACITY));
        self.waypoint = None;
        self.online_since = Some(now);
        self.dwell_ticks = 0;
        self.trip_idx = None;
        self.trip_started = None;
    }

    /// Takes the driver off the road. Only legal while idle — busy drivers
    /// finish their trip first (the world enforces this).
    pub fn go_offline(&mut self) {
        debug_assert!(
            matches!(self.state, DriverState::Idle),
            "only idle drivers go offline"
        );
        self.state = DriverState::Offline;
        self.session = None;
        self.waypoint = None;
        self.online_since = None;
    }

    /// Accepts a dispatch to `pickup` with eventual `dropoff`.
    pub fn dispatch(&mut self, pickup: Meters, dropoff: Meters) {
        debug_assert!(matches!(self.state, DriverState::Idle), "dispatching non-idle driver");
        self.state = DriverState::EnRoute { pickup, dropoff };
        self.waypoint = None;
    }

    /// Advances the driver `max_step_m` metres toward `target` along a
    /// rectilinear (x-then-y) street path. Returns `true` when the target
    /// is reached within this step.
    pub fn advance_towards(&mut self, target: Meters, max_step_m: f64) -> bool {
        let mut budget = max_step_m;
        // East-west leg first.
        let dx = target.x - self.position.x;
        if dx.abs() > 0.0 {
            let step = dx.abs().min(budget);
            self.position.x += step * dx.signum();
            budget -= step;
        }
        if budget > 0.0 {
            let dy = target.y - self.position.y;
            if dy.abs() > 0.0 {
                let step = dy.abs().min(budget);
                self.position.y += step * dy.signum();
                budget -= step;
            }
        }
        let _ = budget;
        self.position.x == target.x && self.position.y == target.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Driver {
        Driver::new(DriverId(1), CarType::UberX, Meters::new(0.0, 0.0))
    }

    #[test]
    fn initial_state_offline_invisible() {
        let d = mk();
        assert_eq!(d.state, DriverState::Offline);
        assert!(!d.state.is_visible());
        assert!(!d.state.is_online());
        assert!(d.session.is_none());
    }

    #[test]
    fn online_transition_mints_session() {
        let mut d = mk();
        let mut rng = SimRng::seed_from_u64(1);
        d.come_online(Meters::new(10.0, 10.0), SimTime(100), &mut rng);
        assert!(d.state.is_visible());
        assert!(d.session.is_some());
        assert_eq!(d.online_since, Some(SimTime(100)));
    }

    #[test]
    fn session_id_randomized_each_online_period() {
        let mut d = mk();
        let mut rng = SimRng::seed_from_u64(2);
        d.come_online(Meters::new(0.0, 0.0), SimTime(0), &mut rng);
        let s1 = d.session.unwrap();
        d.go_offline();
        d.come_online(Meters::new(0.0, 0.0), SimTime(500), &mut rng);
        let s2 = d.session.unwrap();
        assert_ne!(s1, s2, "session IDs must be re-randomized");
    }

    #[test]
    fn busy_states_invisible_but_online() {
        let mut d = mk();
        let mut rng = SimRng::seed_from_u64(3);
        d.come_online(Meters::new(0.0, 0.0), SimTime(0), &mut rng);
        d.dispatch(Meters::new(100.0, 0.0), Meters::new(500.0, 500.0));
        assert!(d.state.is_busy());
        assert!(d.state.is_online());
        assert!(!d.state.is_visible(), "booked cars disappear from the app");
    }

    #[test]
    fn rectilinear_advance_x_before_y() {
        let mut d = mk();
        let target = Meters::new(30.0, 40.0);
        // First step only moves along x.
        assert!(!d.advance_towards(target, 20.0));
        assert_eq!(d.position, Meters::new(20.0, 0.0));
        // Second step finishes x (10) and spends 10 on y.
        assert!(!d.advance_towards(target, 20.0));
        assert_eq!(d.position, Meters::new(30.0, 10.0));
        // Big final step reaches exactly the target.
        assert!(d.advance_towards(target, 100.0));
        assert_eq!(d.position, target);
    }

    #[test]
    fn advance_total_distance_is_l1() {
        let mut d = mk();
        let target = Meters::new(-25.0, 35.0);
        let mut steps = 0;
        while !d.advance_towards(target, 10.0) {
            steps += 1;
            assert!(steps < 100, "failed to converge");
        }
        // L1 distance 60 at 10 m per step → exactly 6 steps (last one lands).
        assert_eq!(steps + 1, 6);
    }

    #[test]
    fn driver_serde_round_trip_bit_exact() {
        let mut d = mk();
        let mut rng = SimRng::seed_from_u64(5);
        d.come_online(Meters::new(12.5, -7.25), SimTime(3600), &mut rng);
        Arc::make_mut(&mut d.path).push(surgescope_geo::LatLng::new(40.75, -73.98));
        d.dispatch(Meters::new(100.0, 0.0), Meters::new(500.0, 500.0));
        d.trip_idx = Some(3);
        d.shift_secs = 14_400;
        let v = d.to_value();
        let r = Driver::from_value(&v).expect("round trip");
        assert_eq!(r.id, d.id);
        assert_eq!(r.state, d.state);
        assert_eq!(r.position.x.to_bits(), d.position.x.to_bits());
        assert_eq!(r.session, d.session);
        assert_eq!(
            r.path.points().collect::<Vec<_>>(),
            d.path.points().collect::<Vec<_>>()
        );
        assert_eq!(r.trip_idx, d.trip_idx);
        assert_eq!(r.shift_secs, d.shift_secs);
        for state in [
            DriverState::Offline,
            DriverState::Idle,
            DriverState::OnTrip { dropoff: Meters::new(1.0, 2.0) },
        ] {
            let back = DriverState::from_value(&state.to_value()).unwrap();
            assert_eq!(back, state);
        }
    }

    #[test]
    fn path_vector_bounded() {
        let mut d = mk();
        for i in 0..20 {
            Arc::make_mut(&mut d.path)
                .push(surgescope_geo::LatLng::new(40.0, -73.0 + i as f64 * 0.001));
        }
        assert_eq!(d.path.len(), PATH_CAPACITY);
    }
}
