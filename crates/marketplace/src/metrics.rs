//! Ground-truth recording.
//!
//! The paper's central difficulty is that Uber publishes *none* of the
//! quantities under study; every number must be inferred through the
//! client protocol. Our simulator has no such constraint: the world
//! records, per 5-minute interval and per surge area, the true supply,
//! true requested demand, true fulfilled demand, mean EWT and the
//! multiplier in force. The measurement toolkit's estimators are scored
//! against these records (validation à la §3.5), and the correlation /
//! regression experiments can be run against both measured and true
//! series.

use serde::{Deserialize, Serialize};
use surgescope_city::CarType;
use surgescope_obs::{MetricsRegistry, Timer};
use surgescope_simcore::SimTime;

/// Wall-clock timers for the marketplace tick phases, one [`Timer`] per
/// phase of [`Marketplace::tick`](crate::Marketplace::tick)'s fixed
/// order. Always live (two `Instant::now` calls per phase per tick, no
/// allocation); campaigns that want them in a snapshot register them via
/// [`TickTimers::register`]. Wall time lands in the snapshot's *timing*
/// section — it is never part of the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct TickTimers {
    /// Shift management, priced-out retries and fresh demand generation.
    pub dispatch: Timer,
    /// Driver movement (trips, cruising, repositioning).
    pub mv: Timer,
    /// Per-area interval accounting.
    pub accumulate: Timer,
    /// Surge-interval close (multiplier recomputation; every 60th tick).
    pub surge: Timer,
}

impl TickTimers {
    /// Adopts every phase timer into `reg` under `phase.*` names.
    pub fn register(&self, reg: &MetricsRegistry) {
        reg.adopt_timer("phase.dispatch", &self.dispatch);
        reg.adopt_timer("phase.move", &self.mv);
        reg.adopt_timer("phase.accumulate", &self.accumulate);
        reg.adopt_timer("phase.surge", &self.surge);
    }
}

/// True per-area statistics for one 5-minute interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Interval index (`SimTime::surge_interval`).
    pub interval: u64,
    /// Surge area (index).
    pub area: usize,
    /// Mean number of online drivers (all tiers) in the area over the
    /// interval.
    pub supply: f64,
    /// Mean number of *visible* (idle) drivers.
    pub idle_supply: f64,
    /// Ride requests submitted with pickups in the area.
    pub requests: u32,
    /// Requests that resulted in a pickup (true fulfilled demand).
    pub pickups: u32,
    /// Requests abandoned because of price (surge elasticity).
    pub priced_out: u32,
    /// Requests unmet for lack of nearby supply.
    pub unserved: u32,
    /// Mean EWT for UberX sampled at the area centroid, minutes.
    pub mean_ewt_min: f64,
    /// UberX multiplier in force during the interval.
    pub surge: f64,
}

/// One completed (or in-progress) trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripRecord {
    /// When the request was accepted.
    pub requested_at: SimTime,
    /// Tier served.
    pub car_type: CarType,
    /// Surge multiplier applied to the fare.
    pub surge: f64,
    /// Pickup surge area.
    pub pickup_area: usize,
    /// Straight-line trip distance, metres.
    pub distance_m: f64,
    /// Fare charged, dollars (None until the trip completes).
    pub fare: Option<f64>,
}

/// Accumulated ground truth for one simulated city.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Closed per-interval, per-area records in chronological order.
    pub intervals: Vec<IntervalStats>,
    /// Every accepted trip.
    pub trips: Vec<TripRecord>,
    /// Total unique driver online-sessions started.
    pub sessions_started: u64,
}

impl GroundTruth {
    /// All records for one area, in order.
    pub fn area_series(&self, area: usize) -> impl Iterator<Item = &IntervalStats> {
        self.intervals.iter().filter(move |s| s.area == area)
    }

    /// Sum of pickups across areas per interval index.
    pub fn pickups_by_interval(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = Vec::new();
        for s in &self.intervals {
            match out.last_mut() {
                Some((i, c)) if *i == s.interval => *c += s.pickups,
                _ => out.push((s.interval, s.pickups)),
            }
        }
        out
    }

    /// Fraction of intervals (area-wise) with surge > 1.
    pub fn surge_fraction(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let surged = self.intervals.iter().filter(|s| s.surge > 1.0).count();
        surged as f64 / self.intervals.len() as f64
    }

    /// Mean multiplier over all area-intervals.
    pub fn mean_surge(&self) -> f64 {
        if self.intervals.is_empty() {
            return 1.0;
        }
        self.intervals.iter().map(|s| s.surge).sum::<f64>() / self.intervals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(interval: u64, area: usize, surge: f64, pickups: u32) -> IntervalStats {
        IntervalStats {
            interval,
            area,
            supply: 10.0,
            idle_supply: 6.0,
            requests: pickups + 2,
            pickups,
            priced_out: 1,
            unserved: 1,
            mean_ewt_min: 3.0,
            surge,
        }
    }

    #[test]
    fn area_series_filters() {
        let gt = GroundTruth {
            intervals: vec![stat(0, 0, 1.0, 5), stat(0, 1, 1.5, 3), stat(1, 0, 1.2, 4)],
            ..Default::default()
        };
        let a0: Vec<_> = gt.area_series(0).map(|s| s.interval).collect();
        assert_eq!(a0, vec![0, 1]);
    }

    #[test]
    fn pickups_aggregate_across_areas() {
        let gt = GroundTruth {
            intervals: vec![stat(0, 0, 1.0, 5), stat(0, 1, 1.0, 3), stat(1, 0, 1.0, 2)],
            ..Default::default()
        };
        assert_eq!(gt.pickups_by_interval(), vec![(0, 8), (1, 2)]);
    }

    #[test]
    fn surge_statistics() {
        let gt = GroundTruth {
            intervals: vec![stat(0, 0, 1.0, 1), stat(1, 0, 2.0, 1), stat(2, 0, 1.5, 1), stat(3, 0, 1.0, 1)],
            ..Default::default()
        };
        assert!((gt.surge_fraction() - 0.5).abs() < 1e-12);
        assert!((gt.mean_surge() - 1.375).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_defaults() {
        let gt = GroundTruth::default();
        assert_eq!(gt.surge_fraction(), 0.0);
        assert_eq!(gt.mean_surge(), 1.0);
        assert!(gt.pickups_by_interval().is_empty());
    }
}
