//! The surge-pricing engine.
//!
//! Everything the paper inferred about the algorithm is implemented as
//! ground truth here:
//!
//! * one multiplier per **surge area**, recomputed on a global **5-minute
//!   clock** (§5.2–5.3);
//! * inputs are aggregates over the **previous 5-minute window** — the
//!   paper found surge most correlated with (supply − demand) and EWT at
//!   lag 0 (§5.4), so the engine uses fleet utilisation (busy time over
//!   online time, a normalized supply/demand slack) and mean EWT;
//! * a stochastic excitation term makes episodes short-lived (40% of
//!   surges last one interval, Fig. 13) and caps/quantization match the
//!   app's displayed values (multiples of 0.1, max ≈ 2.8–4.1);
//! * premium tiers surge with a damped amplitude; **UberT never surges**.
//!
//! The engine also retains the *previous* interval's multipliers — the
//! April-2015 consistency bug served exactly those stale values to random
//! clients, and the `api` crate needs them to reproduce it.

use serde::{Deserialize, Error, Serialize, Value};
use std::sync::Arc;
use surgescope_city::{AreaId, CarType, SurgeTuning};
use surgescope_simcore::{SimRng, SimTime};

/// Per-area aggregates accumulated over one 5-minute window by the world.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub(crate) struct AreaWindow {
    /// Driver-seconds spent online in the area.
    pub online_secs: f64,
    /// Driver-seconds spent busy (en-route or on trip) in the area.
    pub busy_secs: f64,
    /// Sum of EWT samples (minutes) taken at the area centroid.
    pub ewt_sum_min: f64,
    /// Number of EWT samples.
    pub ewt_samples: u32,
    /// Ride requests with pickups in the area during the window.
    pub requests: u32,
}

impl AreaWindow {
    fn utilisation(&self) -> f64 {
        if self.online_secs <= 0.0 {
            // No cars at all: strained only if riders actually wanted one
            // (a quiet residential area at 4 a.m. must not surge — the
            // paper verified surge stays at 1 there, §3.4).
            return if self.requests > 0 { 1.0 } else { 0.0 };
        }
        (self.busy_secs / self.online_secs).clamp(0.0, 1.5)
    }

    /// Weight of the EWT term: long waits only matter when riders are
    /// competing for the cars. Ramps 0→1 over the first 5 requests per
    /// window.
    fn demand_weight(&self) -> f64 {
        (self.requests as f64 / 5.0).min(1.0)
    }

    fn mean_ewt_min(&self) -> f64 {
        if self.ewt_samples == 0 {
            return 0.0;
        }
        self.ewt_sum_min / self.ewt_samples as f64
    }
}

/// A read-only view of the multipliers in force during one interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeSnapshot {
    /// The 5-minute interval index these multipliers apply to.
    pub interval: u64,
    /// Base multiplier per area (indexed by `AreaId.0`).
    pub base: Vec<f64>,
}

impl SurgeSnapshot {
    /// Multiplier for a tier in an area. Premium tiers (BLACK/SUV) surge
    /// with 80% of the base amplitude; UberT never surges.
    pub fn multiplier(&self, area: AreaId, car_type: CarType) -> f64 {
        if !car_type.surge_priced() {
            return 1.0;
        }
        let base = self.base.get(area.0).copied().unwrap_or(1.0);
        let damp = match car_type {
            CarType::UberBlack | CarType::UberSuv => 0.8,
            _ => 1.0,
        };
        quantize(1.0 + (base - 1.0) * damp)
    }
}

/// How raw per-window multipliers become the published ones.
///
/// [`SurgePolicy::Threshold`] is what the paper measured: each window's
/// multiplier is published as-is, producing the noisy, short-lived
/// episodes of Fig. 13. [`SurgePolicy::Smoothed`] is the paper's §6/§8
/// *proposal* — "use a weighted moving average to smooth the price
/// changes over time" — implemented as an EMA over the raw multiplier;
/// the `ext01` experiment evaluates what the paper could only suggest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurgePolicy {
    /// Publish each window's raw multiplier directly (measured Uber).
    Threshold,
    /// Exponential moving average with weight `alpha` on the new window
    /// (`alpha = 1` degenerates to `Threshold`).
    Smoothed {
        /// Weight of the newest window in `(0, 1]`.
        alpha: f64,
    },
}

impl Default for SurgePolicy {
    fn default() -> Self {
        SurgePolicy::Threshold
    }
}

impl Serialize for SurgePolicy {
    fn to_value(&self) -> Value {
        match self {
            SurgePolicy::Threshold => {
                Value::Map(vec![("k".into(), "Threshold".to_value())])
            }
            SurgePolicy::Smoothed { alpha } => Value::Map(vec![
                ("k".into(), "Smoothed".to_value()),
                ("alpha".into(), alpha.to_value()),
            ]),
        }
    }
}

impl Deserialize for SurgePolicy {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match String::from_value(v.field("k")?)?.as_str() {
            "Threshold" => Ok(SurgePolicy::Threshold),
            "Smoothed" => Ok(SurgePolicy::Smoothed {
                alpha: f64::from_value(v.field("alpha")?)?,
            }),
            other => Err(Error::custom(format!("unknown surge policy `{other}`"))),
        }
    }
}

/// The per-city surge engine.
///
/// ```
/// use surgescope_marketplace::SurgeEngine;
/// use surgescope_city::{AreaId, CarType, SurgeTuning};
/// use surgescope_simcore::{SimRng, SimTime};
///
/// let mut tuning = SurgeTuning::default_test();
/// tuning.noise_sigma = 0.0;
/// let mut engine = SurgeEngine::new(1, tuning, SimRng::seed_from_u64(1));
/// // A straining 5-minute window: 95% fleet utilisation, riders queuing.
/// engine.accumulate_window(AreaId(0), 1000.0, 950.0, 10, 8.0);
/// engine.recompute(SimTime(300));
/// assert!(engine.multiplier(AreaId(0), CarType::UberX) > 1.5);
/// assert_eq!(engine.multiplier(AreaId(0), CarType::UberT), 1.0); // taxis never surge
/// ```
#[derive(Debug, Clone)]
pub struct SurgeEngine {
    tuning: SurgeTuning,
    policy: SurgePolicy,
    /// Boards are published behind `Arc`s so per-tick world snapshots
    /// share them instead of deep-cloning the base vectors; a published
    /// board is immutable until `recompute` replaces the whole `Arc`.
    current: Arc<SurgeSnapshot>,
    previous: Arc<SurgeSnapshot>,
    windows: Vec<AreaWindow>,
    /// Unquantized EMA state per area (only used by `Smoothed`).
    ema: Vec<f64>,
    rng: SimRng,
}

/// Quantize a multiplier to the 0.1 steps the app displays, flooring
/// anything below 1.05 to exactly 1.
fn quantize(m: f64) -> f64 {
    let q = (m * 10.0).round() / 10.0;
    if q < 1.05 {
        1.0
    } else {
        q
    }
}

impl SurgeEngine {
    /// Creates an engine for `area_count` areas with all multipliers at 1.
    pub fn new(area_count: usize, tuning: SurgeTuning, rng: SimRng) -> Self {
        let flat = Arc::new(SurgeSnapshot { interval: 0, base: vec![1.0; area_count] });
        SurgeEngine {
            tuning,
            policy: SurgePolicy::Threshold,
            current: Arc::clone(&flat),
            previous: flat,
            windows: vec![AreaWindow::default(); area_count],
            ema: vec![1.0; area_count],
            rng,
        }
    }

    /// Replaces the publication policy (builder style).
    pub fn with_policy(mut self, policy: SurgePolicy) -> Self {
        if let SurgePolicy::Smoothed { alpha } = policy {
            assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        }
        self.policy = policy;
        self
    }

    /// The active publication policy.
    pub fn policy(&self) -> SurgePolicy {
        self.policy
    }

    /// The tuning constants this engine runs with.
    pub fn tuning(&self) -> &SurgeTuning {
        &self.tuning
    }

    /// Multipliers currently in force.
    pub fn current(&self) -> &SurgeSnapshot {
        &self.current
    }

    /// The current board's shared handle (snapshots clone the `Arc`, not
    /// the base vector).
    pub fn current_arc(&self) -> Arc<SurgeSnapshot> {
        Arc::clone(&self.current)
    }

    /// Multipliers from the immediately preceding interval (what the
    /// consistency bug leaks to unlucky clients).
    pub fn previous(&self) -> &SurgeSnapshot {
        &self.previous
    }

    /// The previous board's shared handle.
    pub fn previous_arc(&self) -> Arc<SurgeSnapshot> {
        Arc::clone(&self.previous)
    }

    /// Convenience: current multiplier for an area/tier.
    pub fn multiplier(&self, area: AreaId, car_type: CarType) -> f64 {
        self.current.multiplier(area, car_type)
    }

    /// Accumulates one tick's worth of per-area activity into the open
    /// window. Called by the world every tick.
    pub(crate) fn accumulate(
        &mut self,
        area: AreaId,
        online_secs: f64,
        busy_secs: f64,
    ) {
        let w = &mut self.windows[area.0];
        w.online_secs += online_secs;
        w.busy_secs += busy_secs;
    }

    /// Records one ride request with a pickup in `area`.
    pub(crate) fn record_request(&mut self, area: AreaId) {
        self.windows[area.0].requests += 1;
    }

    /// Public convenience for driving the engine outside the marketplace
    /// (tests, docs, custom worlds): accumulates a whole window's worth of
    /// activity in one call.
    pub fn accumulate_window(
        &mut self,
        area: AreaId,
        online_secs: f64,
        busy_secs: f64,
        requests: u32,
        mean_ewt_min: f64,
    ) {
        self.accumulate(area, online_secs, busy_secs);
        for _ in 0..requests {
            self.record_request(area);
        }
        self.record_ewt(area, mean_ewt_min);
    }

    /// Records an EWT sample (minutes) for an area.
    pub(crate) fn record_ewt(&mut self, area: AreaId, ewt_min: f64) {
        let w = &mut self.windows[area.0];
        w.ewt_sum_min += ewt_min;
        w.ewt_samples += 1;
    }

    /// Closes the window and recomputes every area's multiplier. Called by
    /// the world exactly at each 5-minute boundary. Returns the fresh
    /// snapshot.
    pub fn recompute(&mut self, now: SimTime) -> &SurgeSnapshot {
        let t = &self.tuning;
        let mut base = Vec::with_capacity(self.windows.len());
        for (ai, w) in self.windows.iter().enumerate() {
            let util = w.utilisation();
            let ewt = w.mean_ewt_min();
            let mut m = 1.0;
            m += t.utilisation_gain * (util - t.utilisation_threshold).max(0.0);
            m += t.ewt_gain * (ewt - t.ewt_floor_min).max(0.0) * w.demand_weight();
            // Zero-mean excitation: most raw values hover near the
            // threshold, so the noise decides whether a given interval
            // tips over 1.0 — reproducing the paper's finding that the
            // majority of surges last a single interval. Scaled by demand
            // presence so quiet areas cannot surge on noise alone.
            m += self.rng.normal(0.0, t.noise_sigma) * w.demand_weight();
            let m = match self.policy {
                SurgePolicy::Threshold => m,
                SurgePolicy::Smoothed { alpha } => {
                    self.ema[ai] = alpha * m + (1.0 - alpha) * self.ema[ai];
                    self.ema[ai]
                }
            };
            base.push(quantize(m.clamp(1.0, t.max_multiplier)));
        }
        self.previous = std::mem::replace(
            &mut self.current,
            Arc::new(SurgeSnapshot { interval: now.surge_interval(), base }),
        );
        for w in &mut self.windows {
            *w = AreaWindow::default();
        }
        &self.current
    }
}

impl Serialize for SurgeEngine {
    fn to_value(&self) -> Value {
        // Manual impl: the derive stub cannot handle the data-carrying
        // `SurgePolicy` enum nested here. Every field is mutable mid-run
        // state (windows, EMA, RNG) and must round-trip bit-exactly for
        // checkpoint/resume determinism.
        Value::Map(vec![
            ("tuning".into(), self.tuning.to_value()),
            ("policy".into(), self.policy.to_value()),
            ("current".into(), self.current.to_value()),
            ("previous".into(), self.previous.to_value()),
            ("windows".into(), self.windows.to_value()),
            ("ema".into(), self.ema.to_value()),
            ("rng".into(), self.rng.to_value()),
        ])
    }
}

impl Deserialize for SurgeEngine {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(SurgeEngine {
            tuning: SurgeTuning::from_value(v.field("tuning")?)?,
            policy: SurgePolicy::from_value(v.field("policy")?)?,
            current: Arc::new(SurgeSnapshot::from_value(v.field("current")?)?),
            previous: Arc::new(SurgeSnapshot::from_value(v.field("previous")?)?),
            windows: Vec::<AreaWindow>::from_value(v.field("windows")?)?,
            ema: Vec::<f64>::from_value(v.field("ema")?)?,
            rng: SimRng::from_value(v.field("rng")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(areas: usize) -> SurgeEngine {
        let mut tuning = SurgeTuning::default_test();
        tuning.noise_sigma = 0.0; // deterministic for unit tests
        SurgeEngine::new(areas, tuning, SimRng::seed_from_u64(9))
    }

    #[test]
    fn starts_flat() {
        let e = engine(4);
        for a in 0..4 {
            assert_eq!(e.multiplier(AreaId(a), CarType::UberX), 1.0);
        }
    }

    #[test]
    fn low_utilisation_means_no_surge() {
        let mut e = engine(1);
        // 30% utilisation, sub-floor EWT.
        e.accumulate(AreaId(0), 1000.0, 300.0);
        e.record_ewt(AreaId(0), 2.0);
        e.recompute(SimTime(300));
        assert_eq!(e.multiplier(AreaId(0), CarType::UberX), 1.0);
    }

    #[test]
    fn high_utilisation_surges() {
        let mut e = engine(1);
        e.accumulate(AreaId(0), 1000.0, 950.0); // 95% busy
        e.record_ewt(AreaId(0), 8.0);
        for _ in 0..10 {
            e.record_request(AreaId(0));
        }
        e.recompute(SimTime(300));
        let m = e.multiplier(AreaId(0), CarType::UberX);
        // 1 + 2·(0.95−0.7) + 0.15·(8−4) = 2.1
        assert!((m - 2.1).abs() < 1e-9, "got {m}");
    }

    #[test]
    fn empty_area_with_demand_is_strained() {
        let mut e = engine(1);
        // No cars but riders asking: utilisation defaults to 1.
        e.record_request(AreaId(0));
        e.recompute(SimTime(300));
        let m = e.multiplier(AreaId(0), CarType::UberX);
        assert!(m > 1.0, "carless area with demand should surge, got {m}");
    }

    #[test]
    fn empty_quiet_area_stays_flat() {
        let mut e = engine(1);
        // No cars and no riders (residential at 4 a.m.): no surge.
        e.recompute(SimTime(300));
        assert_eq!(e.multiplier(AreaId(0), CarType::UberX), 1.0);
    }

    #[test]
    fn ewt_term_requires_demand() {
        let mut e = engine(1);
        // Long waits but zero requests: EWT contributes nothing.
        e.accumulate(AreaId(0), 1000.0, 100.0);
        e.record_ewt(AreaId(0), 30.0);
        e.recompute(SimTime(300));
        assert_eq!(e.multiplier(AreaId(0), CarType::UberX), 1.0);
    }

    #[test]
    fn multiplier_capped() {
        let mut e = engine(1);
        e.accumulate(AreaId(0), 100.0, 150.0); // util clamped at 1.5
        e.record_ewt(AreaId(0), 60.0);
        for _ in 0..20 {
            e.record_request(AreaId(0));
        }
        e.recompute(SimTime(300));
        assert!(e.multiplier(AreaId(0), CarType::UberX) <= e.tuning().max_multiplier);
    }

    #[test]
    fn quantized_to_tenths() {
        let mut e = engine(1);
        e.accumulate(AreaId(0), 1000.0, 830.0);
        e.recompute(SimTime(300));
        let m = e.multiplier(AreaId(0), CarType::UberX);
        assert!((m * 10.0 - (m * 10.0).round()).abs() < 1e-9, "not quantized: {m}");
    }

    #[test]
    fn premium_tiers_damped_ubert_flat() {
        let mut e = engine(1);
        e.accumulate(AreaId(0), 1000.0, 1000.0);
        e.record_ewt(AreaId(0), 10.0);
        for _ in 0..10 {
            e.record_request(AreaId(0));
        }
        e.recompute(SimTime(300));
        let x = e.multiplier(AreaId(0), CarType::UberX);
        let black = e.multiplier(AreaId(0), CarType::UberBlack);
        let t = e.multiplier(AreaId(0), CarType::UberT);
        assert!(x > black, "premium should be damped: X={x} BLACK={black}");
        assert!(black > 1.0);
        assert_eq!(t, 1.0, "UberT never surges");
    }

    #[test]
    fn previous_snapshot_retained() {
        let mut e = engine(1);
        e.accumulate(AreaId(0), 1000.0, 950.0);
        e.record_ewt(AreaId(0), 8.0);
        for _ in 0..10 {
            e.record_request(AreaId(0));
        }
        e.recompute(SimTime(300));
        let first = e.multiplier(AreaId(0), CarType::UberX);
        // Quiet window follows.
        e.accumulate(AreaId(0), 1000.0, 100.0);
        e.record_ewt(AreaId(0), 2.0);
        e.recompute(SimTime(600));
        assert_eq!(e.multiplier(AreaId(0), CarType::UberX), 1.0);
        assert_eq!(e.previous().multiplier(AreaId(0), CarType::UberX), first);
        assert_eq!(e.previous().interval, 1);
        assert_eq!(e.current().interval, 2);
    }

    #[test]
    fn windows_reset_between_intervals() {
        let mut e = engine(1);
        e.accumulate(AreaId(0), 1000.0, 950.0);
        e.recompute(SimTime(300));
        // Nothing accumulated since: the stale 95% must not leak through
        // (empty window ⇒ util=1 default though — so accumulate something).
        e.accumulate(AreaId(0), 1000.0, 0.0);
        e.recompute(SimTime(600));
        assert_eq!(e.multiplier(AreaId(0), CarType::UberX), 1.0);
    }

    #[test]
    fn areas_independent() {
        let mut e = engine(2);
        e.accumulate(AreaId(0), 1000.0, 990.0);
        e.record_ewt(AreaId(0), 9.0);
        e.accumulate(AreaId(1), 1000.0, 100.0);
        e.record_ewt(AreaId(1), 1.0);
        e.recompute(SimTime(300));
        assert!(e.multiplier(AreaId(0), CarType::UberX) > 1.5);
        assert_eq!(e.multiplier(AreaId(1), CarType::UberX), 1.0);
    }

    #[test]
    fn noise_produces_short_episodes() {
        // With noise on and utilisation just below threshold, surge should
        // flicker: mostly 1.0 with occasional brief excursions.
        let mut tuning = SurgeTuning::default_test();
        tuning.noise_sigma = 0.15;
        let mut e = SurgeEngine::new(1, tuning, SimRng::seed_from_u64(77));
        let mut episodes = Vec::new();
        let mut run = 0u32;
        for i in 1..=2000u64 {
            e.accumulate(AreaId(0), 1000.0, 650.0); // just under 0.7 threshold
            e.record_ewt(AreaId(0), 3.0);
            for _ in 0..8 {
                e.record_request(AreaId(0));
            }
            e.recompute(SimTime(i * 300));
            if e.multiplier(AreaId(0), CarType::UberX) > 1.0 {
                run += 1;
            } else if run > 0 {
                episodes.push(run);
                run = 0;
            }
        }
        assert!(!episodes.is_empty(), "noise should cause some surges");
        let one_interval = episodes.iter().filter(|&&r| r == 1).count() as f64;
        let frac = one_interval / episodes.len() as f64;
        assert!(frac > 0.5, "most episodes should last one interval, got {frac}");
    }

    #[test]
    fn smoothed_policy_damps_excursions() {
        let drive = |e: &mut SurgeEngine, busy: f64| {
            e.accumulate(AreaId(0), 1000.0, busy);
            for _ in 0..10 {
                e.record_request(AreaId(0));
            }
            e.recompute(SimTime(300));
            e.multiplier(AreaId(0), CarType::UberX)
        };
        let mut tuning = SurgeTuning::default_test();
        tuning.noise_sigma = 0.0;
        let mut raw = SurgeEngine::new(1, tuning, SimRng::seed_from_u64(1));
        let mut ema = SurgeEngine::new(1, tuning, SimRng::seed_from_u64(1))
            .with_policy(SurgePolicy::Smoothed { alpha: 0.3 });
        // One hot window after a calm history.
        for _ in 0..3 {
            drive(&mut raw, 100.0);
            drive(&mut ema, 100.0);
        }
        let spike_raw = drive(&mut raw, 990.0);
        let spike_ema = drive(&mut ema, 990.0);
        assert!(spike_raw > 1.4, "raw spike {spike_raw}");
        assert!(spike_ema < spike_raw, "EMA must damp the spike: {spike_ema} vs {spike_raw}");
        // And decay slowly afterwards instead of collapsing to 1.
        let after_raw = drive(&mut raw, 100.0);
        let after_ema = drive(&mut ema, 100.0);
        assert_eq!(after_raw, 1.0, "threshold policy collapses immediately");
        assert!(after_ema > 1.0, "EMA should linger above 1, got {after_ema}");
    }

    #[test]
    fn smoothed_alpha_one_equals_threshold() {
        let mut tuning = SurgeTuning::default_test();
        tuning.noise_sigma = 0.0;
        let mut a = SurgeEngine::new(1, tuning, SimRng::seed_from_u64(2));
        let mut b = SurgeEngine::new(1, tuning, SimRng::seed_from_u64(2))
            .with_policy(SurgePolicy::Smoothed { alpha: 1.0 });
        for busy in [100.0, 900.0, 400.0, 950.0] {
            a.accumulate(AreaId(0), 1000.0, busy);
            b.accumulate(AreaId(0), 1000.0, busy);
            for _ in 0..10 {
                a.record_request(AreaId(0));
                b.record_request(AreaId(0));
            }
            a.recompute(SimTime(300));
            b.recompute(SimTime(300));
            assert_eq!(
                a.multiplier(AreaId(0), CarType::UberX),
                b.multiplier(AreaId(0), CarType::UberX)
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn smoothed_rejects_bad_alpha() {
        let _ = SurgeEngine::new(1, SurgeTuning::default_test(), SimRng::seed_from_u64(3))
            .with_policy(SurgePolicy::Smoothed { alpha: 0.0 });
    }

    #[test]
    fn quantize_floors_small_values() {
        assert_eq!(quantize(1.04), 1.0);
        assert_eq!(quantize(1.05), 1.1);
        assert_eq!(quantize(1.26), 1.3);
        assert_eq!(quantize(0.8), 1.0);
    }

    #[test]
    fn serde_round_trip_continues_bit_identically() {
        // The restored engine must produce the same future multipliers as
        // the original, including mid-window accumulations, EMA state and
        // the noise RNG stream (the checkpoint/resume determinism gate).
        let mut tuning = SurgeTuning::default_test();
        tuning.noise_sigma = 0.05;
        let mut a = SurgeEngine::new(3, tuning, SimRng::seed_from_u64(77))
            .with_policy(SurgePolicy::Smoothed { alpha: 0.4 });
        for i in 0..4u64 {
            a.accumulate(AreaId(0), 1000.0, 900.0 + i as f64 * 10.0);
            a.record_request(AreaId(0));
            a.record_ewt(AreaId(1), 6.5);
            a.recompute(SimTime(300 * (i + 1)));
        }
        // Leave a half-accumulated window in place before snapshotting.
        a.accumulate(AreaId(2), 500.0, 480.0);
        a.record_request(AreaId(2));

        let mut b = SurgeEngine::from_value(&a.to_value()).expect("round trip");
        assert_eq!(b.policy(), a.policy());
        for i in 5..9u64 {
            a.accumulate(AreaId(2), 800.0, 760.0);
            b.accumulate(AreaId(2), 800.0, 760.0);
            a.recompute(SimTime(300 * i));
            b.recompute(SimTime(300 * i));
            for area in 0..3 {
                assert_eq!(
                    a.multiplier(AreaId(area), CarType::UberX).to_bits(),
                    b.multiplier(AreaId(area), CarType::UberX).to_bits(),
                    "area {area} interval {i}"
                );
            }
        }
    }
}
