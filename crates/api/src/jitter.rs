//! The April-2015 consistency bug ("jitter").
//!
//! Uber's engineers confirmed to the authors that a consistency bug caused
//! *random customers to receive stale surge multipliers* (§5.2). Measured
//! properties, all reproduced here:
//!
//! * jitter occurs **per client** (Fig. 17: ~90% of events seen by a
//!   single client, never more than 5 of 43 simultaneously);
//! * onset is distributed almost **uniformly within the 5-minute
//!   interval** (Fig. 15);
//! * 90% of events last **20–30 s**, all are under a minute;
//! * the multiplier served during jitter equals the **previous interval's**
//!   value, so jitter usually *reduces* the price.
//!
//! Whether a given client jitters in a given interval is a pure function
//! of `(bug seed, client key, interval)`, which keeps campaigns replayable
//! and lets the protocol layer evaluate jitter statelessly.

use serde::{Deserialize, Serialize};
use surgescope_simcore::SimRng;

/// Tuning of the consistency bug.
///
/// ```
/// use surgescope_api::JitterConfig;
/// let bug = JitterConfig::default();
/// // Whether client 7 receives stale data in interval 123 is a pure
/// // function of the seed — campaigns replay exactly.
/// assert_eq!(bug.window(2015, 7, 123), bug.window(2015, 7, 123));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterConfig {
    /// Probability that a given client is served stale data at some point
    /// within a given 5-minute interval.
    pub prob_per_interval: f64,
    /// Fraction of events with the short (20–30 s) duration; the rest run
    /// 31–59 s.
    pub short_fraction: f64,
}

impl Default for JitterConfig {
    fn default() -> Self {
        // Calibrated so April-era clients see a large sub-minute mass in
        // surge durations (Fig. 13) while simultaneous jitter across the
        // 43-client fleet stays rare (Fig. 17). See EXPERIMENTS.md for the
        // measured trade-off.
        JitterConfig { prob_per_interval: 0.18, short_fraction: 0.9 }
    }
}

/// A window of staleness within one 5-minute interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitterWindow {
    /// Offset of the window start from the interval start, seconds.
    pub start_offset: u64,
    /// Window length, seconds (20–59).
    pub duration: u64,
}

impl JitterWindow {
    /// Whether `offset` seconds into the interval falls inside the window.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.start_offset && offset < self.start_offset + self.duration
    }
}

impl JitterConfig {
    /// The jitter window (if any) for `client_key` during `interval`.
    /// Deterministic in all three arguments.
    pub fn window(&self, bug_seed: u64, client_key: u64, interval: u64) -> Option<JitterWindow> {
        let mut rng = SimRng::seed_from_u64(bug_seed)
            .split_index("jitter-client", client_key)
            .split_index("interval", interval);
        if !rng.chance(self.prob_per_interval) {
            return None;
        }
        let duration = if rng.chance(self.short_fraction) {
            rng.range_u64(20, 31)
        } else {
            rng.range_u64(31, 60)
        };
        // Uniform onset, clipped so the window fits inside the interval.
        let start_offset = rng.range_u64(0, 300 - duration);
        Some(JitterWindow { start_offset, duration })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 2015;

    #[test]
    fn deterministic() {
        let cfg = JitterConfig::default();
        for client in 0..20 {
            for interval in 0..50 {
                assert_eq!(
                    cfg.window(SEED, client, interval),
                    cfg.window(SEED, client, interval)
                );
            }
        }
    }

    #[test]
    fn probability_close_to_config() {
        let cfg = JitterConfig::default();
        let n = 20_000u64;
        let hits = (0..n).filter(|i| cfg.window(SEED, i % 43, i / 43).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - cfg.prob_per_interval).abs() < 0.01,
            "rate {rate} vs {}",
            cfg.prob_per_interval
        );
    }

    #[test]
    fn durations_in_spec() {
        let cfg = JitterConfig::default();
        let mut short = 0u32;
        let mut total = 0u32;
        for i in 0..50_000u64 {
            if let Some(w) = cfg.window(SEED, i % 43, i / 43) {
                assert!((20..60).contains(&w.duration), "duration {}", w.duration);
                assert!(w.start_offset + w.duration <= 300, "window exceeds interval");
                total += 1;
                if w.duration <= 30 {
                    short += 1;
                }
            }
        }
        assert!(total > 1000);
        let frac = short as f64 / total as f64;
        assert!((frac - 0.9).abs() < 0.03, "short fraction {frac}");
    }

    #[test]
    fn onset_roughly_uniform() {
        let cfg = JitterConfig { prob_per_interval: 1.0, short_fraction: 0.9 };
        // Onset is uniform over [0, 300-duration); bucket the region where
        // every duration can start, [0, 270), into three 90 s bins.
        let mut bins = [0u32; 3];
        for i in 0..9_000u64 {
            let w = cfg.window(SEED, i % 43, i / 43).unwrap();
            if w.start_offset < 270 {
                bins[(w.start_offset / 90) as usize] += 1;
            }
        }
        let total: u32 = bins.iter().sum();
        for t in bins {
            let f = t as f64 / total as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.05, "onset skewed: {bins:?}");
        }
    }

    #[test]
    fn clients_independent() {
        let cfg = JitterConfig::default();
        // Two clients' jitter indicators over many intervals must differ.
        let a: Vec<bool> = (0..500).map(|i| cfg.window(SEED, 1, i).is_some()).collect();
        let b: Vec<bool> = (0..500).map(|i| cfg.window(SEED, 2, i).is_some()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn window_contains() {
        let w = JitterWindow { start_offset: 100, duration: 25 };
        assert!(!w.contains(99));
        assert!(w.contains(100));
        assert!(w.contains(124));
        assert!(!w.contains(125));
    }

    #[test]
    fn zero_probability_never_jitters() {
        let cfg = JitterConfig { prob_per_interval: 0.0, short_fraction: 0.9 };
        for i in 0..1000 {
            assert!(cfg.window(SEED, i, i).is_none());
        }
    }
}
