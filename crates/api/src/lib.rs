//! The externally observable protocol surface of the marketplace.
//!
//! Everything the paper's measurement apparatus can see goes through this
//! crate, and nothing else does:
//!
//! * **pingClient** (§3.3): every 5 s an authenticated client reports its
//!   geolocation and receives, per product tier, the nearest **eight**
//!   cars (randomized session ID, position, recent path vector), the
//!   estimated wait time, and the surge multiplier;
//! * **estimates API** (§3.2): `estimates/price` and `estimates/time`
//!   endpoints, rate-limited to 1,000 requests/hour/account, returning
//!   JSON-shaped structures; the API stream never exhibits jitter;
//! * **update timing** (Fig. 15): multipliers recompute on the 5-minute
//!   clock but become visible after a small per-interval propagation
//!   delay — ~35 s spread for the API and the Feb-2015 client protocol,
//!   ~2 min spread for the Apr-2015 client protocol;
//! * **the consistency bug** (Figs. 14–17): under
//!   [`ProtocolEra::Apr2015`], random clients are independently served the
//!   *previous* interval's multiplier for 20–60 s windows ("jitter").
//!
//! The implementation is a pure function of the marketplace state plus a
//! deterministic per-(client, interval) derivation, so campaigns replay
//! bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jitter;
mod messages;
mod ratelimit;
mod service;

pub use jitter::{JitterConfig, JitterWindow};
pub use messages::{CarInfo, PingClientResponse, PriceEstimate, TimeEstimate, TypeStatus};
pub use ratelimit::{session_key, RateLimitError, RateLimiter, DEFAULT_LIMIT_PER_HOUR};
pub use service::{
    ApiService, PingConfig, PingScratch, ProtocolEra, SnapCar, TierPing, WorldSnapshot,
    NEAREST_CARS_SHOWN,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use surgescope_simcore::SimTime;

    proptest! {
        #[test]
        fn jitter_windows_always_fit_the_interval(
            seed in 0u64..100, client in 0u64..64, interval in 0u64..2_000,
            prob in 0.01f64..1.0, short in 0.0f64..1.0,
        ) {
            let cfg = JitterConfig { prob_per_interval: prob, short_fraction: short };
            if let Some(w) = cfg.window(seed, client, interval) {
                prop_assert!(w.duration >= 20 && w.duration < 60);
                prop_assert!(w.start_offset + w.duration <= 300);
            }
        }

        #[test]
        fn rate_limiter_never_exceeds_budget(limit in 1u32..50, calls in 1usize..200,
                                             t0 in 0u64..100_000) {
            let mut rl = RateLimiter::new(limit);
            let mut granted_this_hour = 0u32;
            let mut hour = t0 / 3600;
            for i in 0..calls {
                let now = SimTime(t0 + i as u64 * 30);
                if now.as_secs() / 3600 != hour {
                    hour = now.as_secs() / 3600;
                    granted_this_hour = 0;
                }
                if rl.check(1, now).is_ok() {
                    granted_this_hour += 1;
                }
                prop_assert!(granted_this_hour <= limit);
            }
        }
    }
}
