//! Per-account API rate limiting.
//!
//! "Uber imposes a rate limit of 1,000 API requests per hour per user
//! account" (§3.2). The paper's surge-area probing (§5.3) had to budget
//! its queries against this limit, so the reproduction enforces it
//! faithfully: a fixed 3,600-second window per account keyed on the hour
//! of the request.

use serde::{Deserialize, Error, Serialize, Value};
use std::collections::HashMap;
use surgescope_obs::Counter;
use surgescope_simcore::SimTime;

/// The paper's documented limit.
pub const DEFAULT_LIMIT_PER_HOUR: u32 = 1_000;

/// Error returned when an account exceeds its hourly budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitError {
    /// The account that was throttled.
    pub account: u64,
    /// Seconds until the current window resets.
    pub retry_after_secs: u64,
}

impl std::fmt::Display for RateLimitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "account {} over quota; retry in {}s",
            self.account, self.retry_after_secs
        )
    }
}

impl std::error::Error for RateLimitError {}

/// Mixes a server-assigned session token into a claimed account id, so a
/// network peer draws quota from its **session's** budget no matter which
/// account number it claims. The rotate keeps both inputs in disjoint bit
/// ranges for realistic (small) values, so distinct (session, account)
/// pairs get distinct buckets.
pub fn session_key(session: u64, account: u64) -> u64 {
    session.rotate_left(32) ^ account
}

/// Fixed-window rate limiter keyed by account.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    limit_per_hour: u32,
    // account -> (hour index, count in that hour)
    windows: HashMap<u64, (u64, u32)>,
    // Telemetry (not serialized): requests refused over quota. Throttle
    // decisions are a pure function of simulated request times, so the
    // total is deterministic and snapshot-safe.
    throttled: Counter,
}

impl RateLimiter {
    /// Creates a limiter with the given hourly budget.
    pub fn new(limit_per_hour: u32) -> Self {
        assert!(limit_per_hour > 0, "limit must be positive");
        RateLimiter {
            limit_per_hour,
            windows: HashMap::new(),
            throttled: Counter::new(),
        }
    }

    /// Telemetry handle counting requests refused over quota.
    pub fn throttled(&self) -> &Counter {
        &self.throttled
    }

    /// Records one request from `account` at `now`; errors if the account
    /// is over budget for the current hour.
    pub fn check(&mut self, account: u64, now: SimTime) -> Result<(), RateLimitError> {
        let hour = now.as_secs() / 3600;
        let entry = self.windows.entry(account).or_insert((hour, 0));
        if entry.0 != hour {
            *entry = (hour, 0);
        }
        if entry.1 >= self.limit_per_hour {
            self.throttled.incr();
            return Err(RateLimitError {
                account,
                retry_after_secs: 3600 - now.as_secs() % 3600,
            });
        }
        entry.1 += 1;
        Ok(())
    }

    /// Requests remaining for `account` in the hour containing `now`.
    pub fn remaining(&self, account: u64, now: SimTime) -> u32 {
        let hour = now.as_secs() / 3600;
        match self.windows.get(&account) {
            Some((h, c)) if *h == hour => self.limit_per_hour.saturating_sub(*c),
            _ => self.limit_per_hour,
        }
    }
}

impl Default for RateLimiter {
    fn default() -> Self {
        RateLimiter::new(DEFAULT_LIMIT_PER_HOUR)
    }
}

impl Serialize for RateLimiter {
    fn to_value(&self) -> Value {
        // Sort windows by account so the serialized form is canonical —
        // checkpoint bytes must not depend on HashMap iteration order.
        let mut windows: Vec<(u64, u64, u32)> = self
            .windows
            .iter()
            .map(|(account, (hour, count))| (*account, *hour, *count))
            .collect();
        windows.sort_unstable();
        Value::Map(vec![
            ("limit_per_hour".into(), self.limit_per_hour.to_value()),
            ("windows".into(), windows.to_value()),
        ])
    }
}

impl Deserialize for RateLimiter {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let limit_per_hour = u32::from_value(v.field("limit_per_hour")?)?;
        if limit_per_hour == 0 {
            return Err(Error::custom("rate limiter: limit must be positive"));
        }
        let windows = Vec::<(u64, u64, u32)>::from_value(v.field("windows")?)?
            .into_iter()
            .map(|(account, hour, count)| (account, (hour, count)))
            .collect();
        // The throttle counter starts fresh: it tracks this process's
        // work, not the checkpointed history.
        Ok(RateLimiter { limit_per_hour, windows, throttled: Counter::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_simcore::SimDuration;

    #[test]
    fn allows_up_to_limit() {
        let mut rl = RateLimiter::new(5);
        let t = SimTime(100);
        for _ in 0..5 {
            rl.check(1, t).unwrap();
        }
        let err = rl.check(1, t).unwrap_err();
        assert_eq!(err.account, 1);
        assert_eq!(err.retry_after_secs, 3500);
    }

    #[test]
    fn window_resets_on_the_hour() {
        let mut rl = RateLimiter::new(2);
        let t = SimTime(3590);
        rl.check(7, t).unwrap();
        rl.check(7, t).unwrap();
        assert!(rl.check(7, t).is_err());
        let next_hour = t + SimDuration::secs(20);
        rl.check(7, next_hour).unwrap();
        assert_eq!(rl.remaining(7, next_hour), 1);
    }

    #[test]
    fn accounts_independent() {
        let mut rl = RateLimiter::new(1);
        let t = SimTime(0);
        rl.check(1, t).unwrap();
        assert!(rl.check(1, t).is_err());
        rl.check(2, t).unwrap();
    }

    #[test]
    fn throttled_counter_tracks_refusals_only() {
        let mut rl = RateLimiter::new(2);
        let t = SimTime(0);
        rl.check(1, t).unwrap();
        rl.check(1, t).unwrap();
        assert_eq!(rl.throttled().get(), 0, "granted requests don't count");
        assert!(rl.check(1, t).is_err());
        assert!(rl.check(1, t).is_err());
        assert_eq!(rl.throttled().get(), 2);
        // Restore resets telemetry but not spent quota.
        let restored = RateLimiter::from_value(&rl.to_value()).unwrap();
        assert_eq!(restored.throttled().get(), 0);
        assert_eq!(restored.remaining(1, t), 0);
    }

    #[test]
    fn remaining_reports_budget() {
        let mut rl = RateLimiter::new(10);
        let t = SimTime(0);
        assert_eq!(rl.remaining(3, t), 10);
        rl.check(3, t).unwrap();
        assert_eq!(rl.remaining(3, t), 9);
        // A fresh hour restores the full budget even before any call.
        assert_eq!(rl.remaining(3, SimTime(3600)), 10);
    }

    #[test]
    fn paper_default_limit() {
        let rl = RateLimiter::default();
        assert_eq!(rl.remaining(0, SimTime(0)), 1_000);
    }

    #[test]
    fn checkpoint_round_trip_preserves_spent_quota() {
        // A resumed campaign must not get a free burst of probe quota:
        // quota spent before the checkpoint stays spent after restore.
        let mut rl = RateLimiter::new(4);
        let t = SimTime(1800); // mid-hour
        rl.check(1, t).unwrap();
        rl.check(1, t).unwrap();
        rl.check(1, t).unwrap();
        rl.check(9, t).unwrap();

        let v = rl.to_value();
        let mut restored = RateLimiter::from_value(&v).expect("round trip");
        assert_eq!(restored.remaining(1, t), 1, "no refill across checkpoint");
        assert_eq!(restored.remaining(9, t), 3);
        restored.check(1, t).unwrap();
        assert!(restored.check(1, t).is_err(), "budget exhausted as original");
        // Both limiters refill at the same hour boundary, not before.
        let boundary = SimTime(3600);
        assert_eq!(rl.remaining(1, SimTime(3599)), 1);
        assert_eq!(restored.remaining(1, boundary), 4);
        rl.check(1, boundary).unwrap();
        assert_eq!(rl.remaining(1, boundary), 3);
    }

    #[test]
    fn session_key_separates_sessions_and_accounts() {
        // Same claimed account under different sessions -> different
        // buckets; same session probing different accounts likewise.
        assert_ne!(session_key(1, 42), session_key(2, 42));
        assert_ne!(session_key(1, 42), session_key(1, 43));
        let mut rl = RateLimiter::new(1);
        let t = SimTime(0);
        rl.check(session_key(1, 42), t).unwrap();
        assert!(rl.check(session_key(1, 42), t).is_err());
        // A second session claiming the same account has its own budget.
        rl.check(session_key(2, 42), t).unwrap();
    }

    #[test]
    fn serialized_form_is_canonical_regardless_of_insertion_order() {
        let t = SimTime(0);
        let mut a = RateLimiter::new(7);
        let mut b = RateLimiter::new(7);
        for acct in [5u64, 1, 9, 3] {
            a.check(acct, t).unwrap();
        }
        for acct in [3u64, 9, 1, 5] {
            b.check(acct, t).unwrap();
        }
        assert_eq!(a.to_value(), b.to_value());
    }
}
