//! Wire-format message types.
//!
//! The real service speaks JSON ("the server responds with a JSON-encoded
//! list of information about all available car types", §3.3); these types
//! serialize to the same shape so measurement logs look like the paper's
//! 391 GB of captured responses (just smaller).

use serde::{Deserialize, Error, Serialize, Value};
use std::sync::Arc;
use surgescope_city::CarType;
use surgescope_geo::{LatLng, PathVector};
use surgescope_simcore::SimTime;

/// One car as shown in the client app.
#[derive(Debug, Clone)]
pub struct CarInfo {
    /// Randomized per-online-session identifier.
    pub id: u64,
    /// Reported position.
    pub position: LatLng,
    /// Recent positions, oldest first (the "path vector"). Shared
    /// directly with the driver's live trace — serving a ping clones the
    /// handle, never the points (the snapshot layer drops its handles
    /// before the world moves, so the driver's copy-on-write append
    /// stays in place).
    pub path: Arc<PathVector>,
}

impl CarInfo {
    /// Path positions oldest-to-newest (the wire representation).
    pub fn path_points(&self) -> impl Iterator<Item = LatLng> + '_ {
        self.path.points()
    }
}

/// Equality is wire equality: the path compares by its points. The
/// `PathVector` ring-buffer capacity is transport-invisible (the JSON
/// form is a bare point list), so it must not affect `==` — a response
/// deserialized from JSON equals the one that produced it.
impl PartialEq for CarInfo {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.position == other.position
            && self.path.len() == other.path.len()
            && self.path.points().zip(other.path.points()).all(|(a, b)| a == b)
    }
}

impl Serialize for CarInfo {
    fn to_value(&self) -> Value {
        // Manual impl keeps the wire shape of the former
        // `Arc<Vec<LatLng>>` field: `path` is a plain JSON array of
        // points, with no ring-buffer metadata.
        Value::Map(vec![
            ("id".into(), self.id.to_value()),
            ("position".into(), self.position.to_value()),
            ("path".into(), Value::Seq(self.path.points().map(|p| p.to_value()).collect())),
        ])
    }
}

impl Deserialize for CarInfo {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pts = Vec::<LatLng>::from_value(v.field("path")?)?;
        let mut path = PathVector::new(pts.len().max(2));
        for p in pts {
            path.push(p);
        }
        Ok(CarInfo {
            id: u64::from_value(v.field("id")?)?,
            position: LatLng::from_value(v.field("position")?)?,
            path: Arc::new(path),
        })
    }
}

/// Per-tier block of a pingClient response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeStatus {
    /// Product tier.
    pub car_type: CarType,
    /// Up to eight nearest available cars, nearest first.
    pub cars: Vec<CarInfo>,
    /// Estimated wait time, minutes.
    pub ewt_min: f64,
    /// Surge multiplier at the client's location (1.0 = no surge).
    pub surge: f64,
}

/// A full pingClient response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingClientResponse {
    /// Server time of the response.
    pub at: SimTime,
    /// Echo of the client-reported location.
    pub location: LatLng,
    /// One block per tier offered at this location.
    pub statuses: Vec<TypeStatus>,
}

impl PingClientResponse {
    /// The block for one tier, if offered.
    pub fn status(&self, t: CarType) -> Option<&TypeStatus> {
        self.statuses.iter().find(|s| s.car_type == t)
    }

    /// Surge multiplier for a tier (1.0 when the tier is absent).
    pub fn surge(&self, t: CarType) -> f64 {
        self.status(t).map_or(1.0, |s| s.surge)
    }
}

/// One entry of an `estimates/price` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceEstimate {
    /// Product tier.
    pub car_type: CarType,
    /// Surge multiplier in force.
    pub surge_multiplier: f64,
    /// Low end of the fare estimate for a reference trip, dollars.
    pub low_estimate: f64,
    /// High end, dollars.
    pub high_estimate: f64,
}

/// One entry of an `estimates/time` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeEstimate {
    /// Product tier.
    pub car_type: CarType,
    /// Estimated pickup wait, seconds (the real endpoint returns seconds).
    pub estimate_secs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response() -> PingClientResponse {
        PingClientResponse {
            at: SimTime(1000),
            location: LatLng::new(40.75, -73.98),
            statuses: vec![
                TypeStatus {
                    car_type: CarType::UberX,
                    cars: vec![CarInfo {
                        id: 42,
                        position: LatLng::new(40.751, -73.981),
                        path: {
                            let mut p = PathVector::new(2);
                            p.push(LatLng::new(40.7505, -73.9805));
                            Arc::new(p)
                        },
                    }],
                    ewt_min: 3.0,
                    surge: 1.5,
                },
                TypeStatus { car_type: CarType::UberBlack, cars: vec![], ewt_min: 6.0, surge: 1.4 },
            ],
        }
    }

    #[test]
    fn status_lookup() {
        let r = response();
        assert_eq!(r.status(CarType::UberX).unwrap().cars.len(), 1);
        assert!(r.status(CarType::UberPool).is_none());
        assert_eq!(r.surge(CarType::UberX), 1.5);
        assert_eq!(r.surge(CarType::UberPool), 1.0, "absent tier defaults to 1.0");
    }

    #[test]
    fn json_roundtrip() {
        let r = response();
        let json = serde_json::to_string(&r).unwrap();
        let back: PingClientResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // The wire format mentions the essentials by name.
        assert!(json.contains("surge"));
        assert!(json.contains("ewt_min"));
        assert!(json.contains("UberX"));
    }

    #[test]
    fn estimates_roundtrip() {
        let p = PriceEstimate {
            car_type: CarType::UberX,
            surge_multiplier: 2.1,
            low_estimate: 14.0,
            high_estimate: 19.0,
        };
        let t = TimeEstimate { car_type: CarType::UberX, estimate_secs: 240 };
        let pj = serde_json::to_string(&p).unwrap();
        let tj = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<PriceEstimate>(&pj).unwrap(), p);
        assert_eq!(serde_json::from_str::<TimeEstimate>(&tj).unwrap(), t);
    }
}
