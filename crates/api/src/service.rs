//! The service endpoint implementation.
//!
//! [`ApiService`] evaluates protocol requests against a [`WorldSnapshot`]
//! (the marketplace state at the top of the current tick). Responses are a
//! pure function of `(world state, client key, time)`, so identical
//! campaigns replay identically — the paper's §3.4 calibration finding
//! that "data received from pingClient is deterministic" holds by
//! construction here too.

use crate::jitter::JitterConfig;
use crate::messages::{CarInfo, PingClientResponse, PriceEstimate, TimeEstimate, TypeStatus};
use crate::ratelimit::{RateLimitError, RateLimiter};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use surgescope_city::{AreaId, CarType, CityModel};
use surgescope_geo::{GridScratch, LatLng, Meters, PathVector, SpatialGrid};
use surgescope_marketplace::{Marketplace, MarketplaceConfig, SurgeSnapshot};
use surgescope_obs::Counter;
use surgescope_simcore::{SimRng, SimTime};

/// The client app shows at most this many cars per tier (§3.3).
pub const NEAREST_CARS_SHOWN: usize = 8;

/// Which protocol generation the client fleet speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolEra {
    /// Pre-April 2015: client surge updates track the API exactly
    /// (5-minute stair-step, ~35 s propagation spread, no jitter).
    Feb2015,
    /// April 2015 onward: wider (~2 min) propagation spread plus the
    /// stale-multiplier consistency bug.
    Apr2015,
}

/// One visible car as frozen into a [`WorldSnapshot`]: session identity,
/// positions, and the driver's live path trace shared by handle — every
/// client served from the snapshot (and every [`CarInfo`] built from it)
/// clones the `Arc`, never the points.
pub struct SnapCar {
    /// Randomized per-session public ID.
    pub id: u64,
    /// Planar position.
    pub position: Meters,
    /// Geographic position.
    pub latlng: LatLng,
    /// Recent positions, oldest first, ready to drop into a
    /// [`CarInfo`] without copying. Shared with the driver: the snapshot
    /// layer must release these handles before the world moves, or the
    /// driver's next path append degrades to a copy-on-write clone.
    pub path: Arc<PathVector>,
}

/// Reusable per-caller query buffers for snapshot lookups. Each fan-out
/// worker (and the serial ping path) owns one, so per-ping nearest-k
/// results land in scratch instead of fresh allocations.
#[derive(Debug, Clone, Default)]
pub struct PingScratch {
    /// Ring-search candidate scratch shared by all grid queries.
    grid: GridScratch,
    /// Nearest-k indices for the tier currently being visited.
    idx: Vec<usize>,
}

impl PingScratch {
    /// An empty scratch; buffers grow to the working set on first use.
    pub fn new() -> Self {
        PingScratch::default()
    }
}

/// A read-only view of the marketplace taken once per tick, with visible
/// cars pre-grouped by tier — and bucketed into a [`SpatialGrid`] per tier
/// — so a 43-client fleet neither rescans the driver table nine times per
/// client nor sorts a tier's whole inventory per nearest-8 query.
///
/// The snapshot is *owned* (city model and surge boards behind `Arc`s):
/// it borrows nothing from the marketplace, so it can cross thread
/// boundaries and outlive the tick that produced it — the fan-out
/// worker pool and delayed-transport machinery both rely on that.
///
/// It is also *reusable*: [`WorldSnapshot::capture`] re-freezes a new
/// tick into the same shell, keeping every buffer (tier buckets, grid
/// slabs) at capacity, so a snapshot recycled through the arena in
/// `UberSystem` performs zero steady-state heap allocation per tick.
pub struct WorldSnapshot {
    city: Arc<CityModel>,
    cfg: MarketplaceConfig,
    now: SimTime,
    by_type: Vec<(CarType, Vec<SnapCar>)>,
    /// One spatial index per `by_type` entry, over the same car order.
    grids: Vec<SpatialGrid<()>>,
    /// Surge boards in force when the snapshot was taken (the protocol
    /// layer serves stale-vs-fresh multipliers from these). Shared with
    /// the engine by handle — boards are immutable once published.
    surge_current: Arc<SurgeSnapshot>,
    surge_previous: Arc<SurgeSnapshot>,
    /// High-water mark of the total visible-car count. Every tier bucket
    /// and grid reserves to this before filling, so a tier whose share of
    /// the fleet grows never reallocates unless the *total* fleet exceeds
    /// its historical peak — the capacity condition the arena's
    /// zero-allocation guarantee rests on.
    cap_hint: usize,
}

impl WorldSnapshot {
    /// Captures the marketplace state at the top of the current tick
    /// into a fresh snapshot. Prefer [`WorldSnapshot::capture`] on a
    /// recycled shell in per-tick loops.
    pub fn of(mp: &Marketplace) -> Self {
        let mut snap = WorldSnapshot {
            city: mp.city_arc(),
            cfg: *mp.config(),
            now: mp.now(),
            by_type: Vec::new(),
            grids: Vec::new(),
            surge_current: mp.surge_engine().current_arc(),
            surge_previous: mp.surge_engine().previous_arc(),
            cap_hint: 0,
        };
        snap.capture(mp);
        snap
    }

    /// Re-freezes the marketplace's current tick into this snapshot **in
    /// place**, reusing the tier buckets and grid slabs. Steady state
    /// (stable tier set, fleet at its high-water mark) allocates nothing.
    pub fn capture(&mut self, mp: &Marketplace) {
        self.city = mp.city_arc();
        self.cfg = *mp.config();
        self.now = mp.now();
        self.surge_current = mp.surge_engine().current_arc();
        self.surge_previous = mp.surge_engine().previous_arc();

        // The offered tier set derives from the city's fleet mix, which
        // is fixed for a run — entries are patched only if it changes.
        let mut nt = 0;
        let hint = self.cap_hint;
        for (t, _) in mp.city().fleet_mix.iter().filter(|(_, frac)| *frac > 0.0) {
            match self.by_type.get_mut(nt) {
                Some((ct, v)) if *ct == *t => v.clear(),
                Some(entry) => *entry = (*t, Vec::new()),
                None => self.by_type.push((*t, Vec::new())),
            }
            self.by_type[nt].1.reserve(hint);
            nt += 1;
        }
        self.by_type.truncate(nt);

        mp.for_each_visible_car(|car| {
            if let Some((_, v)) = self.by_type.iter_mut().find(|(t, _)| *t == car.car_type) {
                v.push(SnapCar {
                    id: car.session.0,
                    position: car.position,
                    latlng: car.latlng,
                    path: car.path,
                });
            }
        });

        if self.grids.len() > nt {
            self.grids.truncate(nt);
        } else {
            self.grids.resize_with(nt, SpatialGrid::empty);
        }
        for (g, (_, cars)) in self.grids.iter_mut().zip(&self.by_type) {
            g.reserve(hint);
            g.rebuild_auto(cars.iter().map(|c| (c.position, ())));
        }
        // A stochastic fleet keeps setting size records (at a ~1/t decaying
        // rate) forever, so tracking the exact high-water mark would force
        // a re-reservation per record. Growing the hint geometrically
        // instead absorbs records into headroom: O(log fleet) growth events
        // over a run, and none once the fleet mean-reverts below 2/3 of it.
        let total: usize = self.by_type.iter().map(|(_, v)| v.len()).sum();
        if total > hint {
            self.cap_hint = (total + total / 2).max(64);
        }
    }

    /// Releases every per-car handle (notably the driver-shared path
    /// `Arc`s) while keeping buffer capacity — the arena reclaim step.
    /// Must run before the world moves: a retained path handle would turn
    /// the driver's next append into a copy-on-write clone.
    pub fn release_cars(&mut self) {
        for (_, v) in &mut self.by_type {
            v.clear();
        }
    }

    /// Snapshot time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The city model the snapshot was taken over.
    pub fn city(&self) -> &CityModel {
        &self.city
    }

    /// Visible cars of one tier (unsorted).
    pub fn cars_of(&self, t: CarType) -> &[SnapCar] {
        self.by_type
            .iter()
            .find(|(ct, _)| *ct == t)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Tiers offered in this city.
    pub fn offered_types(&self) -> impl Iterator<Item = CarType> + '_ {
        self.by_type.iter().map(|(t, _)| *t)
    }

    fn tier_index(&self, t: CarType) -> Option<usize> {
        self.by_type.iter().position(|(ct, _)| *ct == t)
    }

    /// EWT from a resolved nearest-car position (shared by the standalone
    /// and fused query paths — one formula, bit-identical results).
    fn ewt_from_nearest(&self, pos: Meters, nearest: Option<Meters>) -> f64 {
        match nearest {
            Some(car_pos) => {
                let best = self.city.drive_time_secs(car_pos, pos, self.now);
                ((best + self.cfg.dispatch_overhead_secs) / 60.0).max(1.0)
            }
            None => self.cfg.default_ewt_min,
        }
    }

    /// EWT in minutes for a tier at a position, from the snapshot's car
    /// inventory (same formula the marketplace uses internally). Drive
    /// time is monotone in rectilinear distance, so the nearest-L1 car
    /// from the grid yields the same minimum the full scan found.
    pub fn ewt_minutes(&self, pos: Meters, t: CarType) -> f64 {
        let nearest = self.tier_index(t).and_then(|ti| {
            self.grids[ti]
                .nearest_l1(pos, |_| true)
                .map(|(i, _)| self.by_type[ti].1[i].position)
        });
        self.ewt_from_nearest(pos, nearest)
    }
}

/// The stateless core of the protocol endpoint: everything a pingClient
/// response depends on besides the [`WorldSnapshot`] itself. Cheap to
/// clone, so fan-out worker threads carry their own and answer pings
/// without touching the service (whose only mutable state, the rate
/// limiter, guards the *estimates* endpoints — pingClient was never
/// throttled). Clones share the jitter-hit counter cell, so worker
/// threads all feed one total.
#[derive(Debug, Clone)]
pub struct PingConfig {
    era: ProtocolEra,
    jitter: JitterConfig,
    bug_seed: u64,
    /// Std-dev of the Gaussian perturbation applied to car positions in
    /// pingClient responses. Uber stated that "car locations may be
    /// slightly perturbed to protect drivers' safety" (§3.3); 0 disables.
    location_noise_m: f64,
    /// Telemetry: pings answered from the previous board *because of the
    /// consistency bug's jitter window* (not mere propagation delay).
    /// Window membership is a pure function of (client, interval), so the
    /// total is deterministic at any fan-out width.
    jitter_hits: Counter,
}

/// The protocol endpoint.
///
/// Owns only protocol-side state (the per-account rate limiter and the
/// consistency-bug configuration); all marketplace state arrives through
/// [`WorldSnapshot`]s.
pub struct ApiService {
    ping: PingConfig,
    limiter: RateLimiter,
}

/// What kind of consumer is asking for a multiplier — the propagation
/// delay differs (Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Consumer {
    Api,
    Client,
}

impl ApiService {
    /// Creates a service for the given protocol era. `bug_seed`
    /// parameterizes the consistency bug's randomness.
    pub fn new(era: ProtocolEra, bug_seed: u64) -> Self {
        ApiService {
            ping: PingConfig {
                era,
                jitter: JitterConfig::default(),
                bug_seed,
                location_noise_m: 0.0,
                jitter_hits: Counter::new(),
            },
            limiter: RateLimiter::default(),
        }
    }

    /// Enables driver-safety location perturbation (builder style).
    pub fn with_location_noise(mut self, sigma_m: f64) -> Self {
        assert!(sigma_m >= 0.0, "negative noise");
        self.ping.location_noise_m = sigma_m;
        self
    }

    /// Overrides the jitter tuning (ablation benches sweep this).
    pub fn with_jitter(mut self, jitter: JitterConfig) -> Self {
        self.ping.jitter = jitter;
        self
    }

    /// The era this service speaks.
    pub fn era(&self) -> ProtocolEra {
        self.ping.era
    }

    /// The stateless ping core, for fan-out workers. The clone shares
    /// the jitter-hit counter cell with the service's own copy.
    pub fn ping_config(&self) -> PingConfig {
        self.ping.clone()
    }

    /// Telemetry handle counting consistency-bug window hits.
    pub fn jitter_hits(&self) -> &Counter {
        &self.ping.jitter_hits
    }

    /// The rate limiter's current state — the only mutable state the
    /// service owns, exposed so campaign checkpoints can persist it.
    pub fn limiter(&self) -> &RateLimiter {
        &self.limiter
    }

    /// Replaces the limiter state (checkpoint restore). Quota spent
    /// before a checkpoint stays spent after resume.
    pub fn set_limiter(&mut self, limiter: RateLimiter) {
        self.limiter = limiter;
    }

    /// Handles a pingClient request from `client_key` at `location`.
    /// Unlimited (the paper's 43 clients pinged every 5 s for weeks
    /// without throttling).
    pub fn ping_client(
        &self,
        snap: &WorldSnapshot,
        client_key: u64,
        location: LatLng,
    ) -> PingClientResponse {
        self.ping.ping_client(snap, client_key, location)
    }

    /// `estimates/price`: price ranges (with multipliers) for a reference
    /// 5-mile / 15-minute trip from `location`. Rate-limited per account;
    /// callers must treat the `Err` as a gap (record NaN, keep running),
    /// never abort a campaign over one throttled probe.
    pub fn estimates_price(
        &mut self,
        snap: &WorldSnapshot,
        account: u64,
        location: LatLng,
    ) -> Result<Vec<PriceEstimate>, RateLimitError> {
        self.limiter.check(account, snap.now())?;
        let city = snap.city();
        let pos = city.projection.to_meters(location);
        let area = city.area_of(pos);
        Ok(snap
            .offered_types()
            .map(|t| {
                let surge =
                    self.ping.visible_surge(snap, snap.now(), area, t, Consumer::Api, account);
                let schedule = city.fare_schedule(t);
                let mid = schedule.fare(5.0 * 1609.344, 15.0 * 60.0, surge.max(1.0));
                PriceEstimate {
                    car_type: t,
                    surge_multiplier: surge,
                    low_estimate: (mid * 0.9).floor(),
                    high_estimate: (mid * 1.1).ceil(),
                }
            })
            .collect())
    }

    /// `estimates/time`: pickup ETAs in seconds. Rate-limited per account.
    pub fn estimates_time(
        &mut self,
        snap: &WorldSnapshot,
        account: u64,
        location: LatLng,
    ) -> Result<Vec<TimeEstimate>, RateLimitError> {
        self.limiter.check(account, snap.now())?;
        let pos = snap.city().projection.to_meters(location);
        Ok(snap
            .offered_types()
            .map(|t| TimeEstimate {
                car_type: t,
                estimate_secs: (snap.ewt_minutes(pos, t) * 60.0).round() as u64,
            })
            .collect())
    }

    /// Remaining API budget for an account this hour (diagnostic).
    pub fn remaining_quota(&self, account: u64, now: SimTime) -> u32 {
        self.limiter.remaining(account, now)
    }
}

impl PingConfig {
    /// Per-interval propagation delay: multipliers recompute exactly on
    /// the 5-minute boundary but reach consumers a little later — within a
    /// ~35 s range for the API (and Feb-era clients), within ~2 min for
    /// Apr-era clients (Fig. 15).
    fn update_delay(&self, interval: u64, consumer: Consumer) -> u64 {
        let mut rng = SimRng::seed_from_u64(self.bug_seed)
            .split_index("update-delay", interval)
            .split(match consumer {
                Consumer::Api => "api",
                Consumer::Client => "client",
            });
        match (consumer, self.era) {
            (Consumer::Api, _) | (Consumer::Client, ProtocolEra::Feb2015) => {
                rng.range_u64(5, 40)
            }
            (Consumer::Client, ProtocolEra::Apr2015) => rng.range_u64(5, 125),
        }
    }

    /// The multiplier a consumer sees for `(area, tier)` at time `now`,
    /// accounting for propagation delay and (for Apr-era clients) the
    /// consistency bug. Stale values come from the snapshot's frozen
    /// surge boards — identical to the live engine's at snapshot time.
    fn visible_surge(
        &self,
        snap: &WorldSnapshot,
        now: SimTime,
        area: Option<AreaId>,
        t: CarType,
        consumer: Consumer,
        client_key: u64,
    ) -> f64 {
        let Some(area) = area else { return 1.0 };
        let interval = now.surge_interval();
        let elapsed = now.seconds_into_surge_interval();

        let pick = |board: &SurgeSnapshot| board.multiplier(area, t);

        // Not yet propagated: everyone sees the previous interval's value.
        if elapsed < self.update_delay(interval, consumer) {
            return pick(&snap.surge_previous);
        }
        // The consistency bug: Apr-era clients may fall into a stale
        // window anywhere in the interval.
        if consumer == Consumer::Client && self.era == ProtocolEra::Apr2015 {
            if let Some(w) = self.jitter.window(self.bug_seed, client_key, interval) {
                if w.contains(elapsed) {
                    return pick(&snap.surge_previous);
                }
            }
        }
        pick(&snap.surge_current)
    }

    /// Deterministic per-(car, tick) Gaussian position perturbation —
    /// deterministic so all co-located clients still see identical data
    /// (the §3.4 calibration must keep passing with noise enabled).
    fn perturb(&self, p: LatLng, car_id: u64, now: SimTime) -> LatLng {
        if self.location_noise_m <= 0.0 {
            return p;
        }
        let mut rng = SimRng::seed_from_u64(self.bug_seed ^ 0x6507)
            .split_index("loc-noise", car_id ^ now.as_secs().rotate_left(17));
        let de = rng.normal(0.0, self.location_noise_m);
        let dn = rng.normal(0.0, self.location_noise_m);
        p.offset_m(de, dn)
    }

    /// Visits each tier's pingClient answer without materializing a wire
    /// response: the nearest-k car indices land in `scratch`, and `visit`
    /// is called once per offered tier with a borrowed [`TierPing`] view.
    /// This is the allocation-free core shared by [`PingConfig::ping_client`]
    /// (which renders a [`PingClientResponse`] from it) and the
    /// measurement fan-out (which renders observations directly). Pure:
    /// usable from any worker thread without touching the [`ApiService`].
    pub fn ping_visit(
        &self,
        snap: &WorldSnapshot,
        client_key: u64,
        location: LatLng,
        scratch: &mut PingScratch,
        mut visit: impl FnMut(&TierPing<'_>),
    ) {
        let city = snap.city();
        let now = snap.now();
        let pos = city.projection.to_meters(location);
        let area = city.area_of(pos);
        // Which surge board this client reads is tier-independent: the
        // propagation delay keys on the interval, the bug window on the
        // client. Resolve the board once; the tier loop only indexes it
        // (`update_delay`/`window` are pure, so hoisting them out of the
        // loop yields bit-identical multipliers).
        let board = area.map(|_| {
            let interval = now.surge_interval();
            let elapsed = now.seconds_into_surge_interval();
            // Split the two staleness causes so the bug window is counted
            // separately from ordinary propagation delay; `!delayed &&`
            // preserves the original short-circuit (a ping inside the
            // delay window never consults the jitter window).
            let delayed = elapsed < self.update_delay(interval, Consumer::Client);
            let jittered = !delayed
                && self.era == ProtocolEra::Apr2015
                && self
                    .jitter
                    .window(self.bug_seed, client_key, interval)
                    .is_some_and(|w| w.contains(elapsed));
            if jittered {
                self.jitter_hits.incr();
            }
            if delayed || jittered { &snap.surge_previous } else { &snap.surge_current }
        });
        for ti in 0..snap.by_type.len() {
            let (t, cars) = (snap.by_type[ti].0, snap.by_type[ti].1.as_slice());
            // Fused kernel: nearest-8 and the EWT's L1-nearest car in one
            // ring expansion, byte-identical to the separate queries.
            let l1 = snap.grids[ti].k_nearest_and_l1_into(
                pos,
                NEAREST_CARS_SHOWN,
                &mut scratch.grid,
                &mut scratch.idx,
            );
            let ewt_min = snap.ewt_from_nearest(pos, l1.map(|(i, _)| cars[i].position));
            let surge = match (board, area) {
                (Some(b), Some(a)) => b.multiplier(a, t),
                _ => 1.0,
            };
            visit(&TierPing {
                car_type: t,
                ewt_min,
                surge,
                ping: self,
                now,
                cars,
                nearest: &scratch.idx,
            });
        }
    }

    /// Answers a pingClient request against a snapshot, materializing the
    /// wire response. Pure: usable from any fan-out worker thread without
    /// touching the [`ApiService`].
    pub fn ping_client(
        &self,
        snap: &WorldSnapshot,
        client_key: u64,
        location: LatLng,
    ) -> PingClientResponse {
        let mut scratch = PingScratch::new();
        let mut statuses = Vec::with_capacity(snap.by_type.len());
        self.ping_visit(snap, client_key, location, &mut scratch, |tier| {
            statuses.push(TypeStatus {
                car_type: tier.car_type,
                cars: tier
                    .cars()
                    .map(|(id, position, path)| CarInfo { id, position, path: Arc::clone(path) })
                    .collect(),
                ewt_min: tier.ewt_min,
                surge: tier.surge,
            });
        });
        PingClientResponse { at: snap.now(), location, statuses }
    }
}

/// One offered tier's pingClient answer, borrowed from the snapshot and
/// the caller's scratch — consumed inside [`PingConfig::ping_visit`]'s
/// `visit` callback.
pub struct TierPing<'a> {
    /// Product tier.
    pub car_type: CarType,
    /// Estimated wait time, minutes.
    pub ewt_min: f64,
    /// Surge multiplier at the client's location.
    pub surge: f64,
    ping: &'a PingConfig,
    now: SimTime,
    cars: &'a [SnapCar],
    nearest: &'a [usize],
}

impl<'a> TierPing<'a> {
    /// The shown cars, nearest first, as `(public id, reported position,
    /// shared path handle)`. Reported positions include the driver-safety
    /// perturbation — identical to the [`CarInfo`]s the wire response
    /// would carry.
    pub fn cars(&self) -> impl Iterator<Item = (u64, LatLng, &'a Arc<PathVector>)> + '_ {
        self.nearest.iter().map(move |&i| {
            let c = &self.cars[i];
            (c.id, self.ping.perturb(c.latlng, c.id, self.now), &c.path)
        })
    }

    /// Number of cars shown for this tier.
    pub fn shown(&self) -> usize {
        self.nearest.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_city::CityModel;
    use surgescope_marketplace::MarketplaceConfig;
    use surgescope_simcore::SimDuration;

    fn busy_world() -> Marketplace {
        let mut c = CityModel::manhattan_midtown();
        // Plenty of idle cars: these tests exercise protocol shape, not
        // load (demand scaled lower than supply so the noon fleet isn't
        // fully booked).
        c.supply = c.supply.scaled(0.3);
        c.demand = c.demand.scaled(0.12);
        let mut mp = Marketplace::new(c, MarketplaceConfig::default(), 7);
        mp.run_for(SimDuration::hours(12));
        mp
    }

    fn center(mp: &Marketplace) -> LatLng {
        let c = mp.city().measurement_region.centroid();
        mp.city().projection.to_latlng(c)
    }

    #[test]
    fn ping_returns_at_most_eight_cars_per_type() {
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let api = ApiService::new(ProtocolEra::Feb2015, 1);
        let resp = api.ping_client(&snap, 0, center(&mp));
        assert!(!resp.statuses.is_empty());
        for s in &resp.statuses {
            assert!(s.cars.len() <= NEAREST_CARS_SHOWN, "{}: {}", s.car_type, s.cars.len());
            assert!(s.ewt_min >= 1.0);
            assert!(s.surge >= 1.0);
        }
        let x = resp.status(CarType::UberX).expect("UberX offered");
        assert!(
            !x.cars.is_empty(),
            "midday midtown should show at least one UberX"
        );
    }

    #[test]
    fn nearest_cars_sorted_by_distance() {
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let api = ApiService::new(ProtocolEra::Feb2015, 1);
        let loc = center(&mp);
        let pos = mp.city().projection.to_meters(loc);
        let resp = api.ping_client(&snap, 0, loc);
        let x = resp.status(CarType::UberX).unwrap();
        let dists: Vec<f64> = x
            .cars
            .iter()
            .map(|c| mp.city().projection.to_meters(c.position).dist(pos))
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "not sorted: {dists:?}");
        }
    }

    #[test]
    fn responses_deterministic_across_clients_feb_era() {
        // §3.4 calibration: all clients at the same spot see identical data.
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let api = ApiService::new(ProtocolEra::Feb2015, 1);
        let loc = center(&mp);
        let a = api.ping_client(&snap, 1, loc);
        let b = api.ping_client(&snap, 2, loc);
        assert_eq!(a, b, "Feb-era responses must be identical across clients");
    }

    #[test]
    fn api_never_jitters_even_in_april() {
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let mut api = ApiService::new(ProtocolEra::Apr2015, 1);
        let loc = center(&mp);
        let a = api.estimates_price(&snap, 1, loc).unwrap();
        let b = api.estimates_price(&snap, 2, loc).unwrap();
        let ma: Vec<f64> = a.iter().map(|p| p.surge_multiplier).collect();
        let mb: Vec<f64> = b.iter().map(|p| p.surge_multiplier).collect();
        assert_eq!(ma, mb, "API multipliers are account-independent");
    }

    #[test]
    fn estimates_rate_limited() {
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let mut api = ApiService::new(ProtocolEra::Apr2015, 1);
        let loc = center(&mp);
        for _ in 0..1_000 {
            api.estimates_time(&snap, 9, loc).unwrap();
        }
        assert!(api.estimates_time(&snap, 9, loc).is_err());
        // pingClient is not limited.
        let _ = api.ping_client(&snap, 9, loc);
        // Another account unaffected.
        api.estimates_time(&snap, 10, loc).unwrap();
    }

    #[test]
    fn price_estimates_scale_with_surge() {
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let mut api = ApiService::new(ProtocolEra::Feb2015, 1);
        let est = api.estimates_price(&snap, 1, center(&mp)).unwrap();
        for p in est {
            assert!(p.high_estimate > p.low_estimate);
            assert!(p.low_estimate > 0.0);
            if p.car_type == CarType::UberT {
                assert_eq!(p.surge_multiplier, 1.0, "UberT never surges");
            }
        }
    }

    #[test]
    fn location_noise_perturbs_but_stays_deterministic() {
        let mp = busy_world();
        let snap = WorldSnapshot::of(&mp);
        let clean = ApiService::new(ProtocolEra::Feb2015, 1);
        let noisy = ApiService::new(ProtocolEra::Feb2015, 1).with_location_noise(50.0);
        let loc = center(&mp);
        let a = clean.ping_client(&snap, 1, loc);
        let b = noisy.ping_client(&snap, 1, loc);
        let b2 = noisy.ping_client(&snap, 2, loc);
        assert_eq!(b, b2, "noise must be client-independent (determinism calibration)");
        // Positions move, identities don't.
        let xa = a.status(CarType::UberX).unwrap();
        let xb = b.status(CarType::UberX).unwrap();
        assert_eq!(
            xa.cars.iter().map(|c| c.id).collect::<Vec<_>>(),
            xb.cars.iter().map(|c| c.id).collect::<Vec<_>>()
        );
        let moved = xa
            .cars
            .iter()
            .zip(&xb.cars)
            .filter(|(p, q)| surgescope_geo::haversine_m(p.position, q.position) > 1.0)
            .count();
        assert!(moved > 0, "noise had no effect");
        for (p, q) in xa.cars.iter().zip(&xb.cars) {
            let d = surgescope_geo::haversine_m(p.position, q.position);
            assert!(d < 500.0, "perturbation implausibly large: {d} m");
        }
    }

    #[test]
    fn update_delay_ranges_match_eras() {
        let feb = ApiService::new(ProtocolEra::Feb2015, 3);
        let apr = ApiService::new(ProtocolEra::Apr2015, 3);
        for i in 0..500 {
            let d_api = feb.ping.update_delay(i, Consumer::Api);
            assert!((5..40).contains(&d_api));
            let d_feb = feb.ping.update_delay(i, Consumer::Client);
            assert!((5..40).contains(&d_feb));
            let d_apr = apr.ping.update_delay(i, Consumer::Client);
            assert!((5..125).contains(&d_apr));
        }
    }

    #[test]
    fn jitter_only_in_april_era() {
        // Construct a world, then compare per-client surge streams: in the
        // Feb era all clients agree at every instant; in April they can
        // diverge (that divergence is the bug the paper reported to Uber).
        let mut c = CityModel::manhattan_midtown();
        c.supply = c.supply.scaled(0.3);
        c.demand = c.demand.scaled(0.3);
        // Jack demand up so surge is actually active.
        c.demand = c.demand.scaled(4.0);
        let mut mp = Marketplace::new(c, MarketplaceConfig::default(), 11);
        mp.run_for(SimDuration::hours(8));

        let feb = ApiService::new(ProtocolEra::Feb2015, 5);
        let apr = ApiService::new(ProtocolEra::Apr2015, 5)
            .with_jitter(JitterConfig { prob_per_interval: 1.0, short_fraction: 0.9 });

        let loc = center(&mp);
        let mut feb_disagree = 0u32;
        let mut apr_disagree = 0u32;
        for _ in 0..720 {
            // one hour of 5 s pings
            mp.tick();
            let snap = WorldSnapshot::of(&mp);
            let surge_of = |api: &ApiService, key: u64| {
                api.ping_client(&snap, key, loc).surge(CarType::UberX)
            };
            if surge_of(&feb, 1) != surge_of(&feb, 2) {
                feb_disagree += 1;
            }
            if surge_of(&apr, 1) != surge_of(&apr, 2) {
                apr_disagree += 1;
            }
        }
        assert_eq!(feb_disagree, 0, "Feb era must be consistent");
        assert!(apr_disagree > 0, "April era should show client divergence");
    }
}
