//! Correlation analysis.
//!
//! §5.4 of the paper cross-correlates (supply − demand) and EWT against
//! the surge multiplier across time shifts of ±60 minutes in 5-minute
//! steps (Figs. 20–21), reporting the correlation coefficient and p-value
//! at each lag. [`pearson`] and [`cross_correlation`] implement exactly
//! that machinery.

use crate::special::t_test_p_value;

/// A correlation coefficient with its significance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrResult {
    /// Pearson's r in `[-1, 1]`.
    pub r: f64,
    /// Two-sided p-value from the t-distribution with n−2 df.
    pub p_value: f64,
    /// Number of paired samples.
    pub n: usize,
}

/// Pearson product-moment correlation of two equal-length series.
///
/// Returns `r = 0, p = 1` when either series is constant or too short —
/// the conservative "no evidence" answer the pipeline wants for degenerate
/// windows.
pub fn pearson(xs: &[f64], ys: &[f64]) -> CorrResult {
    assert_eq!(xs.len(), ys.len(), "series lengths differ");
    let n = xs.len();
    if n < 3 {
        return CorrResult { r: 0.0, p_value: 1.0, n };
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return CorrResult { r: 0.0, p_value: 1.0, n };
    }
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    let df = (n - 2) as f64;
    let denom = (1.0 - r * r).max(1e-15);
    let t = r * (df / denom).sqrt();
    CorrResult { r, p_value: t_test_p_value(t, df), n }
}

/// Correlation at one time shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LagCorr {
    /// Shift applied to the feature series, in samples. Positive means the
    /// feature is taken from *after* the target (feature lags the target).
    pub lag: i64,
    /// Correlation at this shift.
    pub corr: CorrResult,
}

/// Cross-correlation of `feature` against `target` over lags
/// `-max_lag..=max_lag` (in samples). At lag `k`, `target[i]` is paired
/// with `feature[i + k]` — matching the paper's convention where the
/// coefficient at Δt pairs surge at `t` with feature values in
/// `[t+Δt−5, t+Δt)`.
pub fn cross_correlation(feature: &[f64], target: &[f64], max_lag: usize) -> Vec<LagCorr> {
    assert_eq!(feature.len(), target.len(), "series lengths differ");
    let n = feature.len() as i64;
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    for lag in -(max_lag as i64)..=(max_lag as i64) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let j = i + lag;
            if j >= 0 && j < n {
                ys.push(target[i as usize]);
                xs.push(feature[j as usize]);
            }
        }
        out.push(LagCorr { lag, corr: pearson(&xs, &ys) });
    }
    out
}

/// Autocorrelation function of a series at lags `1..=max_lag`:
/// `acf[k-1] = corr(x[t], x[t+k])`. Quantifies how much memory a process
/// has — the paper's "surges are unpredictable" claim corresponds to an
/// ACF that decays almost immediately.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag)
        .map(|k| {
            if xs.len() <= k + 2 {
                return 0.0;
            }
            pearson(&xs[..xs.len() - k], &xs[k..]).r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let c = pearson(&xs, &ys);
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-10);
    }

    #[test]
    fn perfect_anticorrelation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -x).collect();
        let c = pearson(&xs, &ys);
        assert!((c.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_series_near_zero() {
        // Deterministic pseudo-random pair with no relationship: two
        // splitmix64-hashed streams with different keys.
        fn h(i: u64, key: u64) -> f64 {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ key;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((x ^ (x >> 31)) % 1000) as f64
        }
        let xs: Vec<f64> = (0..2000).map(|i| h(i, 1)).collect();
        let ys: Vec<f64> = (0..2000).map(|i| h(i, 2)).collect();
        let c = pearson(&xs, &ys);
        assert!(c.r.abs() < 0.06, "r={}", c.r);
        assert!(c.p_value > 0.01, "p={}", c.p_value);
    }

    #[test]
    fn constant_series_degenerate() {
        let xs = vec![5.0; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c = pearson(&xs, &ys);
        assert_eq!(c.r, 0.0);
        assert_eq!(c.p_value, 1.0);
    }

    #[test]
    fn too_short_series() {
        let c = pearson(&[1.0, 2.0], &[2.0, 1.0]);
        assert_eq!(c.r, 0.0);
        assert_eq!(c.n, 2);
    }

    #[test]
    fn xcorr_peaks_at_true_shift() {
        // target[i] = feature[i+3]: the target is a *delayed* copy of the
        // feature — pairing target[i] with feature[i+3] aligns them, so the
        // peak must be at lag +3.
        let base: Vec<f64> = (0..300).map(|i| ((i as f64) * 0.7).sin()).collect();
        let feature = base.clone();
        let target: Vec<f64> = (0..300)
            .map(|i| if i + 3 < 300 { base[i + 3] } else { 0.0 })
            .collect();
        let lags = cross_correlation(&feature, &target, 10);
        let best = lags.iter().max_by(|a, b| a.corr.r.total_cmp(&b.corr.r)).unwrap();
        assert_eq!(best.lag, 3, "peak at wrong lag: {:?}", best);
        assert!(best.corr.r > 0.99);
    }

    #[test]
    fn xcorr_is_symmetric_for_symmetric_signal() {
        let xs: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.3).cos()).collect();
        let lags = cross_correlation(&xs, &xs, 5);
        let zero = lags.iter().find(|l| l.lag == 0).unwrap();
        assert!((zero.corr.r - 1.0).abs() < 1e-12);
        for k in 1..=5i64 {
            let plus = lags.iter().find(|l| l.lag == k).unwrap().corr.r;
            let minus = lags.iter().find(|l| l.lag == -k).unwrap().corr.r;
            assert!((plus - minus).abs() < 0.05, "lag ±{k}: {plus} vs {minus}");
        }
    }

    #[test]
    fn acf_of_persistent_vs_noise() {
        // A slow sine is highly autocorrelated at small lags…
        let slow: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).sin()).collect();
        let acf = autocorrelation(&slow, 3);
        assert!(acf[0] > 0.99, "lag-1 ACF of a slow signal: {}", acf[0]);
        // …while a hash sequence has essentially none.
        fn h(i: u64) -> f64 {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((x ^ (x >> 27)) % 1000) as f64
        }
        let noise: Vec<f64> = (0..2000).map(h).collect();
        let nacf = autocorrelation(&noise, 3);
        assert!(nacf[0].abs() < 0.08, "lag-1 ACF of noise: {}", nacf[0]);
    }

    #[test]
    fn acf_short_series_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), vec![0.0; 5]);
    }

    #[test]
    fn xcorr_output_covers_all_lags() {
        let xs = vec![1.0; 50];
        let lags = cross_correlation(&xs, &xs, 7);
        assert_eq!(lags.len(), 15);
        assert_eq!(lags[0].lag, -7);
        assert_eq!(lags[14].lag, 7);
    }
}
