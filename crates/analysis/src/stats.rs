//! Descriptive statistics.
//!
//! The paper reports every mean with a 95% confidence interval
//! (footnote 2: "we present the 95% confidence interval of the mean
//! value"); [`mean_ci95`] computes exactly that.

/// Arithmetic mean. Returns 0 for an empty slice (the callers treat an
/// empty series as "no signal", never as an error).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Zero for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A mean with its 95% confidence half-width, displayed `m ± h`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the 95% CI (`1.96·s/√n`, normal approximation —
    /// every series in this pipeline has n in the thousands).
    pub half_width: f64,
    /// Sample size.
    pub n: usize,
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.1e}", self.mean, self.half_width)
    }
}

/// Mean with 95% confidence interval.
pub fn mean_ci95(xs: &[f64]) -> MeanCi {
    let m = mean(xs);
    let s = std_dev(xs);
    let h = if xs.is_empty() { 0.0 } else { 1.96 * s / (xs.len() as f64).sqrt() };
    MeanCi { mean: m, half_width: h, n: xs.len() }
}

/// Quantile by linear interpolation on the sorted data (`q` in `[0, 1]`).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile input must be sorted"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = pos - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // Sample SD of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.138).abs() < 0.001);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        let ci = mean_ci95(&[]);
        assert_eq!(ci.mean, 0.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i % 10) as f64).collect();
        let ca = mean_ci95(&a);
        let cb = mean_ci95(&b);
        assert!((ca.mean - cb.mean).abs() < 1e-9);
        assert!(cb.half_width < ca.half_width / 5.0);
    }

    #[test]
    fn ci_display_format() {
        let ci = MeanCi { mean: 1.36, half_width: 1e-4, n: 100 };
        assert_eq!(format!("{ci}"), "1.360 ± 1.0e-4");
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        assert_eq!(quantile(&xs, 0.1), 1.4);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
