//! 2-D spatial aggregation for the heatmap figures.
//!
//! Figures 9–10 show, per measurement client, the average number of
//! unique cars per day and the average EWT. [`SpatialGrid`] bins planar
//! samples into fixed cells and reports per-cell means — the generic
//! machinery behind those panels.

/// A fixed-resolution planar grid accumulating `(sum, count)` per cell.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    min_x: f64,
    min_y: f64,
    cell_m: f64,
    cols: usize,
    rows: usize,
    sum: Vec<f64>,
    count: Vec<u64>,
}

impl SpatialGrid {
    /// A grid covering `[min_x, min_x + cols·cell_m) × [min_y, …)`.
    pub fn new(min_x: f64, min_y: f64, cell_m: f64, cols: usize, rows: usize) -> Self {
        assert!(cell_m > 0.0 && cols > 0 && rows > 0, "degenerate grid");
        SpatialGrid {
            min_x,
            min_y,
            cell_m,
            cols,
            rows,
            sum: vec![0.0; cols * rows],
            count: vec![0; cols * rows],
        }
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn index(&self, x: f64, y: f64) -> Option<usize> {
        let cx = ((x - self.min_x) / self.cell_m).floor();
        let cy = ((y - self.min_y) / self.cell_m).floor();
        if cx < 0.0 || cy < 0.0 {
            return None;
        }
        let (cx, cy) = (cx as usize, cy as usize);
        if cx >= self.cols || cy >= self.rows {
            return None;
        }
        Some(cy * self.cols + cx)
    }

    /// Adds a sample at `(x, y)`; samples outside the grid are dropped.
    pub fn add(&mut self, x: f64, y: f64, value: f64) {
        if let Some(i) = self.index(x, y) {
            self.sum[i] += value;
            self.count[i] += 1;
        }
    }

    /// Mean of the samples in the cell containing `(x, y)`.
    pub fn mean_at(&self, x: f64, y: f64) -> Option<f64> {
        let i = self.index(x, y)?;
        if self.count[i] == 0 {
            None
        } else {
            Some(self.sum[i] / self.count[i] as f64)
        }
    }

    /// Per-cell means in row-major order (`None` for empty cells).
    pub fn means(&self) -> Vec<Option<f64>> {
        self.sum
            .iter()
            .zip(&self.count)
            .map(|(s, c)| if *c == 0 { None } else { Some(s / *c as f64) })
            .collect()
    }

    /// `(col, row, mean)` for every non-empty cell.
    pub fn cells(&self) -> Vec<(usize, usize, f64)> {
        self.means()
            .into_iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|v| (i % self.cols, i / self.cols, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_means() {
        let mut g = SpatialGrid::new(0.0, 0.0, 100.0, 4, 4);
        g.add(50.0, 50.0, 2.0);
        g.add(60.0, 40.0, 4.0);
        g.add(150.0, 50.0, 10.0);
        assert_eq!(g.mean_at(10.0, 10.0), Some(3.0));
        assert_eq!(g.mean_at(199.0, 99.0), Some(10.0));
        assert_eq!(g.mean_at(350.0, 350.0), None);
    }

    #[test]
    fn out_of_bounds_dropped() {
        let mut g = SpatialGrid::new(0.0, 0.0, 10.0, 2, 2);
        g.add(-5.0, 5.0, 1.0);
        g.add(5.0, 25.0, 1.0);
        g.add(100.0, 5.0, 1.0);
        assert!(g.cells().is_empty());
    }

    #[test]
    fn cells_row_major() {
        let mut g = SpatialGrid::new(0.0, 0.0, 1.0, 3, 2);
        g.add(0.5, 0.5, 1.0); // (0,0)
        g.add(2.5, 1.5, 7.0); // (2,1)
        let cells = g.cells();
        assert_eq!(cells, vec![(0, 0, 1.0), (2, 1, 7.0)]);
        assert_eq!(g.shape(), (3, 2));
    }

    #[test]
    fn negative_origin() {
        let mut g = SpatialGrid::new(-100.0, -100.0, 50.0, 4, 4);
        g.add(-75.0, -75.0, 3.0);
        assert_eq!(g.mean_at(-75.0, -75.0), Some(3.0));
    }
}
