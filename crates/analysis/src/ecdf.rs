//! Empirical cumulative distribution functions.
//!
//! Half the paper's figures are CDFs (EWT — Fig. 11, surge multipliers —
//! Fig. 12, surge durations — Fig. 13, lifespans — Fig. 7, savings and
//! walking times — Fig. 24). [`Ecdf`] stores the sorted sample and answers
//! `P(X ≤ x)` queries, inverse quantiles and fixed-grid dumps for the
//! experiment harness to print.

use crate::stats::quantile;

/// An empirical CDF over an `f64` sample.
///
/// ```
/// use surgescope_analysis::Ecdf;
/// let waits = Ecdf::new(vec![2.0, 3.0, 3.5, 4.0, 9.0]);
/// assert_eq!(waits.at(4.0), 0.8);          // 80% of waits ≤ 4 minutes
/// assert_eq!(waits.quantile(0.5), 3.5);    // median
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaNs are rejected with a panic —
    /// upstream code never produces them legitimately).
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(xs.iter().all(|x| !x.is_nan()), "NaN in ECDF sample");
        xs.sort_by(f64::total_cmp);
        Ecdf { sorted: xs }
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)` — fraction of the sample at or below `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse: the `q`-quantile of the sample.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.sorted, q)
    }

    /// Minimum observed value (0 when empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum observed value (0 when empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Evaluates the CDF on an evenly spaced grid of `points` values from
    /// `lo` to `hi` inclusive — the series the experiment harness prints
    /// for each CDF figure.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi > lo, "bad grid");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_probabilities() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(1.0), 0.25);
        assert_eq!(e.at(2.5), 0.5);
        assert_eq!(e.at(4.0), 1.0);
        assert_eq!(e.at(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.at(1.0), 0.75);
        assert_eq!(e.at(1.5), 0.75);
        assert_eq!(e.at(2.0), 1.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let e = Ecdf::new((0..100).map(|i| ((i * 7919) % 100) as f64).collect());
        let mut prev = 0.0;
        for i in -5..110 {
            let v = e.at(i as f64);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn quantile_inverse_roundtrip() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let med = e.quantile(0.5);
        assert!((med - 50.5).abs() < 1e-9);
        assert!((e.at(med) - 0.5).abs() <= 0.01);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
    }

    #[test]
    fn curve_grid() {
        let e = Ecdf::new(vec![0.0, 1.0]);
        let c = e.curve(0.0, 1.0, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (0.0, 0.5));
        assert_eq!(c[1], (0.5, 0.5));
        assert_eq!(c[2], (1.0, 1.0));
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.at(1.0), 0.0);
        assert_eq!(e.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
