//! Ordinary least squares regression.
//!
//! Table 1 of the paper fits linear models predicting the next interval's
//! surge multiplier from (supply − demand), EWT and the previous
//! multiplier, reporting the fitted θ parameters and R² per city and per
//! data filter (Raw / Threshold / Rush). The models are tiny (3
//! predictors), so the normal equations with Gaussian elimination are
//! exact and fast.

/// A fitted linear model `ŷ = intercept + Σ coeffs[j]·x[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsModel {
    /// Intercept term.
    pub intercept: f64,
    /// One coefficient per predictor.
    pub coeffs: Vec<f64>,
}

/// A fitted model together with its in-sample fit quality.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// The model.
    pub model: OlsModel,
    /// Coefficient of determination on the fitting data.
    pub r2: f64,
    /// Number of fitting rows.
    pub n: usize,
}

impl OlsModel {
    /// Predicts `ŷ` for one row of predictors.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.coeffs.len(), "predictor arity mismatch");
        self.intercept + row.iter().zip(&self.coeffs).map(|(x, c)| x * c).sum::<f64>()
    }

    /// R² of this model on an arbitrary dataset (can be held-out data).
    pub fn r2_on(&self, rows: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert_eq!(rows.len(), ys.len());
        if ys.len() < 2 {
            return 0.0;
        }
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        if ss_tot <= 0.0 {
            return 0.0;
        }
        let ss_res: f64 = rows
            .iter()
            .zip(ys)
            .map(|(row, y)| (y - self.predict(row)).powi(2))
            .sum();
        1.0 - ss_res / ss_tot
    }
}

/// Fits `ys ~ 1 + rows` by least squares. Every row must have the same
/// number of predictors. Returns `None` when the system is singular
/// (e.g. a constant predictor column) or there are fewer rows than
/// parameters.
pub fn fit(rows: &[Vec<f64>], ys: &[f64]) -> Option<OlsFit> {
    assert_eq!(rows.len(), ys.len(), "rows/targets length mismatch");
    let n = rows.len();
    if n == 0 {
        return None;
    }
    let k = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == k), "ragged predictor rows");
    let p = k + 1; // plus intercept
    if n < p {
        return None;
    }

    // Normal equations: (XᵀX)β = Xᵀy with X = [1 | rows].
    let mut xtx = vec![vec![0.0f64; p]; p];
    let mut xty = vec![0.0f64; p];
    for (row, &y) in rows.iter().zip(ys) {
        let mut xi = Vec::with_capacity(p);
        xi.push(1.0);
        xi.extend_from_slice(row);
        for a in 0..p {
            xty[a] += xi[a] * y;
            for b in 0..p {
                xtx[a][b] += xi[a] * xi[b];
            }
        }
    }
    let beta = solve(&mut xtx, &mut xty)?;
    let model = OlsModel { intercept: beta[0], coeffs: beta[1..].to_vec() };
    let r2 = model.r2_on(rows, ys);
    Some(OlsFit { model, r2, n })
}

/// Gaussian elimination with partial pivoting; consumes its inputs.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col].abs().total_cmp(&a[j][col].abs())
        })?;
        if a[pivot][col].abs() < 1e-10 {
            return None; // singular
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 + 3a − 0.5b
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 + 3.0 * r[0] - 0.5 * r[1]).collect();
        let fit = fit(&rows, &ys).unwrap();
        assert!((fit.model.intercept - 2.0).abs() < 1e-9);
        assert!((fit.model.coeffs[0] - 3.0).abs() < 1e-9);
        assert!((fit.model.coeffs[1] + 0.5).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_relation_r2_below_one() {
        // Deterministic "noise" via a hash-ish sequence.
        let rows: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64 / 50.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 1.0 + 2.0 * r[0] + (((i * 7919) % 100) as f64 - 50.0) / 25.0)
            .collect();
        let fit = fit(&rows, &ys).unwrap();
        assert!(fit.r2 > 0.7 && fit.r2 < 1.0, "r2={}", fit.r2);
        assert!((fit.model.coeffs[0] - 2.0).abs() < 0.2);
    }

    #[test]
    fn singular_design_returns_none() {
        // Two identical predictor columns.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(fit(&rows, &ys).is_none());
        // Constant column is also singular with the intercept present.
        let rows2: Vec<Vec<f64>> = (0..50).map(|_| vec![4.0]).collect();
        assert!(fit(&rows2, &ys).is_none());
    }

    #[test]
    fn underdetermined_returns_none() {
        let rows = vec![vec![1.0, 2.0, 3.0]];
        let ys = vec![1.0];
        assert!(fit(&rows, &ys).is_none());
        assert!(fit(&[], &[]).is_none());
    }

    #[test]
    fn r2_on_heldout_data() {
        let train: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y_train: Vec<f64> = train.iter().map(|r| 5.0 + 2.0 * r[0]).collect();
        let fit = fit(&train, &y_train).unwrap();
        let test: Vec<Vec<f64>> = (100..150).map(|i| vec![i as f64]).collect();
        let y_test: Vec<f64> = test.iter().map(|r| 5.0 + 2.0 * r[0]).collect();
        assert!((fit.model.r2_on(&test, &y_test) - 1.0).abs() < 1e-9);
        // Wrong relation on held-out data gives low (even negative) R².
        let y_bad: Vec<f64> = test.iter().map(|r| -r[0]).collect();
        assert!(fit.model.r2_on(&test, &y_bad) < 0.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_checks_arity() {
        let m = OlsModel { intercept: 0.0, coeffs: vec![1.0, 2.0] };
        let _ = m.predict(&[1.0]);
    }
}
