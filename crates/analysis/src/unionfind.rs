//! Disjoint-set forest.
//!
//! §5.3: the paper discovers surge areas by "looking for clusters of
//! adjacent locations that always had equal surge multipliers". That is a
//! union-find over the probe lattice: union two adjacent probes whenever
//! their multiplier series are identical, then read off the components.

/// Union-find with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Groups element indices by component, in first-seen order.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            match by_root.iter_mut().find(|(root, _)| *root == r) {
                Some((_, v)) => v.push(i),
                None => by_root.push((r, vec![i])),
            }
        }
        by_root.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn groups_cover_all_elements() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let groups = uf.groups();
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 6);
        assert!(groups.iter().any(|g| g.contains(&0) && g.contains(&3)));
        assert!(groups.iter().any(|g| g.contains(&4) && g.contains(&5)));
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }
}
