//! Statistics for the measurement pipeline.
//!
//! Everything the paper's analysis sections need, implemented from first
//! principles on `f64` slices:
//!
//! * descriptive statistics with the paper's 95% confidence intervals
//!   ([`stats`]);
//! * empirical CDFs for the many distribution figures ([`Ecdf`]);
//! * Pearson correlation with p-values, and lagged cross-correlation for
//!   Figs. 20–21 ([`corr`]);
//! * ordinary least squares with R² for the Table 1 forecasting models
//!   ([`ols`]);
//! * union-find for surge-area clustering ([`UnionFind`]);
//! * 2-D spatial binning for the heatmap figures ([`SpatialGrid`]).
//!
//! The special functions backing the p-values (log-gamma, regularized
//! incomplete beta) are implemented in [`special`] — pulling in a stats
//! crate for two functions would break the approved dependency set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corr;
pub mod ols;
pub mod special;
pub mod stats;

mod ecdf;
mod spatial;
mod unionfind;

pub use corr::{autocorrelation, cross_correlation, pearson, CorrResult, LagCorr};
pub use ecdf::Ecdf;
pub use ols::{OlsFit, OlsModel};
pub use spatial::SpatialGrid;
pub use stats::{mean, mean_ci95, std_dev, MeanCi};
pub use unionfind::UnionFind;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ecdf_is_monotone_and_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
                                        probe in -2e6f64..2e6) {
            let e = Ecdf::new(xs);
            let v = e.at(probe);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(e.at(probe + 1.0) >= v);
        }

        #[test]
        fn ecdf_quantile_within_sample(xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
                                       q in 0.0f64..1.0) {
            let e = Ecdf::new(xs);
            let v = e.quantile(q);
            prop_assert!(v >= e.min() - 1e-9 && v <= e.max() + 1e-9);
        }

        #[test]
        fn pearson_bounded(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
            let xs: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
            let ys: Vec<f64> = pairs.iter().map(|(_, b)| *b).collect();
            let c = pearson(&xs, &ys);
            prop_assert!((-1.0..=1.0).contains(&c.r), "r={}", c.r);
            prop_assert!((0.0..=1.0).contains(&c.p_value), "p={}", c.p_value);
        }

        #[test]
        fn inc_beta_bounded_and_monotone(a in 0.1f64..20.0, b in 0.1f64..20.0,
                                         x in 0.0f64..1.0) {
            let v = special::inc_beta(a, b, x);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            let v2 = special::inc_beta(a, b, (x + 0.05).min(1.0));
            prop_assert!(v2 >= v - 1e-9, "inc_beta not monotone in x");
        }

        #[test]
        fn ols_in_sample_r2_at_most_one(
            rows in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 5..60),
            noise_key in 0u64..100,
        ) {
            let xs: Vec<Vec<f64>> = rows.iter().map(|(a, b)| vec![*a, *b]).collect();
            let ys: Vec<f64> = rows
                .iter()
                .enumerate()
                .map(|(i, (a, b))| a - b + ((i as u64 * noise_key) % 7) as f64)
                .collect();
            if let Some(fit) = ols::fit(&xs, &ys) {
                prop_assert!(fit.r2 <= 1.0 + 1e-9, "r2={}", fit.r2);
            }
        }

        #[test]
        fn union_find_components_consistent(edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60)) {
            let mut uf = UnionFind::new(30);
            let mut merges = 0;
            for (a, b) in edges {
                if a != b && uf.union(a, b) {
                    merges += 1;
                }
            }
            prop_assert_eq!(uf.component_count(), 30 - merges);
            let total: usize = uf.groups().iter().map(|g| g.len()).sum();
            prop_assert_eq!(total, 30);
        }
    }
}
