//! Special functions: log-gamma and the regularized incomplete beta.
//!
//! Needed for Student-t p-values on correlation coefficients (the paper
//! reports p-values alongside the cross-correlations of Figs. 20–21).
//! Implementations follow the classic Lanczos and Lentz continued-fraction
//! formulations; accuracy is ~1e-10 over the parameter ranges we use,
//! verified against known values in the tests.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_93;
    for (i, &c) in COEFFS.iter().enumerate() {
        a += c / (x + (i as f64) + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction (Numerical Recipes `betacf` style, with the symmetry
/// transformation for convergence).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "inc_beta domain: 0 <= x <= 1, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value for a Student-t statistic with `df` degrees of
/// freedom: `P(|T| >= |t|)`.
pub fn t_test_p_value(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    inc_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        let half = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - half).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x)
        for x in [0.3, 1.7, 4.2, 9.9] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for (a, b, x) in [(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.5, 0.2)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.33, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = x²(3-2x) = 0.15625.
        assert!((inc_beta(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((inc_beta(2.0, 2.0, 0.25) - 0.15625).abs() < 1e-10);
    }

    #[test]
    fn t_test_p_values_reference() {
        // Standard normal limit: t=1.96, df large → p ≈ 0.05.
        let p = t_test_p_value(1.96, 100_000.0);
        assert!((p - 0.05).abs() < 0.001, "p={p}");
        // t=0 → p=1.
        assert!((t_test_p_value(0.0, 10.0) - 1.0).abs() < 1e-12);
        // t table: df=10, t=2.228 → p ≈ 0.05.
        let p = t_test_p_value(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.001, "p={p}");
        // Monotone in |t|.
        assert!(t_test_p_value(3.0, 10.0) < t_test_p_value(1.0, 10.0));
        // Symmetric in sign.
        assert_eq!(t_test_p_value(2.0, 7.0), t_test_p_value(-2.0, 7.0));
    }
}
