//! City models and workload profiles.
//!
//! The paper studies two regions — **midtown Manhattan** and **downtown
//! San Francisco** — whose different geography and rider culture produce
//! visibly different marketplace dynamics (SF has more cars *and* surges
//! far more often; Manhattan's surge areas are smaller). This crate holds
//! everything that is *about the city* rather than about the marketplace
//! mechanism:
//!
//! * [`CityModel`]: service boundary, measurement region, surge-area
//!   partition with adjacency, demand hotspots, drive-speed curve, fleet
//!   mix and surge tuning constants;
//! * [`DemandProfile`] / [`SupplyProfile`]: diurnal request-rate and
//!   driver-availability curves (weekday vs. weekend);
//! * [`CarType`]: the product tiers (UberX, UberBLACK, …) with their fare
//!   schedules;
//! * built-in models [`CityModel::manhattan_midtown`] and
//!   [`CityModel::san_francisco_downtown`] calibrated so the reproduction
//!   exhibits the paper's cross-city contrasts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builtins;
mod model;
mod profiles;
mod types;

pub use model::{AreaId, CityModel, Hotspot, SurgeArea, SurgeTuning};
pub use profiles::{DemandProfile, SupplyProfile};
pub use types::{CarType, FareSchedule};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use surgescope_simcore::{SimRng, SimTime};

    proptest! {
        #[test]
        fn sampled_points_always_in_region(seed in 0u64..200, bias in 0.0f64..1.0) {
            let city = CityModel::manhattan_midtown();
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..20 {
                let p = city.sample_point(&mut rng, bias);
                prop_assert!(city.service_region.contains(p));
            }
        }

        #[test]
        fn fare_monotone_in_inputs(dist in 0.0f64..50_000.0, secs in 0.0f64..7_200.0,
                                   surge in 1.0f64..5.0) {
            let f = FareSchedule::uberx_2015();
            let base = f.fare(dist, secs, surge);
            prop_assert!(base >= f.minimum);
            prop_assert!(f.fare(dist + 1_000.0, secs, surge) >= base);
            prop_assert!(f.fare(dist, secs + 300.0, surge) >= base);
            prop_assert!(f.fare(dist, secs, (surge + 0.5).min(5.0)) >= base);
        }

        #[test]
        fn demand_rate_never_negative(hours in 0u64..(14 * 24)) {
            let city = CityModel::san_francisco_downtown();
            let t = SimTime(hours * 3600);
            prop_assert!(city.demand.rate_per_hour(t) >= 0.0);
            let _ = city.supply.target_online(t);
        }

        #[test]
        fn drive_time_symmetric_and_triangleish(ax in 0.0f64..2_000.0, ay in 0.0f64..900.0,
                                                bx in 0.0f64..2_000.0, by in 0.0f64..900.0,
                                                hours in 0u64..24) {
            let city = CityModel::manhattan_midtown();
            let t = SimTime(hours * 3600);
            let a = surgescope_geo::Meters::new(ax, ay);
            let b = surgescope_geo::Meters::new(bx, by);
            let ab = city.drive_time_secs(a, b, t);
            let ba = city.drive_time_secs(b, a, t);
            prop_assert!((ab - ba).abs() < 1e-9, "drive time must be symmetric");
            prop_assert!(ab >= 0.0);
        }
    }
}
