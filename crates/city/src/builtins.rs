//! Built-in models of the two study cities.
//!
//! Geometry note: these are *vector sketches*, not cartography. What the
//! experiments need from a city model is (a) the adjacency topology of the
//! surge areas, (b) the relative scales the paper reports (Manhattan's
//! areas smaller and its client lattice denser than SF's), and (c) demand/
//! supply/tuning asymmetries that reproduce the measured contrasts: SF has
//! ~58% more cars than midtown Manhattan yet surges far more often (57% vs
//! 14% of the time), with higher multipliers (mean 1.36 vs 1.07) and a
//! 2 a.m. "last call" demand spike. All constants here were calibrated
//! against the paper's Figures 8 and 12 (see EXPERIMENTS.md).

use crate::model::{AreaId, CityModel, Hotspot, SurgeArea, SurgeTuning};
use crate::profiles::{DemandProfile, SupplyProfile};
use crate::types::{CarType, FareSchedule};
use surgescope_geo::{LatLng, LocalProjection, Meters, Polygon};
use surgescope_simcore::DiurnalCurve;

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    Polygon::rect(Meters::new(x0, y0), Meters::new(x1, y1))
}

/// Quadrant partition of a rectangle at the given split lines; returns the
/// four areas (0=SW, 1=SE, 2=NW, 3=NE) and their adjacency (corner-only
/// contact does not count as adjacency, matching the walking strategy's
/// notion of "adjacent area").
fn quadrants(
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    xsplit: f64,
    ysplit: f64,
    prefix: &str,
) -> (Vec<SurgeArea>, Vec<Vec<AreaId>>) {
    let polys = [
        rect(x0, y0, xsplit, ysplit),
        rect(xsplit, y0, x1, ysplit),
        rect(x0, ysplit, xsplit, y1),
        rect(xsplit, ysplit, x1, y1),
    ];
    let areas = polys
        .into_iter()
        .enumerate()
        .map(|(i, polygon)| SurgeArea {
            id: AreaId(i),
            name: format!("{prefix} {i}"),
            polygon,
        })
        .collect();
    let adjacency = vec![
        vec![AreaId(1), AreaId(2)],
        vec![AreaId(0), AreaId(3)],
        vec![AreaId(0), AreaId(3)],
        vec![AreaId(1), AreaId(2)],
    ];
    (areas, adjacency)
}

fn standard_fares() -> Vec<(CarType, FareSchedule)> {
    vec![
        (CarType::UberX, FareSchedule::uberx_2015()),
        (CarType::UberXL, FareSchedule { base: 4.5, per_mile: 2.85, per_minute: 0.55, minimum: 10.0 }),
        (CarType::UberBlack, FareSchedule { base: 7.0, per_mile: 3.75, per_minute: 0.65, minimum: 15.0 }),
        (CarType::UberSuv, FareSchedule { base: 14.0, per_mile: 4.5, per_minute: 0.8, minimum: 25.0 }),
        (CarType::UberFamily, FareSchedule { base: 13.0, per_mile: 2.15, per_minute: 0.4, minimum: 18.0 }),
        (CarType::UberPool, FareSchedule { base: 2.0, per_mile: 1.5, per_minute: 0.25, minimum: 6.0 }),
        (CarType::UberRush, FareSchedule { base: 5.0, per_mile: 2.5, per_minute: 0.0, minimum: 7.0 }),
        (CarType::UberWav, FareSchedule::uberx_2015()),
        (CarType::UberT, FareSchedule { base: 2.5, per_mile: 2.5, per_minute: 0.5, minimum: 3.0 }),
    ]
}

impl CityModel {
    /// Midtown Manhattan, April 2015.
    ///
    /// 200 m client lattice (≈44 clients) over a 2.2 × 0.9 km measurement
    /// band; four compact surge areas; heavy UberT and BLACK/SUV presence;
    /// surge rare (≈14% of intervals) and capped low.
    pub fn manhattan_midtown() -> CityModel {
        // Projection origin: SW corner of the measurement band, near
        // 8th Ave & W 40th St.
        let projection = LocalProjection::new(LatLng::new(40.7549, -73.9900));
        let (areas, adjacency) =
            quadrants(-800.0, -800.0, 3600.0, 2600.0, 1100.0, 450.0, "Manhattan");
        let city = CityModel {
            name: "Midtown Manhattan".to_string(),
            projection,
            service_region: rect(-800.0, -800.0, 3600.0, 2600.0),
            measurement_region: rect(0.0, 0.0, 2200.0, 900.0),
            client_spacing_m: 200.0,
            areas,
            adjacency,
            hotspots: vec![
                Hotspot { name: "Times Square".into(), center: Meters::new(600.0, 350.0), sigma_m: 250.0, weight: 3.0 },
                Hotspot { name: "Fifth Avenue".into(), center: Meters::new(1500.0, 450.0), sigma_m: 300.0, weight: 2.2 },
                Hotspot { name: "Penn Station".into(), center: Meters::new(350.0, 80.0), sigma_m: 220.0, weight: 1.6 },
                Hotspot { name: "Grand Central".into(), center: Meters::new(1900.0, 500.0), sigma_m: 260.0, weight: 1.8 },
            ],
            // Midtown traffic: ~25 km/h off-peak, crawling at rush hour.
            drive_speed: DiurnalCurve::new(vec![
                (0.0, 6.5),
                (4.0, 7.5),
                (8.0, 4.0),
                (11.0, 5.0),
                (17.5, 3.8),
                (21.0, 5.5),
            ]),
            demand: DemandProfile::new(
                // Weekday: commuter double-peak, evening heavier (paper:
                // surge tends to rise from 3 p.m. through evening rush).
                DiurnalCurve::new(vec![
                    (0.0, 100.0),
                    (3.0, 40.0),
                    (5.0, 60.0),
                    (7.5, 420.0),
                    (9.5, 360.0),
                    (12.0, 300.0),
                    (15.0, 430.0),
                    (18.0, 560.0),
                    (20.0, 380.0),
                    (22.0, 210.0),
                ]),
                // Weekend: tourist midday bulge (paper: weekend surge peaks
                // noon–3 p.m.) plus late-night activity.
                DiurnalCurve::new(vec![
                    (0.0, 260.0),
                    (3.0, 150.0),
                    (6.0, 60.0),
                    (10.0, 220.0),
                    (13.0, 430.0),
                    (15.0, 390.0),
                    (19.0, 330.0),
                    (22.0, 300.0),
                ]),
            )
            .scaled(1.8),
            supply: SupplyProfile::new(
                DiurnalCurve::new(vec![
                    (0.0, 70.0),
                    (4.0, 45.0),
                    (6.0, 110.0),
                    (9.0, 150.0),
                    (12.0, 135.0),
                    (16.0, 160.0),
                    (19.0, 165.0),
                    (22.0, 95.0),
                ]),
                DiurnalCurve::new(vec![
                    (0.0, 110.0),
                    (4.0, 60.0),
                    (10.0, 120.0),
                    (13.0, 150.0),
                    (18.0, 160.0),
                    (22.0, 120.0),
                ]),
                500,
            ),
            // Manhattan: relatively fewer UberX, many BLACK/SUV/XL and a
            // real UberT population (§4.2).
            fleet_mix: vec![
                (CarType::UberX, 0.50),
                (CarType::UberXL, 0.07),
                (CarType::UberBlack, 0.14),
                (CarType::UberSuv, 0.09),
                (CarType::UberFamily, 0.015),
                (CarType::UberPool, 0.03),
                (CarType::UberRush, 0.005),
                (CarType::UberWav, 0.005),
                (CarType::UberT, 0.145),
            ],
            fares: standard_fares(),
            surge_tuning: SurgeTuning {
                utilisation_threshold: 0.92,
                utilisation_gain: 3.4,
                ewt_gain: 0.10,
                ewt_floor_min: 9.0,
                noise_sigma: 0.028,
                max_multiplier: 3.0,
            },
        };
        city.validate();
        city
    }

    /// Downtown San Francisco, April–May 2015.
    ///
    /// 350 m client lattice (≈45 clients) over a 3.2 × 1.8 km region; four
    /// larger surge areas; UberX-dominated fleet; surge frequent (>50% of
    /// intervals), higher multipliers, morning-rush peak near 2.0 and a
    /// 2 a.m. "last call" spike that can reach 3.0.
    pub fn san_francisco_downtown() -> CityModel {
        // Projection origin: SW corner near Market & Van Ness.
        let projection = LocalProjection::new(LatLng::new(37.7740, -122.4220));
        let (areas, adjacency) =
            quadrants(-1000.0, -1000.0, 4200.0, 3000.0, 1600.0, 900.0, "SF");
        let city = CityModel {
            name: "Downtown San Francisco".to_string(),
            projection,
            service_region: rect(-1000.0, -1000.0, 4200.0, 3000.0),
            measurement_region: rect(0.0, 0.0, 3200.0, 1800.0),
            client_spacing_m: 350.0,
            areas,
            adjacency,
            hotspots: vec![
                Hotspot { name: "Financial District".into(), center: Meters::new(2600.0, 1500.0), sigma_m: 350.0, weight: 3.0 },
                Hotspot { name: "Union Square".into(), center: Meters::new(1600.0, 950.0), sigma_m: 300.0, weight: 2.5 },
                Hotspot { name: "Embarcadero".into(), center: Meters::new(3000.0, 1700.0), sigma_m: 300.0, weight: 2.0 },
                Hotspot { name: "UCSF".into(), center: Meters::new(300.0, 200.0), sigma_m: 250.0, weight: 1.5 },
                Hotspot { name: "Russian Hill".into(), center: Meters::new(900.0, 1650.0), sigma_m: 320.0, weight: 1.6 },
            ],
            drive_speed: DiurnalCurve::new(vec![
                (0.0, 8.0),
                (4.0, 9.0),
                (8.0, 5.0),
                (13.0, 6.5),
                (17.5, 5.0),
                (21.0, 7.0),
            ]),
            demand: DemandProfile::new(
                // Weekday: strong morning rush (surge peaks ~2.0 in the
                // 6–9 a.m. window per §4.2), heavy evening, and the 2 a.m.
                // bar-close spike. Rates keep the fleet near saturation —
                // SF surges the majority of the time (§5.1).
                DiurnalCurve::new(vec![
                    (0.0, 700.0),
                    (2.0, 980.0),
                    (3.0, 340.0),
                    (5.0, 220.0),
                    (7.5, 1600.0),
                    (9.5, 1380.0),
                    (12.0, 1150.0),
                    (15.0, 1250.0),
                    (18.0, 1550.0),
                    (21.0, 980.0),
                ]),
                // Weekend: later start, bigger 2 a.m. spike.
                DiurnalCurve::new(vec![
                    (0.0, 950.0),
                    (2.0, 1300.0),
                    (3.5, 440.0),
                    (6.0, 200.0),
                    (11.0, 820.0),
                    (14.0, 1080.0),
                    (19.0, 1180.0),
                    (22.0, 1050.0),
                ]),
            ),
            supply: SupplyProfile::new(
                DiurnalCurve::new(vec![
                    (0.0, 130.0),
                    (4.0, 75.0),
                    (6.0, 190.0),
                    (9.0, 265.0),
                    (12.0, 235.0),
                    (16.0, 260.0),
                    (19.0, 270.0),
                    (22.0, 170.0),
                ]),
                DiurnalCurve::new(vec![
                    (0.0, 190.0),
                    (4.0, 90.0),
                    (10.0, 200.0),
                    (14.0, 250.0),
                    (19.0, 260.0),
                    (22.0, 210.0),
                ]),
                800,
            ),
            // SF: UberX-dominated (the paper attributes SF's larger fleet
            // almost entirely to UberX).
            fleet_mix: vec![
                (CarType::UberX, 0.70),
                (CarType::UberXL, 0.05),
                (CarType::UberBlack, 0.08),
                (CarType::UberSuv, 0.05),
                (CarType::UberFamily, 0.02),
                (CarType::UberPool, 0.08),
                (CarType::UberRush, 0.005),
                (CarType::UberWav, 0.005),
                (CarType::UberT, 0.01),
            ],
            fares: standard_fares(),
            surge_tuning: SurgeTuning {
                utilisation_threshold: 0.57,
                utilisation_gain: 5.6,
                ewt_gain: 0.22,
                ewt_floor_min: 3.5,
                noise_sigma: 0.25,
                max_multiplier: 4.5,
            },
        };
        city.validate();
        city
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_geo::grid;
    use surgescope_simcore::{SimDuration, SimTime};

    #[test]
    fn client_counts_near_paper_43() {
        for city in [CityModel::manhattan_midtown(), CityModel::san_francisco_downtown()] {
            let slots = grid::cover_polygon(&city.measurement_region, city.client_spacing_m);
            assert!(
                (40..=48).contains(&slots.len()),
                "{}: {} client slots (want ≈43)",
                city.name,
                slots.len()
            );
        }
    }

    #[test]
    fn sf_has_more_supply_than_manhattan() {
        let m = CityModel::manhattan_midtown();
        let s = CityModel::san_francisco_downtown();
        let noon = SimTime::EPOCH + SimDuration::hours(12);
        assert!(s.supply.target_online(noon) as f64 > 1.3 * m.supply.target_online(noon) as f64);
    }

    #[test]
    fn sf_last_call_spike_present() {
        let s = CityModel::san_francisco_downtown();
        let two_am = SimTime::EPOCH + SimDuration::hours(2);
        let four_am = SimTime::EPOCH + SimDuration::hours(4);
        assert!(s.demand.rate_per_hour(two_am) > 3.0 * s.demand.rate_per_hour(four_am));
    }

    #[test]
    fn manhattan_areas_smaller_than_sf() {
        let m = CityModel::manhattan_midtown();
        let s = CityModel::san_francisco_downtown();
        let mean_area = |c: &CityModel| {
            c.areas.iter().map(|a| a.polygon.area_m2().abs()).sum::<f64>() / c.areas.len() as f64
        };
        assert!(mean_area(&s) > 1.3 * mean_area(&m));
    }

    #[test]
    fn sf_surges_easier() {
        let m = CityModel::manhattan_midtown();
        let s = CityModel::san_francisco_downtown();
        assert!(s.surge_tuning.utilisation_threshold < m.surge_tuning.utilisation_threshold);
        assert!(s.surge_tuning.max_multiplier > m.surge_tuning.max_multiplier);
    }

    #[test]
    fn quadrant_adjacency_excludes_diagonals() {
        let m = CityModel::manhattan_midtown();
        assert!(m.areas_adjacent(AreaId(0), AreaId(1)));
        assert!(m.areas_adjacent(AreaId(0), AreaId(2)));
        assert!(!m.areas_adjacent(AreaId(0), AreaId(3)), "diagonal is not adjacent");
        assert!(!m.areas_adjacent(AreaId(1), AreaId(2)));
    }

    #[test]
    fn measurement_region_spans_all_areas() {
        for city in [CityModel::manhattan_midtown(), CityModel::san_francisco_downtown()] {
            let slots = grid::cover_polygon(&city.measurement_region, city.client_spacing_m);
            let mut seen = std::collections::HashSet::new();
            for s in &slots {
                if let Some(a) = city.area_of(s.position) {
                    seen.insert(a);
                }
            }
            assert_eq!(seen.len(), 4, "{}: clients reach {} areas", city.name, seen.len());
        }
    }

    #[test]
    fn fares_defined_for_all_types() {
        let m = CityModel::manhattan_midtown();
        for t in CarType::ALL {
            let f = m.fare_schedule(t);
            assert!(f.base >= 0.0 && f.minimum > 0.0);
        }
    }
}
