//! Demand and supply workload profiles.
//!
//! Fig. 8 of the paper shows both supply and demand peaking around rush
//! hours with a 4 a.m. trough, weekend shapes shifted toward midday, and
//! SF showing a pronounced 2 a.m. "last call" demand spike. A profile is a
//! pair of [`DiurnalCurve`]s (weekday / weekend) plus scale factors.

use serde::{Deserialize, Serialize};
use surgescope_simcore::{DiurnalCurve, SimTime};

/// Ride-request intensity for a whole region, in requests per hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    weekday: DiurnalCurve,
    weekend: DiurnalCurve,
}

impl DemandProfile {
    /// Builds a profile from weekday and weekend curves (requests/hour).
    pub fn new(weekday: DiurnalCurve, weekend: DiurnalCurve) -> Self {
        DemandProfile { weekday, weekend }
    }

    /// Request rate (requests per hour) at a simulated instant.
    pub fn rate_per_hour(&self, t: SimTime) -> f64 {
        let curve = if t.day_of_week().is_weekend() { &self.weekend } else { &self.weekday };
        curve.at_hour(t.hour_of_day_f64()).max(0.0)
    }

    /// Expected number of requests in a window of `dt_secs` starting at `t`
    /// (rate treated as constant over the window; windows are ≤ 5 s).
    pub fn expected_in_window(&self, t: SimTime, dt_secs: u64) -> f64 {
        self.rate_per_hour(t) * dt_secs as f64 / 3600.0
    }

    /// Uniformly scales both curves.
    pub fn scaled(&self, k: f64) -> DemandProfile {
        DemandProfile { weekday: self.weekday.scaled(k), weekend: self.weekend.scaled(k) }
    }

    /// Mean weekday requests/hour (diagnostic).
    pub fn weekday_mean(&self) -> f64 {
        self.weekday.daily_mean()
    }
}

/// Target number of drivers online for a region over the day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplyProfile {
    weekday: DiurnalCurve,
    weekend: DiurnalCurve,
    /// Total driver pool the schedule draws from. The instantaneous target
    /// can never exceed this.
    pub fleet_size: usize,
}

impl SupplyProfile {
    /// Builds a supply profile; curves are *target online drivers*.
    pub fn new(weekday: DiurnalCurve, weekend: DiurnalCurve, fleet_size: usize) -> Self {
        assert!(fleet_size > 0, "fleet must be non-empty");
        SupplyProfile { weekday, weekend, fleet_size }
    }

    /// Target online-driver count at `t`, capped by the fleet size.
    pub fn target_online(&self, t: SimTime) -> usize {
        let curve = if t.day_of_week().is_weekend() { &self.weekend } else { &self.weekday };
        let v = curve.at_hour(t.hour_of_day_f64()).max(0.0).round() as usize;
        v.min(self.fleet_size)
    }

    /// Scales the target curves (not the fleet size).
    pub fn scaled(&self, k: f64) -> SupplyProfile {
        SupplyProfile {
            weekday: self.weekday.scaled(k),
            weekend: self.weekend.scaled(k),
            fleet_size: self.fleet_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_simcore::SimDuration;

    fn demand() -> DemandProfile {
        DemandProfile::new(
            DiurnalCurve::new(vec![(4.0, 10.0), (8.0, 100.0), (13.0, 60.0), (17.5, 120.0), (22.0, 40.0)]),
            DiurnalCurve::new(vec![(4.0, 20.0), (13.0, 90.0), (20.0, 70.0)]),
        )
    }

    #[test]
    fn weekday_rush_peaks() {
        let d = demand();
        let mon = SimTime::EPOCH; // Monday midnight
        let rush = mon + SimDuration::hours(8);
        let night = mon + SimDuration::hours(4);
        assert!(d.rate_per_hour(rush) > d.rate_per_hour(night) * 5.0);
    }

    #[test]
    fn weekend_uses_weekend_curve() {
        let d = demand();
        let sat_noon = SimTime::EPOCH + SimDuration::days(5) + SimDuration::hours(13);
        let mon_noon = SimTime::EPOCH + SimDuration::hours(13);
        assert!((d.rate_per_hour(sat_noon) - 90.0).abs() < 1.0);
        assert!((d.rate_per_hour(mon_noon) - 60.0).abs() < 1.0);
    }

    #[test]
    fn expected_in_window_scales_linearly() {
        let d = demand();
        let t = SimTime::EPOCH + SimDuration::hours(8);
        let e5 = d.expected_in_window(t, 5);
        let e10 = d.expected_in_window(t, 10);
        assert!((e10 - 2.0 * e5).abs() < 1e-12);
        // 100 req/hour -> 5s window expects 100*5/3600.
        assert!((e5 - 100.0 * 5.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_demand() {
        let d = demand().scaled(2.0);
        let t = SimTime::EPOCH + SimDuration::hours(8);
        assert!((d.rate_per_hour(t) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn supply_target_capped_by_fleet() {
        let s = SupplyProfile::new(
            DiurnalCurve::constant(500.0),
            DiurnalCurve::constant(500.0),
            120,
        );
        assert_eq!(s.target_online(SimTime::EPOCH), 120);
    }

    #[test]
    fn supply_never_negative() {
        let s = SupplyProfile::new(
            DiurnalCurve::new(vec![(0.0, -5.0), (12.0, 50.0)]),
            DiurnalCurve::constant(0.0),
            100,
        );
        assert_eq!(s.target_online(SimTime::EPOCH), 0);
    }
}
