//! Product tiers and fare schedules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The vehicle/product tiers the service offers (§2 of the paper).
///
/// UberX dominates both cities by a large margin; the paper's analysis
/// consequently focuses on it, but the simulator carries every tier so the
/// per-type experiments (Figs. 5–7, 11) have real data for the rare ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CarType {
    UberX,
    UberXL,
    UberBlack,
    UberSuv,
    UberFamily,
    UberPool,
    UberRush,
    UberWav,
    /// Ordinary taxis hailed through the app; metered, **not** surge-priced.
    UberT,
}

impl CarType {
    /// Every tier, in the paper's reporting order.
    pub const ALL: [CarType; 9] = [
        CarType::UberX,
        CarType::UberXL,
        CarType::UberBlack,
        CarType::UberSuv,
        CarType::UberFamily,
        CarType::UberPool,
        CarType::UberRush,
        CarType::UberWav,
        CarType::UberT,
    ];

    /// Whether this tier participates in surge pricing. UberT fares are
    /// set by the taxi meter, so surge never applies (§4.2).
    pub fn surge_priced(self) -> bool {
        !matches!(self, CarType::UberT)
    }

    /// The low-priced tiers the paper groups together when discussing
    /// lifespans ("X, XL, FAMILY, and POOL", §4.1).
    pub fn is_low_priced(self) -> bool {
        matches!(
            self,
            CarType::UberX | CarType::UberXL | CarType::UberFamily | CarType::UberPool
        )
    }

    /// Short name used in logs and result tables.
    pub fn label(self) -> &'static str {
        match self {
            CarType::UberX => "UberX",
            CarType::UberXL => "UberXL",
            CarType::UberBlack => "UberBLACK",
            CarType::UberSuv => "UberSUV",
            CarType::UberFamily => "UberFAMILY",
            CarType::UberPool => "UberPOOL",
            CarType::UberRush => "UberRUSH",
            CarType::UberWav => "UberWAV",
            CarType::UberT => "UberT",
        }
    }
}

impl fmt::Display for CarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fare schedule: `base + per_mile·miles + per_minute·minutes`, with a
/// floor of `minimum`. The surge multiplier scales the time/distance
/// portion per §2 ("fare prices are multiplied by the surge multiplier").
///
/// ```
/// use surgescope_city::FareSchedule;
/// let x = FareSchedule::uberx_2015();
/// let normal = x.fare(5.0 * 1609.344, 15.0 * 60.0, 1.0); // 5 mi, 15 min
/// let surged = x.fare(5.0 * 1609.344, 15.0 * 60.0, 2.0);
/// assert!(surged > 1.9 * normal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FareSchedule {
    /// Flag-drop base fare, dollars.
    pub base: f64,
    /// Dollars per mile.
    pub per_mile: f64,
    /// Dollars per minute.
    pub per_minute: f64,
    /// Minimum total fare, dollars.
    pub minimum: f64,
}

impl FareSchedule {
    /// The 2015-era UberX-like schedule used as a default.
    pub fn uberx_2015() -> Self {
        FareSchedule { base: 3.0, per_mile: 2.15, per_minute: 0.4, minimum: 8.0 }
    }

    /// Total fare for a trip, given the surge multiplier in force when the
    /// ride was requested.
    pub fn fare(&self, distance_m: f64, duration_secs: f64, surge: f64) -> f64 {
        assert!(surge >= 1.0, "surge multiplier below 1: {surge}");
        let miles = distance_m / 1609.344;
        let minutes = duration_secs / 60.0;
        let metered = self.base + self.per_mile * miles + self.per_minute * minutes;
        (metered * surge).max(self.minimum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubert_not_surge_priced() {
        assert!(!CarType::UberT.surge_priced());
        for t in CarType::ALL {
            if t != CarType::UberT {
                assert!(t.surge_priced(), "{t} should surge");
            }
        }
    }

    #[test]
    fn low_priced_grouping_matches_paper() {
        let low: Vec<_> = CarType::ALL.iter().filter(|t| t.is_low_priced()).collect();
        assert_eq!(
            low,
            vec![&CarType::UberX, &CarType::UberXL, &CarType::UberFamily, &CarType::UberPool]
        );
    }

    #[test]
    fn fare_scales_with_surge() {
        let f = FareSchedule::uberx_2015();
        let normal = f.fare(5000.0, 600.0, 1.0);
        let surged = f.fare(5000.0, 600.0, 2.0);
        assert!(surged > 1.9 * normal && surged <= 2.0 * normal + 1e-9);
    }

    #[test]
    fn minimum_fare_applies() {
        let f = FareSchedule::uberx_2015();
        let tiny = f.fare(100.0, 30.0, 1.0);
        assert_eq!(tiny, f.minimum);
    }

    #[test]
    #[should_panic(expected = "surge multiplier below 1")]
    fn rejects_sub_unit_surge() {
        let _ = FareSchedule::uberx_2015().fare(1000.0, 60.0, 0.9);
    }

    #[test]
    fn labels_roundtrip_display() {
        assert_eq!(CarType::UberBlack.to_string(), "UberBLACK");
        assert_eq!(CarType::UberX.to_string(), "UberX");
    }
}
