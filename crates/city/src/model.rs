//! The city model: geography, partition into surge areas, and tuning.

use crate::profiles::{DemandProfile, SupplyProfile};
use crate::types::{CarType, FareSchedule};
use serde::{Deserialize, Serialize};
use surgescope_geo::{LatLng, LocalProjection, Meters, Polygon};
use surgescope_simcore::{DiurnalCurve, SimRng, SimTime};

/// Identifier of a surge area within one city (index into
/// [`CityModel::areas`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AreaId(pub usize);

/// One of the city's independently priced surge areas (Figs. 18–19: Uber
/// partitions cities into hand-drawn areas and computes multipliers
/// independently per area).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurgeArea {
    /// Stable identifier (index).
    pub id: AreaId,
    /// Human-readable name ("Manhattan 1", "SF 0", …).
    pub name: String,
    /// Planar footprint.
    pub polygon: Polygon,
}

/// A demand hotspot: a Gaussian bump of ride-request origin density around
/// a landmark (Times Square, the Financial District, UCSF, …). Figures
/// 9–10 show supply skews toward these.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hotspot {
    /// Landmark name.
    pub name: String,
    /// Centre in the local planar frame.
    pub center: Meters,
    /// Standard deviation of the Gaussian, metres.
    pub sigma_m: f64,
    /// Relative weight among hotspots.
    pub weight: f64,
}

/// City-specific constants consumed by the marketplace's surge engine.
/// Defined here (plain data) so the `marketplace` crate stays city-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurgeTuning {
    /// Demand/supply utilisation above which surge begins.
    pub utilisation_threshold: f64,
    /// Multiplier gained per unit of excess utilisation.
    pub utilisation_gain: f64,
    /// Multiplier gained per minute of EWT above `ewt_floor_min`.
    pub ewt_gain: f64,
    /// EWT (minutes) below which wait times contribute nothing.
    pub ewt_floor_min: f64,
    /// Std-dev of the zero-mean noise added each recomputation; this is
    /// what makes most surges last a single 5-minute interval (Fig. 13).
    pub noise_sigma: f64,
    /// Hard cap on the multiplier (paper observed 2.8 in MHTN, 4.1 in SF).
    pub max_multiplier: f64,
}

impl SurgeTuning {
    /// A neutral tuning used by unit tests.
    pub fn default_test() -> Self {
        SurgeTuning {
            utilisation_threshold: 0.7,
            utilisation_gain: 2.0,
            ewt_gain: 0.15,
            ewt_floor_min: 4.0,
            noise_sigma: 0.15,
            max_multiplier: 4.5,
        }
    }
}

/// A complete model of one study city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityModel {
    /// City name ("Midtown Manhattan", "Downtown San Francisco").
    pub name: String,
    /// Projection tying the planar frame to real coordinates.
    pub projection: LocalProjection,
    /// Full service region (cars exist and trips happen anywhere in here).
    pub service_region: Polygon,
    /// The sub-region blanketed by measurement clients (paper Fig. 3).
    pub measurement_region: Polygon,
    /// Client lattice spacing used in the paper (200 m MHTN, 350 m SF).
    pub client_spacing_m: f64,
    /// Surge areas partitioning the service region.
    pub areas: Vec<SurgeArea>,
    /// `adjacency[i]` lists the areas sharing a border with area `i`.
    pub adjacency: Vec<Vec<AreaId>>,
    /// Demand-origin hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Driving speed (m/s) over the day — slower at rush hour.
    pub drive_speed: DiurnalCurve,
    /// Region-wide ride-request intensity.
    pub demand: DemandProfile,
    /// Driver-availability schedule.
    pub supply: SupplyProfile,
    /// Fraction of the fleet in each product tier (sums to 1).
    pub fleet_mix: Vec<(CarType, f64)>,
    /// Fare schedule per tier.
    pub fares: Vec<(CarType, FareSchedule)>,
    /// Surge-engine tuning for this city.
    pub surge_tuning: SurgeTuning,
}

impl CityModel {
    /// Validates the internal consistency of a model. Called by the
    /// builders; exposed for tests of custom cities.
    pub fn validate(&self) {
        assert_eq!(self.areas.len(), self.adjacency.len(), "adjacency size mismatch");
        let mix_sum: f64 = self.fleet_mix.iter().map(|(_, f)| f).sum();
        assert!((mix_sum - 1.0).abs() < 1e-6, "fleet mix sums to {mix_sum}");
        for (i, neighbours) in self.adjacency.iter().enumerate() {
            for n in neighbours {
                assert!(n.0 < self.areas.len(), "dangling adjacency");
                assert_ne!(n.0, i, "area adjacent to itself");
                assert!(
                    self.adjacency[n.0].contains(&AreaId(i)),
                    "adjacency not symmetric between {i} and {}",
                    n.0
                );
            }
        }
        assert!(self.client_spacing_m > 0.0);
    }

    /// The surge area containing a planar point, if any. Areas are
    /// disjoint by construction, so the first hit wins.
    pub fn area_of(&self, p: Meters) -> Option<AreaId> {
        self.areas.iter().find(|a| a.polygon.contains(p)).map(|a| a.id)
    }

    /// Geographic version of [`CityModel::area_of`].
    pub fn area_of_latlng(&self, p: LatLng) -> Option<AreaId> {
        self.area_of(self.projection.to_meters(p))
    }

    /// Whether two areas share a border.
    pub fn areas_adjacent(&self, a: AreaId, b: AreaId) -> bool {
        self.adjacency.get(a.0).map_or(false, |v| v.contains(&b))
    }

    /// Samples a point inside the service region, biased toward hotspots:
    /// with probability `hotspot_bias` draw from the hotspot mixture
    /// (rejection-sampled into the region), otherwise uniform over the
    /// region's bounding box (rejected into the polygon).
    pub fn sample_point(&self, rng: &mut SimRng, hotspot_bias: f64) -> Meters {
        if !self.hotspots.is_empty() && rng.chance(hotspot_bias) {
            let weights: Vec<f64> = self.hotspots.iter().map(|h| h.weight).collect();
            if let Some(idx) = rng.choose_weighted_index(&weights) {
                let h = &self.hotspots[idx];
                for _ in 0..32 {
                    let p = Meters::new(
                        rng.normal(h.center.x, h.sigma_m),
                        rng.normal(h.center.y, h.sigma_m),
                    );
                    if self.service_region.contains(p) {
                        return p;
                    }
                }
                // Hotspot hugs the boundary: fall through to uniform.
            }
        }
        self.sample_uniform(rng)
    }

    /// Samples uniformly within the service region.
    pub fn sample_uniform(&self, rng: &mut SimRng) -> Meters {
        let bb = self.service_region.bbox();
        loop {
            let p = Meters::new(
                rng.range_f64(bb.min.x, bb.max.x),
                rng.range_f64(bb.min.y, bb.max.y),
            );
            if self.service_region.contains(p) {
                return p;
            }
        }
    }

    /// Driving speed in m/s at a simulated instant.
    pub fn drive_speed_mps(&self, t: SimTime) -> f64 {
        self.drive_speed.at_hour(t.hour_of_day_f64()).max(1.0)
    }

    /// Driving time in seconds between two planar points at time `t`,
    /// with a rectilinear (Manhattan-distance) detour factor — streets are
    /// grids, not geodesics.
    pub fn drive_time_secs(&self, from: Meters, to: Meters, t: SimTime) -> f64 {
        let l1 = (from.x - to.x).abs() + (from.y - to.y).abs();
        l1 / self.drive_speed_mps(t)
    }

    /// Fare schedule for a tier (falls back to the UberX schedule).
    pub fn fare_schedule(&self, car_type: CarType) -> FareSchedule {
        self.fares
            .iter()
            .find(|(t, _)| *t == car_type)
            .map(|(_, f)| *f)
            .unwrap_or_else(FareSchedule::uberx_2015)
    }

    /// Draws a tier from the fleet mix.
    pub fn sample_car_type(&self, rng: &mut SimRng) -> CarType {
        let weights: Vec<f64> = self.fleet_mix.iter().map(|(_, f)| *f).collect();
        match rng.choose_weighted_index(&weights) {
            Some(i) => self.fleet_mix[i].0,
            None => CarType::UberX,
        }
    }

    /// Number of surge areas.
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_models_validate() {
        CityModel::manhattan_midtown().validate();
        CityModel::san_francisco_downtown().validate();
    }

    #[test]
    fn areas_partition_measurement_region() {
        for city in [CityModel::manhattan_midtown(), CityModel::san_francisco_downtown()] {
            let mut rng = SimRng::seed_from_u64(1);
            for _ in 0..500 {
                let p = city.sample_uniform(&mut rng);
                if city.measurement_region.contains(p) {
                    assert!(
                        city.area_of(p).is_some(),
                        "{}: point {p:?} in measurement region but no surge area",
                        city.name
                    );
                }
            }
        }
    }

    #[test]
    fn areas_are_disjoint() {
        for city in [CityModel::manhattan_midtown(), CityModel::san_francisco_downtown()] {
            let mut rng = SimRng::seed_from_u64(2);
            for _ in 0..500 {
                let p = city.sample_uniform(&mut rng);
                let hits = city.areas.iter().filter(|a| a.polygon.contains(p)).count();
                assert!(hits <= 1, "{}: point in {hits} areas", city.name);
            }
        }
    }

    #[test]
    fn adjacency_reflects_geometry() {
        let city = CityModel::manhattan_midtown();
        // Every area must have at least one neighbour in a 4-area city.
        for (i, n) in city.adjacency.iter().enumerate() {
            assert!(!n.is_empty(), "area {i} has no neighbours");
        }
    }

    #[test]
    fn sample_point_respects_region() {
        let city = CityModel::san_francisco_downtown();
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..300 {
            let p = city.sample_point(&mut rng, 0.7);
            assert!(city.service_region.contains(p));
        }
    }

    #[test]
    fn hotspot_bias_concentrates_points() {
        let city = CityModel::manhattan_midtown();
        let mut rng = SimRng::seed_from_u64(4);
        let h = &city.hotspots[0];
        let near = |pts: &[Meters]| {
            pts.iter().filter(|p| p.dist(h.center) < 2.0 * h.sigma_m).count() as f64
                / pts.len() as f64
        };
        let biased: Vec<Meters> = (0..800).map(|_| city.sample_point(&mut rng, 1.0)).collect();
        let uniform: Vec<Meters> = (0..800).map(|_| city.sample_uniform(&mut rng)).collect();
        assert!(
            near(&biased) > near(&uniform),
            "hotspot sampling should concentrate mass near {}",
            h.name
        );
    }

    #[test]
    fn drive_time_uses_rectilinear_distance() {
        let city = CityModel::manhattan_midtown();
        let t = SimTime::EPOCH;
        let a = Meters::new(0.0, 0.0);
        let b = Meters::new(300.0, 400.0);
        let expected = 700.0 / city.drive_speed_mps(t);
        assert!((city.drive_time_secs(a, b, t) - expected).abs() < 1e-9);
    }

    #[test]
    fn rush_hour_is_slower() {
        let city = CityModel::manhattan_midtown();
        let rush = SimTime(8 * 3600 + 1800);
        let night = SimTime(4 * 3600);
        assert!(city.drive_speed_mps(rush) < city.drive_speed_mps(night));
    }

    #[test]
    fn car_type_sampling_matches_mix() {
        let city = CityModel::manhattan_midtown();
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let x_count = (0..n)
            .filter(|_| city.sample_car_type(&mut rng) == CarType::UberX)
            .count();
        let x_frac = city
            .fleet_mix
            .iter()
            .find(|(t, _)| *t == CarType::UberX)
            .map(|(_, f)| *f)
            .unwrap();
        let got = x_count as f64 / n as f64;
        assert!((got - x_frac).abs() < 0.02, "expected {x_frac}, got {got}");
    }

    #[test]
    fn area_of_latlng_consistent_with_planar() {
        let city = CityModel::manhattan_midtown();
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..100 {
            let p = city.sample_uniform(&mut rng);
            let ll = city.projection.to_latlng(p);
            assert_eq!(city.area_of(p), city.area_of_latlng(ll));
        }
    }
}
