//! Counting-allocator proof that the tick hot path is allocation-free in
//! steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; once the
//! arenas and scratch buffers have grown to the fleet's high-water mark,
//! the snapshot path (release + re-capture into the arena) and the full
//! per-tick ping path (`ping_all_into` with a reused observation buffer)
//! must perform **zero** heap allocations per tick. A regression here
//! silently reintroduces the per-tick `Vec` churn this pipeline was built
//! to remove, so clean windows are pinned to exactly 0, not to a budget.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use surgescope_api::{ApiService, ProtocolEra, WorldSnapshot};
use surgescope_city::CityModel;
use surgescope_core::calibration::placement;
use surgescope_core::{ClientSpec, MeasuredSystem, UberSystem};
use surgescope_marketplace::{Marketplace, MarketplaceConfig};
use surgescope_simcore::SimDuration;

struct Counting;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic side effect with no bearing on the returned memory.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn sf_system_with_clients() -> (UberSystem, Vec<ClientSpec>) {
    let city = CityModel::san_francisco_downtown();
    let clients = placement(&city.measurement_region, city.client_spacing_m);
    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), 2026);
    // Let the fleet ramp toward its operating size before measuring.
    mp.run_for(SimDuration::hours(2));
    let sys = UberSystem::new(mp, ApiService::new(ProtocolEra::Apr2015, 2026));
    (sys, clients)
}

/// Both phases run inside one `#[test]` body: the counter is process
/// global, so two tests on libtest's parallel threads would race their
/// allocations into each other's measured windows.
#[test]
fn tick_hot_path_allocates_zero() {
    snapshot_recapture_allocates_zero();
    steady_state_ping_path_allocates_zero();
}

/// Re-capturing a snapshot of an unchanged world into an already-sized
/// arena allocates nothing — the tier buckets, car vectors, grid slabs
/// and surge `Arc`s are all reused in place.
fn snapshot_recapture_allocates_zero() {
    let (sys, _clients) = sf_system_with_clients();
    let mut snap = WorldSnapshot::of(&sys.marketplace);
    // One warm re-capture: the first pass after construction reserves
    // every bucket to the fleet-total high-water hint (a one-time cost);
    // from then on the shell is at capacity.
    snap.release_cars();
    snap.capture(&sys.marketplace);
    for round in 0..50 {
        let before = allocs();
        snap.release_cars();
        snap.capture(&sys.marketplace);
        let after = allocs();
        assert_eq!(
            after - before,
            0,
            "snapshot re-capture round {round} allocated {} times",
            after - before
        );
    }
}

/// After warmup, a full tick's measurement side — snapshot capture into
/// the arena plus every client ping answered into the reused observation
/// buffer — allocates nothing. (The world tick itself is excluded: driver
/// arrivals and trip assignment legitimately allocate.)
///
/// The fleet ramps with the demand curve and keeps setting size records
/// at a slowly decaying rate, and each record is one legitimate arena
/// growth event — so no *fixed* window is guaranteed clean. Instead we
/// scan consecutive 200-tick windows until one performs zero allocations
/// (the steady-state claim), while bounding every window's dirty ticks to
/// a handful (a per-tick-churn regression dirties all 200 and can never
/// produce a clean window).
fn steady_state_ping_path_allocates_zero() {
    let (mut sys, clients) = sf_system_with_clients();
    let mut obs = Vec::new();
    // Warmup ticks: grow every buffer (arena, scratch, observation
    // vectors) toward its high-water mark for this fleet. The run is
    // fully deterministic (fixed seed, serial path), so the window scan
    // below always converges at the same tick.
    for _ in 0..600 {
        sys.advance_tick();
        sys.ping_all_into(&clients, &mut obs);
    }
    let mut clean_window = false;
    for window in 0..10 {
        let mut dirty_ticks = 0u64;
        let mut total = 0u64;
        for _ in 0..200 {
            sys.advance_tick();
            let before = allocs();
            sys.ping_all_into(&clients, &mut obs);
            let after = allocs();
            if after != before {
                dirty_ticks += 1;
                total += after - before;
            }
        }
        if dirty_ticks == 0 {
            clean_window = true;
            break;
        }
        assert!(
            dirty_ticks <= 3,
            "window {window}: {dirty_ticks}/200 ticks allocated ({total} allocations) — \
             that is per-tick churn, not amortized arena growth"
        );
    }
    assert!(
        clean_window,
        "no 200-tick window was allocation-free within 2000 steady-state ticks"
    );
}
