//! Shared fixtures for the Criterion benchmarks.
//!
//! The figure benchmarks measure each experiment's *analysis pipeline*
//! over a shared miniature campaign (building a campaign per Criterion
//! iteration would measure the simulator, not the analysis, and take
//! hours). The campaign is built once per process via [`mini_campaign`];
//! component benches construct their own inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;
use surgescope_api::ProtocolEra;
use surgescope_city::CityModel;
use surgescope_core::estimate::{EstimatorConfig, SupplyDemandEstimator};
use surgescope_core::{Campaign, CampaignConfig, CampaignData};
use surgescope_taxi::{TaxiGroundTruth, TraceGenerator};

static CAMPAIGN: OnceLock<CampaignData> = OnceLock::new();
static TAXI: OnceLock<(SupplyDemandEstimator, TaxiGroundTruth)> = OnceLock::new();

/// A 4-hour, 35%-scale SF campaign shared by every figure benchmark.
/// SF is chosen because it surges often, so every analysis has data.
pub fn mini_campaign() -> &'static CampaignData {
    CAMPAIGN.get_or_init(|| {
        let cfg = CampaignConfig {
            hours: 4,
            era: ProtocolEra::Apr2015,
            scale: 0.35,
            ..CampaignConfig::test_default(808)
        };
        Campaign::run_uber(CityModel::san_francisco_downtown(), &cfg)
    })
}

/// A miniature taxi validation shared by the fig04 benchmark.
pub fn mini_taxi() -> &'static (SupplyDemandEstimator, TaxiGroundTruth) {
    TAXI.get_or_init(|| {
        let city = CityModel::manhattan_midtown();
        let trace = TraceGenerator { taxis: 80, days: 1, ..Default::default() }
            .generate(&city, 808);
        Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            200.0,
            12,
            808,
            EstimatorConfig::default(),
        )
    })
}
