//! `serve_load` — closed-loop load generator against a running
//! `surgescope-serve` endpoint (e.g. `repro --serve 127.0.0.1:0`).
//!
//! Drives N connections of paced free-mode pings for a fixed duration and
//! prints the client-side report (throughput + latency percentiles) as
//! JSON on stdout. Exits non-zero if no request succeeded or any request
//! failed, so CI can use a short burst as a smoke gate:
//!
//! ```text
//! cargo run --release -p surgescope-bench --bin serve_load -- \
//!     --addr 127.0.0.1:PORT --conns 4 --rps 200 --secs 2
//! ```

use std::time::Duration;
use surgescope_geo::LatLng;
use surgescope_serve::{run_load, LoadConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve_load --addr HOST:PORT [--conns N] [--rps N] [--secs S]\n\
         \n\
         options:\n\
         \x20 --addr A   server address (required)\n\
         \x20 --conns N  concurrent connections (default 4)\n\
         \x20 --rps N    target requests/second per connection (default 200;\n\
         \x20            0 = unpaced, as fast as the closed loop allows)\n\
         \x20 --secs S   wall-clock duration of the run (default 2)"
    );
    std::process::exit(2);
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    })
}

fn main() {
    let mut addr: Option<String> = None;
    let mut conns = 4usize;
    let mut rps = 200u64;
    let mut secs = 2.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(value_of(&mut it, "--addr")),
            "--conns" => {
                conns = value_of(&mut it, "--conns").parse().ok().filter(|&n| n >= 1).unwrap_or_else(
                    || {
                        eprintln!("--conns needs a positive integer");
                        std::process::exit(2);
                    },
                )
            }
            "--rps" => {
                rps = value_of(&mut it, "--rps").parse().unwrap_or_else(|_| {
                    eprintln!("--rps needs a non-negative integer");
                    std::process::exit(2);
                })
            }
            "--secs" => {
                secs = value_of(&mut it, "--secs")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--secs needs a positive number");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        usage();
    };

    let cfg = LoadConfig {
        addr,
        conns,
        req_per_sec: rps,
        duration: Duration::from_secs_f64(secs),
        // SF downtown center — inside every free world's measurement region.
        location: LatLng::new(37.7749, -122.4194),
    };
    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_load: {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };

    println!(
        "{{\n  \"addr\": \"{}\",\n  \"conns\": {},\n  \"rps_per_conn\": {},\n  \
         \"wall_secs\": {:.3},\n  \"requests\": {},\n  \"errors\": {},\n  \
         \"requests_per_sec\": {:.1},\n  \"p50_us\": {},\n  \"p90_us\": {},\n  \
         \"p99_us\": {},\n  \"max_us\": {}\n}}",
        cfg.addr,
        cfg.conns,
        cfg.req_per_sec,
        report.wall_secs,
        report.requests,
        report.errors,
        report.requests_per_sec,
        report.p50_us,
        report.p90_us,
        report.p99_us,
        report.max_us,
    );
    if report.requests == 0 || report.errors > 0 {
        eprintln!(
            "serve_load: FAILED ({} successful requests, {} errors)",
            report.requests, report.errors
        );
        std::process::exit(1);
    }
}
