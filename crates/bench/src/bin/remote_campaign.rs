//! `remote_campaign` — run one measurement campaign and write its
//! encoded [`CampaignData`] bytes to a file.
//!
//! With `--remote ADDR` the campaign is measured **over the wire**
//! against a `surgescope-serve` endpoint (a lockstep party of `--conns`
//! sockets); without it the same config runs in-process. The output is
//! `persist::campaign_encoded` — floats as raw IEEE-754 bits — so a
//! plain `cmp` of the two files is the serving layer's byte-identity
//! gate:
//!
//! ```text
//! remote_campaign --out local.bin  --seed 70931 --faulted
//! remote_campaign --out remote.bin --seed 70931 --faulted \
//!     --remote 127.0.0.1:PORT --conns 2
//! cmp local.bin remote.bin
//! ```

use std::path::PathBuf;
use surgescope_city::CityModel;
use surgescope_core::persist::campaign_encoded;
use surgescope_core::{CampaignConfig, CampaignRunner, ChaosSpec, RemoteOptions};
use surgescope_serve::ChaosPlan;
use surgescope_simcore::FaultPlan;

fn usage() -> ! {
    eprintln!(
        "usage: remote_campaign --out PATH [--seed N] [--hours N]\n\
         \x20                      [--remote ADDR [--conns K] [--chaos SEED]]\n\
         \x20                      [--faulted]\n\
         \n\
         options:\n\
         \x20 --out P       write the encoded CampaignData bytes to P (required)\n\
         \x20 --seed N      campaign seed (default 70931)\n\
         \x20 --hours N     simulated hours (default 1 = 720 ticks)\n\
         \x20 --remote A    measure over the wire against the server at A\n\
         \x20               (default: in-process)\n\
         \x20 --conns K     lockstep connections for --remote (default 2)\n\
         \x20 --chaos SEED  sabotage the remote connections with the seeded\n\
         \x20               reference fault schedule (resets, truncations,\n\
         \x20               stalls); the retry layer must still produce\n\
         \x20               byte-identical output (requires --remote)\n\
         \x20 --faulted     apply the reference fault plan (5% drops,\n\
         \x20               15% delays up to 20s)"
    );
    std::process::exit(2);
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    })
}

fn parsed<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    value_of(it, flag).parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a number");
        std::process::exit(2);
    })
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut seed = 70_931u64;
    let mut hours = 1u64;
    let mut remote: Option<String> = None;
    let mut conns = 2usize;
    let mut chaos: Option<u64> = None;
    let mut faulted = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(value_of(&mut it, "--out"))),
            "--seed" => seed = parsed(&mut it, "--seed"),
            "--hours" => hours = parsed(&mut it, "--hours"),
            "--remote" => remote = Some(value_of(&mut it, "--remote")),
            "--conns" => conns = parsed(&mut it, "--conns"),
            "--chaos" => chaos = Some(parsed(&mut it, "--chaos")),
            "--faulted" => faulted = true,
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(out) = out else {
        eprintln!("--out is required");
        usage();
    };
    if chaos.is_some() && remote.is_none() {
        eprintln!("--chaos only makes sense with --remote (there is no wire to sabotage)");
        usage();
    };

    // Mirrors the `remote_lockstep` test config: small coarse-lattice SF
    // campaign where interval probes, flushes and delayed responses all
    // still fire.
    let mut cfg = CampaignConfig::test_default(seed);
    cfg.hours = hours;
    cfg.scale = 0.25;
    cfg.spacing_override_m = Some(500.0);
    if faulted {
        cfg.faults = FaultPlan { drop_chance: 0.05, delay_chance: 0.15, max_delay_secs: 20 };
    }

    let city = CityModel::san_francisco_downtown();
    let mode = remote.as_deref().map_or("in-process".to_string(), |a| format!("remote via {a}"));
    let mut runner = match &remote {
        Some(addr) => {
            let options = RemoteOptions {
                chaos: chaos.map(|seed| ChaosSpec { seed, plan: ChaosPlan::reference() }),
                ..RemoteOptions::default()
            };
            CampaignRunner::new_remote_with(city, &cfg, addr, conns, options)
        }
        None => CampaignRunner::new(city, &cfg),
    }
    .unwrap_or_else(|e| {
        eprintln!("remote_campaign: cannot start {mode} campaign: {e}");
        std::process::exit(1);
    });
    let data = runner
        .run_to_end()
        .map(|()| {
            if chaos.is_some() {
                let snap = runner.metrics_snapshot();
                let n = |k: &str| snap.value(k).unwrap_or(0);
                eprintln!(
                    "remote_campaign[chaos]: {} resets, {} truncations, {} stalls injected; \
                     {} reconnects, {} retries, {} breaker trips",
                    n("resilience.chaos_resets"),
                    n("resilience.chaos_truncations"),
                    n("resilience.chaos_stalls"),
                    n("resilience.reconnects"),
                    n("resilience.retries"),
                    n("resilience.breaker_trips"),
                );
            }
        })
        .and_then(|()| runner.finish())
        .unwrap_or_else(|e| {
            eprintln!("remote_campaign: {mode} campaign failed: {e}");
            std::process::exit(1);
        });
    let bytes = campaign_encoded(&data);
    if let Err(e) = std::fs::write(&out, &bytes) {
        eprintln!("remote_campaign: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!(
        "remote_campaign[{mode}]: {} ticks, {} clients -> {} ({} bytes)",
        data.ticks,
        data.clients.len(),
        out.display(),
        bytes.len(),
    );
}
