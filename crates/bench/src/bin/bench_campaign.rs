//! End-to-end campaign throughput benchmark.
//!
//! Runs a seeded SF-downtown measurement campaign twice — once clean,
//! once under a faulted transport (drops + delays through the in-flight
//! queue) — and writes `BENCH_campaign.json` (wall time, tick throughput,
//! fleet sizes, both datapoints) to the current directory. Run it from the
//! repository root to refresh the checked-in numbers:
//!
//! ```text
//! cargo run --release -p surgescope-bench --bin bench_campaign
//! ```

use std::time::Instant;
use surgescope_api::ProtocolEra;
use surgescope_city::CityModel;
use surgescope_core::persist::replay_campaign;
use surgescope_core::{CampaignConfig, CampaignRunner};
use surgescope_simcore::FaultPlan;

struct Datapoint {
    label: &'static str,
    clients: usize,
    ticks: usize,
    wall_secs: f64,
    ticks_per_sec: f64,
    gap_frac: f64,
    /// Full obs snapshot (deterministic counters + wall-clock phase
    /// timers), rendered as a JSON object.
    metrics: String,
}

fn run(label: &'static str, faults: FaultPlan, threads: usize) -> Datapoint {
    let cfg = CampaignConfig {
        hours: 2,
        era: ProtocolEra::Apr2015,
        scale: 1.0,
        parallelism: threads,
        faults,
        ..CampaignConfig::test_default(2026)
    };
    let start = Instant::now();
    let mut runner = CampaignRunner::new(CityModel::san_francisco_downtown(), &cfg)
        .expect("memory-only campaign");
    runner.run_to_end().expect("memory-only campaign");
    let metrics = runner.metrics_snapshot().to_json();
    let data = runner.finish().expect("memory-only campaign");
    let wall_secs = start.elapsed().as_secs_f64();
    let total = (data.ticks * data.clients.len()) as f64;
    let gaps = data
        .client_surge
        .iter()
        .flatten()
        .filter(|v| v.is_nan())
        .count() as f64;
    Datapoint {
        label,
        clients: data.clients.len(),
        ticks: data.ticks,
        wall_secs,
        ticks_per_sec: data.ticks as f64 / wall_secs,
        gap_frac: gaps / total.max(1.0),
        metrics,
    }
}

/// Runs the same campaign streamed into an event log, then times the
/// deterministic replay of that log back into a `CampaignData` — the
/// store layer's read path, with no simulation in the loop.
struct ReplayPoint {
    logged_wall_secs: f64,
    replay_wall_secs: f64,
    replay_ticks_per_sec: f64,
    log_bytes: u64,
    log_bytes_per_tick: f64,
}

fn run_replay(threads: usize) -> ReplayPoint {
    let log = std::env::temp_dir().join(format!("bench-campaign-{}.sslog", std::process::id()));
    let mut cfg = CampaignConfig {
        hours: 2,
        era: ProtocolEra::Apr2015,
        scale: 1.0,
        parallelism: threads,
        ..CampaignConfig::test_default(2026)
    };
    cfg.store.log_path = Some(log.clone());
    let start = Instant::now();
    let mut runner = CampaignRunner::new(CityModel::san_francisco_downtown(), &cfg)
        .expect("open bench log");
    runner.run_to_end().expect("stream bench log");
    let data = runner.finish().expect("seal bench log");
    let logged_wall_secs = start.elapsed().as_secs_f64();

    let log_bytes = std::fs::metadata(&log).map_or(0, |m| m.len());
    let start = Instant::now();
    let replayed = replay_campaign(&log).expect("replay bench log");
    let replay_wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        surgescope_core::persist::campaign_encoded(&replayed),
        surgescope_core::persist::campaign_encoded(&data),
        "replay must reconstruct the logged campaign bit-for-bit"
    );
    let _ = std::fs::remove_file(&log);
    ReplayPoint {
        logged_wall_secs,
        replay_wall_secs,
        replay_ticks_per_sec: data.ticks as f64 / replay_wall_secs.max(1e-9),
        log_bytes,
        log_bytes_per_tick: log_bytes as f64 / data.ticks.max(1) as f64,
    }
}

/// Cross-campaign scheduler throughput: N distinct small campaigns
/// drained from a shared work queue by `jobs` workers into one
/// thread-safe cache — the exact shape of `repro --jobs N`'s prefetch.
struct SchedulerPoint {
    jobs: usize,
    campaigns: usize,
    wall_secs: f64,
    campaigns_per_min: f64,
}

fn run_scheduler(jobs: usize) -> SchedulerPoint {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use surgescope_experiments::cache::{CampaignCache, City};
    use surgescope_experiments::schedule::{order_longest_first, Prefetch};
    use surgescope_experiments::RunCtx;
    // Distinct seeds ⇒ distinct cache keys ⇒ no dedup: every task is a
    // full simulation. Inner parallelism pinned to 1 so the scheduler's
    // scaling is measured, not the tick fan-out's. Mixed durations so
    // longest-job-first has something to reorder — the long campaign
    // must start first or it serializes the tail.
    let mut tasks: Vec<Prefetch> = (0..4)
        .map(|i| {
            Prefetch::Campaign(
                City::SanFrancisco,
                CampaignConfig {
                    hours: if i == 0 { 2 } else { 1 },
                    era: ProtocolEra::Apr2015,
                    scale: 0.5,
                    parallelism: 1,
                    ..CampaignConfig::test_default(3000 + i)
                },
            )
        })
        .collect();
    let n = tasks.len();
    let ctx = RunCtx::quick(2026); // no out_dir ⇒ memory-only cache
    order_longest_first(&mut tasks, &ctx);
    let cache = CampaignCache::new();
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(Prefetch::Campaign(city, cfg)) = tasks.get(i) else { break };
                cache.campaign_custom(*city, cfg.clone(), &ctx);
            });
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();
    SchedulerPoint {
        jobs,
        campaigns: n,
        wall_secs,
        campaigns_per_min: n as f64 / wall_secs.max(1e-9) * 60.0,
    }
}

/// Serving-layer throughput: an in-process loopback server hosting a
/// free-running world, hammered by the closed-loop load generator for a
/// short burst. Client-side latency percentiles; server-side frame-error
/// count (must be zero — the load generator only sends well-formed
/// frames).
struct ServePoint {
    conns: usize,
    wall_secs: f64,
    requests: u64,
    errors: u64,
    requests_per_sec: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    frame_errors: u64,
}

fn run_serve(conns: usize) -> ServePoint {
    use surgescope_geo::LatLng;
    use surgescope_serve::{run_load, FreeWorldSpec, LoadConfig, ServeConfig, Server};
    let spec = FreeWorldSpec {
        city: CityModel::san_francisco_downtown(),
        scale: 0.5,
        seed: 2026,
        era: ProtocolEra::Apr2015,
        warmup_hours: 1,
        tick_ms: None,
    };
    let mut server = Server::bind("127.0.0.1:0", ServeConfig { free: Some(spec), ..Default::default() })
        .expect("bind loopback server");
    let cfg = LoadConfig {
        addr: server.local_addr().to_string(),
        conns,
        // Unpaced: each connection's closed loop runs as fast as the
        // server answers, so the burst measures capacity, not the pacer.
        req_per_sec: 0,
        duration: std::time::Duration::from_secs(2),
        location: LatLng::new(37.7749, -122.4194),
    };
    let report = run_load(&cfg).expect("loopback load run");
    server.shutdown();
    let frame_errors = server.metrics().frame_errors.get();
    assert_eq!(frame_errors, 0, "well-formed load traffic must not raise frame errors");
    ServePoint {
        conns,
        wall_secs: report.wall_secs,
        requests: report.requests,
        errors: report.errors,
        requests_per_sec: report.requests_per_sec,
        p50_us: report.p50_us,
        p90_us: report.p90_us,
        p99_us: report.p99_us,
        frame_errors,
    }
}

/// Resilience layer under chaos: a remote campaign against a loopback
/// server whose connections are sabotaged by the seeded reference fault
/// schedule. Records how many reconnects the retry layer absorbed and
/// the reconnect-recovery latency percentiles (connect + HELLO + RESUME,
/// read from the `resilience.reconnect_us` timing buckets) — the price
/// of surviving a flaky wire without losing a byte.
struct ResiliencePoint {
    conns: usize,
    wall_secs: f64,
    reconnects: u64,
    retries: u64,
    breaker_trips: u64,
    p50_us: Option<u64>,
    p90_us: Option<u64>,
    p99_us: Option<u64>,
}

/// Approximate percentile from a snapshot's `{name}.le_*` / `{name}.inf`
/// timing buckets: the smallest bucket bound covering quantile `q`
/// (records above every bound report the top bound).
fn bucket_percentile(timing: &[(String, u64)], name: &str, q: f64) -> Option<u64> {
    let prefix = format!("{name}.le_");
    let mut buckets: Vec<(u64, u64)> = timing
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix(&prefix).and_then(|b| b.parse().ok()).map(|b| (b, *v))
        })
        .collect();
    buckets.sort_unstable();
    let inf = format!("{name}.inf");
    let overflow = timing.iter().find(|(k, _)| *k == inf).map_or(0, |(_, v)| *v);
    let total: u64 = buckets.iter().map(|(_, c)| c).sum::<u64>() + overflow;
    if total == 0 {
        return None;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (bound, count) in &buckets {
        cum += count;
        if cum >= target {
            return Some(*bound);
        }
    }
    buckets.last().map(|(bound, _)| *bound)
}

fn run_resilience(conns: usize) -> ResiliencePoint {
    use surgescope_core::{ChaosSpec, RemoteOptions};
    use surgescope_serve::{ChaosPlan, ServeConfig, Server};
    let mut server =
        Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind loopback server");
    let addr = server.local_addr().to_string();
    // The lockstep gate's campaign shape: small coarse-lattice SF hour.
    let mut cfg = CampaignConfig::test_default(2026);
    cfg.hours = 1;
    cfg.scale = 0.25;
    cfg.spacing_override_m = Some(500.0);
    let options = RemoteOptions {
        chaos: Some(ChaosSpec { seed: 0xBE2C, plan: ChaosPlan::reference() }),
        ..RemoteOptions::default()
    };
    let start = Instant::now();
    let mut runner = CampaignRunner::new_remote_with(
        CityModel::san_francisco_downtown(),
        &cfg,
        &addr,
        conns,
        options,
    )
    .expect("chaotic loopback campaign");
    runner.run_to_end().expect("chaotic loopback campaign");
    let snap = runner.metrics_snapshot();
    runner.finish().expect("chaotic loopback campaign");
    let wall_secs = start.elapsed().as_secs_f64();
    server.shutdown();
    let n = |k: &str| snap.value(k).unwrap_or(0);
    ResiliencePoint {
        conns,
        wall_secs,
        reconnects: n("resilience.reconnects"),
        retries: n("resilience.retries"),
        breaker_trips: n("resilience.breaker_trips"),
        p50_us: bucket_percentile(&snap.timing, "resilience.reconnect_us", 0.50),
        p90_us: bucket_percentile(&snap.timing, "resilience.reconnect_us", 0.90),
        p99_us: bucket_percentile(&snap.timing, "resilience.reconnect_us", 0.99),
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Warmup: one short untimed campaign so the timed runs measure the
    // steady state (page cache, allocator arenas, branch predictors hot)
    // instead of process cold-start.
    run("warmup", FaultPlan::none(), threads);
    let points = [
        run("clean", FaultPlan::none(), threads),
        // The faulted datapoint prices the transport layer itself: fault
        // draws, the in-flight queue, and NaN gap accounting.
        run(
            "faulted",
            FaultPlan { drop_chance: 0.10, delay_chance: 0.10, max_delay_secs: 30 },
            threads,
        ),
    ];
    let replay = run_replay(threads);
    // Scheduler scaling at jobs ∈ {1, 2, 4}. On a single-core host the
    // curve is flat by physics; the ratios below record what this
    // machine actually delivers.
    let sched = [run_scheduler(1), run_scheduler(2), run_scheduler(4)];
    // Serving layer: one 2-second unpaced burst against a loopback server.
    let serve = run_serve(4.min(threads.max(1)));
    // Resilience layer: the same loopback wiring with chaos injected.
    let resil = run_resilience(2);

    let mut runs = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            runs.push_str(",\n");
        }
        runs.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"wall_secs\": {:.3},\n      \
             \"ticks_per_sec\": {:.2},\n      \"gap_frac\": {:.4},\n      \
             \"metrics\": {}\n    }}",
            p.label, p.wall_secs, p.ticks_per_sec, p.gap_frac, p.metrics,
        ));
    }
    let mut sched_json = String::new();
    for (i, p) in sched.iter().enumerate() {
        if i > 0 {
            sched_json.push_str(",\n");
        }
        sched_json.push_str(&format!(
            "    {{\n      \"jobs\": {},\n      \"campaigns\": {},\n      \
             \"wall_secs\": {:.3},\n      \"campaigns_per_min\": {:.2}\n    }}",
            p.jobs, p.campaigns, p.wall_secs, p.campaigns_per_min,
        ));
    }
    let scaling_2j = sched[1].campaigns_per_min / sched[0].campaigns_per_min.max(1e-9);
    let scaling_4j = sched[2].campaigns_per_min / sched[0].campaigns_per_min.max(1e-9);
    let base = &points[0];
    let json = format!(
        "{{\n  \"city\": \"SF Downtown\",\n  \"hours\": 2,\n  \"scale\": 1.0,\n  \
         \"clients\": {clients},\n  \"ticks\": {ticks},\n  \"parallelism\": {threads},\n  \
         \"wall_secs\": {wall:.3},\n  \"ticks_per_sec\": {tps:.2},\n  \"runs\": [\n{runs}\n  ],\n  \
         \"store\": {{\n    \"logged_wall_secs\": {lw:.3},\n    \"replay_wall_secs\": {rw:.3},\n    \
         \"replay_ticks_per_sec\": {rtps:.2},\n    \"log_bytes\": {lb},\n    \
         \"log_bytes_per_tick\": {lbpt:.1}\n  }},\n  \"scheduler\": [\n{sched_json}\n  ],\n  \
         \"scaling_2j\": {s2:.3},\n  \"scaling_4j\": {s4:.3},\n  \"serve\": {{\n    \
         \"conns\": {sv_conns},\n    \"wall_secs\": {sv_wall:.3},\n    \
         \"requests\": {sv_reqs},\n    \"errors\": {sv_errs},\n    \
         \"serve.requests_per_sec\": {sv_rps:.1},\n    \"serve.p50_us\": {sv_p50},\n    \
         \"serve.p90_us\": {sv_p90},\n    \"serve.p99_us\": {sv_p99},\n    \
         \"serve.frame_errors\": {sv_fe}\n  }},\n  \"resilience\": {{\n    \
         \"conns\": {rs_conns},\n    \"wall_secs\": {rs_wall:.3},\n    \
         \"resilience.reconnects\": {rs_rec},\n    \"resilience.retries\": {rs_ret},\n    \
         \"resilience.breaker_trips\": {rs_bt},\n    \
         \"resilience.reconnect_p50_us\": {rs_p50},\n    \
         \"resilience.reconnect_p90_us\": {rs_p90},\n    \
         \"resilience.reconnect_p99_us\": {rs_p99}\n  }}\n}}\n",
        s2 = scaling_2j,
        s4 = scaling_4j,
        rs_conns = resil.conns,
        rs_wall = resil.wall_secs,
        rs_rec = resil.reconnects,
        rs_ret = resil.retries,
        rs_bt = resil.breaker_trips,
        rs_p50 = resil.p50_us.map_or("null".into(), |v| v.to_string()),
        rs_p90 = resil.p90_us.map_or("null".into(), |v| v.to_string()),
        rs_p99 = resil.p99_us.map_or("null".into(), |v| v.to_string()),
        sv_conns = serve.conns,
        sv_wall = serve.wall_secs,
        sv_reqs = serve.requests,
        sv_errs = serve.errors,
        sv_rps = serve.requests_per_sec,
        sv_p50 = serve.p50_us,
        sv_p90 = serve.p90_us,
        sv_p99 = serve.p99_us,
        sv_fe = serve.frame_errors,
        clients = base.clients,
        ticks = base.ticks,
        wall = base.wall_secs,
        tps = base.ticks_per_sec,
        lw = replay.logged_wall_secs,
        rw = replay.replay_wall_secs,
        rtps = replay.replay_ticks_per_sec,
        lb = replay.log_bytes,
        lbpt = replay.log_bytes_per_tick,
    );
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    print!("{json}");
    for p in &points {
        eprintln!(
            "campaign[{}]: {} clients x {} ticks in {:.2}s ({:.1} ticks/s, {threads} threads, {:.1}% gaps)",
            p.label,
            p.clients,
            p.ticks,
            p.wall_secs,
            p.ticks_per_sec,
            p.gap_frac * 100.0,
        );
    }
    eprintln!(
        "campaign[replay]: {} log bytes ({:.1} B/tick) replayed in {:.3}s ({:.0} ticks/s; live+log run took {:.2}s)",
        replay.log_bytes,
        replay.log_bytes_per_tick,
        replay.replay_wall_secs,
        replay.replay_ticks_per_sec,
        replay.logged_wall_secs,
    );
    for p in &sched {
        eprintln!(
            "scheduler[jobs={}]: {} campaigns in {:.2}s ({:.1} campaigns/min)",
            p.jobs, p.campaigns, p.wall_secs, p.campaigns_per_min,
        );
    }
    eprintln!(
        "serve[{} conns]: {} requests in {:.2}s ({:.0} req/s; p50 {}us, p90 {}us, p99 {}us; {} errors, {} frame errors)",
        serve.conns,
        serve.requests,
        serve.wall_secs,
        serve.requests_per_sec,
        serve.p50_us,
        serve.p90_us,
        serve.p99_us,
        serve.errors,
        serve.frame_errors,
    );
    eprintln!(
        "resilience[{} conns, chaos]: {:.2}s wall; {} reconnects, {} retries, {} breaker trips; \
         reconnect p50 {:?}us, p90 {:?}us, p99 {:?}us",
        resil.conns,
        resil.wall_secs,
        resil.reconnects,
        resil.retries,
        resil.breaker_trips,
        resil.p50_us,
        resil.p90_us,
        resil.p99_us,
    );
}
