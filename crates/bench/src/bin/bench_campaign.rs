//! End-to-end campaign throughput benchmark.
//!
//! Runs a seeded SF-downtown measurement campaign and writes
//! `BENCH_campaign.json` (wall time, tick throughput, fleet sizes) to the
//! current directory — run it from the repository root to refresh the
//! checked-in numbers:
//!
//! ```text
//! cargo run --release -p surgescope-bench --bin bench_campaign
//! ```

use std::time::Instant;
use surgescope_api::ProtocolEra;
use surgescope_city::CityModel;
use surgescope_core::{Campaign, CampaignConfig};

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = CampaignConfig {
        hours: 2,
        era: ProtocolEra::Apr2015,
        scale: 1.0,
        parallelism: threads,
        ..CampaignConfig::test_default(2026)
    };

    let city = CityModel::san_francisco_downtown();
    let label = city.name.clone();
    let start = Instant::now();
    let data = Campaign::run_uber(city, &cfg);
    let wall_secs = start.elapsed().as_secs_f64();
    let ticks_per_sec = data.ticks as f64 / wall_secs;

    let json = format!(
        "{{\n  \"city\": \"{label}\",\n  \"hours\": {hours},\n  \"scale\": {scale},\n  \
         \"clients\": {clients},\n  \"ticks\": {ticks},\n  \"parallelism\": {threads},\n  \
         \"wall_secs\": {wall_secs:.3},\n  \"ticks_per_sec\": {ticks_per_sec:.2}\n}}\n",
        hours = cfg.hours,
        scale = cfg.scale,
        clients = data.clients.len(),
        ticks = data.ticks,
    );
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    print!("{json}");
    eprintln!(
        "campaign: {} clients x {} ticks in {wall_secs:.2}s ({ticks_per_sec:.1} ticks/s, {threads} threads)",
        data.clients.len(),
        data.ticks,
    );
}
