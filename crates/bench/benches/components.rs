//! Component-level performance benchmarks: the hot paths of the
//! simulator, the protocol layer and the statistics library.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surgescope_analysis::{ols, pearson, Ecdf, UnionFind};
use surgescope_api::{ApiService, ProtocolEra, WorldSnapshot};
use surgescope_city::{CarType, CityModel};
use surgescope_geo::{grid, LatLng, Meters, Polygon};
use surgescope_marketplace::{Marketplace, MarketplaceConfig};
use surgescope_simcore::{EventQueue, SimDuration, SimRng, SimTime};

fn busy_marketplace() -> Marketplace {
    let mut city = CityModel::san_francisco_downtown();
    city.supply = city.supply.scaled(0.5);
    city.demand = city.demand.scaled(0.5);
    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), 99);
    mp.run_for(SimDuration::hours(9));
    mp
}

fn bench_marketplace(c: &mut Criterion) {
    let mut g = c.benchmark_group("marketplace");

    g.bench_function("tick_rush_hour", |b| {
        let mut mp = busy_marketplace();
        b.iter(|| {
            mp.tick();
            black_box(mp.now())
        })
    });

    g.bench_function("world_snapshot", |b| {
        let mp = busy_marketplace();
        b.iter(|| black_box(WorldSnapshot::of(black_box(&mp))))
    });

    g.bench_function("ping_client", |b| {
        let mp = busy_marketplace();
        let api = ApiService::new(ProtocolEra::Apr2015, 1);
        let snap = WorldSnapshot::of(&mp);
        let loc = mp.city().projection.to_latlng(mp.city().measurement_region.centroid());
        b.iter(|| black_box(api.ping_client(&snap, black_box(7), loc)))
    });

    g.bench_function("ewt_lookup", |b| {
        let mp = busy_marketplace();
        let pos = mp.city().measurement_region.centroid();
        b.iter(|| black_box(mp.ewt_minutes(black_box(pos), CarType::UberX)))
    });

    g.finish();
}

fn bench_geo(c: &mut Criterion) {
    let mut g = c.benchmark_group("geo");

    let a = LatLng::new(40.7580, -73.9855);
    let bb = LatLng::new(40.7680, -73.9755);
    g.bench_function("haversine", |b| {
        b.iter(|| black_box(surgescope_geo::haversine_m(black_box(a), black_box(bb))))
    });

    let poly = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(2200.0, 900.0));
    g.bench_function("point_in_polygon", |b| {
        b.iter(|| black_box(poly.contains(black_box(Meters::new(1100.0, 450.0)))))
    });
    g.bench_function("distance_to_boundary", |b| {
        b.iter(|| black_box(poly.distance_to_boundary(black_box(Meters::new(1100.0, 450.0)))))
    });
    g.bench_function("grid_cover", |b| {
        b.iter(|| black_box(grid::cover_polygon(black_box(&poly), 200.0)))
    });

    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");

    let xs: Vec<f64> = (0..100_000).map(|i| ((i * 2654435761u64) % 1000) as f64).collect();
    g.bench_function("ecdf_build_100k", |b| {
        b.iter(|| black_box(Ecdf::new(xs.clone())))
    });

    let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 3.0).collect();
    g.bench_function("pearson_100k", |b| {
        b.iter(|| black_box(pearson(black_box(&xs[..10_000]), black_box(&ys[..10_000]))))
    });

    let rows: Vec<Vec<f64>> = (0..10_000)
        .map(|i| vec![(i % 100) as f64, (i % 37) as f64, (i % 11) as f64])
        .collect();
    let targets: Vec<f64> = rows.iter().map(|r| 1.0 + r[0] - 0.5 * r[1] + 2.0 * r[2]).collect();
    g.bench_function("ols_fit_10k_x3", |b| {
        b.iter(|| black_box(ols::fit(black_box(&rows), black_box(&targets))))
    });

    g.bench_function("union_find_10k", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(10_000);
            for i in 0..9_999 {
                uf.union(i, i + 1);
            }
            black_box(uf.component_count())
        })
    });

    g.finish();
}

fn bench_simcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");

    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime((i * 7919) % 10_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    g.bench_function("rng_poisson", |b| {
        let mut rng = SimRng::seed_from_u64(5);
        b.iter(|| black_box(rng.poisson(black_box(4.2))))
    });

    g.bench_function("rng_split", |b| {
        let rng = SimRng::seed_from_u64(5);
        b.iter(|| black_box(rng.split(black_box("driver"))))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_marketplace, bench_geo, bench_analysis, bench_simcore
}
criterion_main!(benches);
