//! Benchmarks for the spatial bucket grid and the parallel ping fan-out.
//!
//! `spatial_grid` compares the expanding-ring queries against the
//! brute-force scans they replaced, at tier-inventory sizes typical of a
//! scaled SF world. `ping_all_sf` measures the whole per-tick measurement
//! hot loop (snapshot + every client ping) at 1/2/4 worker threads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surgescope_api::{ApiService, ProtocolEra};
use surgescope_city::CityModel;
use surgescope_core::{ClientSpec, MeasuredSystem, UberSystem};
use surgescope_geo::{Meters, SpatialGrid};
use surgescope_marketplace::{Marketplace, MarketplaceConfig};
use surgescope_simcore::{SimDuration, SimRng};

fn scatter(n: usize, seed: u64) -> Vec<(Meters, u32)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (Meters::new(rng.range_f64(0.0, 8_000.0), rng.range_f64(0.0, 6_000.0)), i as u32)
        })
        .collect()
}

fn brute_k_nearest(pts: &[(Meters, u32)], pos: Meters, k: usize) -> Vec<u32> {
    let mut v: Vec<(f64, u32)> = pts.iter().map(|(p, id)| (p.dist2(pos), *id)).collect();
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
    v.truncate(k);
    v.into_iter().map(|(_, id)| id).collect()
}

fn brute_nearest_l1(pts: &[(Meters, u32)], pos: Meters) -> Option<u32> {
    let mut best: Option<(f64, u32)> = None;
    for (p, id) in pts {
        let d = (p.x - pos.x).abs() + (p.y - pos.y).abs();
        if best.is_none_or(|(b, _)| d < b) {
            best = Some((d, *id));
        }
    }
    best.map(|(_, id)| id)
}

fn bench_spatial_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_grid");

    for &n in &[512usize, 4_096] {
        let pts = scatter(n, 7);
        let grid = SpatialGrid::build_auto(pts.clone());
        let queries: Vec<Meters> = scatter(64, 8).into_iter().map(|(p, _)| p).collect();

        g.bench_function(&format!("k_nearest8_grid_n{n}"), |b| {
            b.iter(|| {
                for &q in &queries {
                    black_box(grid.k_nearest(q, 8));
                }
            })
        });
        g.bench_function(&format!("k_nearest8_brute_n{n}"), |b| {
            b.iter(|| {
                for &q in &queries {
                    black_box(brute_k_nearest(&pts, q, 8));
                }
            })
        });
        g.bench_function(&format!("nearest_l1_grid_n{n}"), |b| {
            b.iter(|| {
                for &q in &queries {
                    black_box(grid.nearest_l1(q, |_| true));
                }
            })
        });
        g.bench_function(&format!("nearest_l1_brute_n{n}"), |b| {
            b.iter(|| {
                for &q in &queries {
                    black_box(brute_nearest_l1(&pts, q));
                }
            })
        });
        g.bench_function(&format!("build_n{n}"), |b| {
            b.iter(|| black_box(SpatialGrid::build_auto(pts.clone())))
        });
    }

    g.finish();
}

/// An SF-scale system at rush hour plus a client lattice the size the
/// paper deployed (43 clients), mirroring the campaign hot loop.
fn sf_system(threads: usize) -> (UberSystem, Vec<ClientSpec>) {
    let city = CityModel::san_francisco_downtown();
    let spacing = 4.0 * 83.0; // the paper's 4-minute-walk spacing
    let clients: Vec<ClientSpec> = surgescope_geo::grid::cover_polygon(
        &city.measurement_region,
        spacing,
    )
    .into_iter()
    .enumerate()
    .map(|(i, slot)| ClientSpec { key: i as u64, position: slot.position })
    .collect();
    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), 99);
    mp.run_for(SimDuration::hours(9));
    let sys = UberSystem::new(mp, ApiService::new(ProtocolEra::Apr2015, 99))
        .with_parallelism(threads);
    (sys, clients)
}

fn bench_ping_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ping_all_sf");

    for &threads in &[1usize, 2, 4] {
        g.bench_function(&format!("threads_{threads}"), |b| {
            let (mut sys, clients) = sf_system(threads);
            b.iter(|| black_box(sys.ping_all(&clients)))
        });
    }

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spatial_grid, bench_ping_fanout
}
criterion_main!(benches);
