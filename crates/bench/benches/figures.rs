//! One benchmark per paper table/figure: each measures the analysis
//! pipeline that regenerates that artifact, over a shared miniature
//! campaign (see `surgescope-bench`'s crate docs). The full-scale
//! regeneration itself is the `repro` binary:
//! `cargo run --release -p surgescope-experiments --bin repro -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surgescope_analysis::{cross_correlation, mean, Ecdf};
use surgescope_bench::{mini_campaign, mini_taxi};
use surgescope_city::{CarType, CityModel};
use surgescope_core::areas::{infer_areas, probe_lattice, rand_index};
use surgescope_core::avoidance;
use surgescope_core::forecast::{build_rows, fit, ModelFilter};
use surgescope_core::surge_obs::{change_moments, detect_jitter, episodes, simultaneity};
use surgescope_geo::{grid, Meters};

fn bench_figures(c: &mut Criterion) {
    let data = mini_campaign();
    let mut g = c.benchmark_group("figures");

    // fig02/fig03 — placement and coverage calibration math.
    let city = CityModel::manhattan_midtown();
    g.bench_function("fig02_coverage_check", |b| {
        let slots = grid::cover_polygon(&city.measurement_region, city.client_spacing_m);
        let pts: Vec<Meters> = slots.iter().map(|s| s.position).collect();
        b.iter(|| {
            black_box(grid::coverage_fraction(
                &city.measurement_region,
                black_box(&pts),
                400.0,
            ))
        })
    });
    g.bench_function("fig03_grid_placement", |b| {
        b.iter(|| {
            black_box(grid::cover_polygon(
                black_box(&city.measurement_region),
                black_box(150.0),
            ))
        })
    });

    // fig04 — validation capture ratios over taxi series.
    g.bench_function("fig04_capture_ratios", |b| {
        let (est, truth) = mini_taxi();
        b.iter(|| {
            let sum = |v: &[u32]| v.iter().map(|&x| x as u64).sum::<u64>() as f64;
            let s = sum(est.supply_series(CarType::UberT)) / sum(&truth.supply).max(1.0);
            let d = sum(est.death_series(CarType::UberT)) / sum(&truth.demand).max(1.0);
            black_box((s, d))
        })
    });

    // fig05 — per-type mean supply.
    g.bench_function("fig05_type_prevalence", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for t in CarType::ALL {
                let s: Vec<f64> = data
                    .estimator
                    .supply_series(t)
                    .iter()
                    .map(|&x| x as f64)
                    .collect();
                out.push(mean(&s));
            }
            black_box(out)
        })
    });

    // fig07 — lifespan ECDF.
    g.bench_function("fig07_lifespan_ecdf", |b| {
        b.iter(|| {
            let sample: Vec<f64> = data
                .estimator
                .lifespans
                .iter()
                .filter(|(t, _)| t.is_low_priced())
                .map(|(_, s)| *s as f64)
                .collect();
            let e = Ecdf::new(sample);
            black_box((e.quantile(0.5), e.quantile(0.9)))
        })
    });

    // fig08 — hourly binning of the four series.
    g.bench_function("fig08_hourly_binning", |b| {
        let supply = data.estimator.supply_series(CarType::UberX);
        b.iter(|| {
            let mut rows = Vec::new();
            for h in 0..(data.intervals / 12) {
                let span = h * 12..((h + 1) * 12).min(supply.len());
                let s: Vec<f64> = supply[span].iter().map(|&x| x as f64).collect();
                rows.push(mean(&s));
            }
            black_box(rows)
        })
    });

    // fig09/fig10 — per-client heatmap assembly.
    g.bench_function("fig09_heatmap_assembly", |b| {
        b.iter(|| {
            let rows: Vec<(f64, f64)> = (0..data.clients.len())
                .map(|i| (data.client_interval_cars[i], data.client_mean_ewt[i]))
                .collect();
            black_box(rows)
        })
    });

    // fig11 — EWT ECDF over every client sample.
    g.bench_function("fig11_ewt_ecdf", |b| {
        b.iter(|| {
            let sample: Vec<f64> = data
                .client_ewt
                .iter()
                .flat_map(|v| v.iter().map(|&x| x as f64))
                .collect();
            let e = Ecdf::new(sample);
            black_box(e.at(4.0))
        })
    });

    // fig12 — surge multiplier distribution.
    g.bench_function("fig12_surge_ecdf", |b| {
        b.iter(|| {
            let sample: Vec<f64> = data
                .api_surge
                .iter()
                .flat_map(|a| a.iter().map(|&m| m as f64))
                .collect();
            black_box(Ecdf::new(sample).at(1.5))
        })
    });

    // fig13 — episode segmentation over every client stream.
    g.bench_function("fig13_episode_segmentation", |b| {
        b.iter(|| {
            let mut durs = Vec::new();
            for series in &data.client_surge {
                durs.extend(episodes(series, data.tick_secs));
            }
            black_box(durs.len())
        })
    });

    // fig14 — jitter detection on one client.
    g.bench_function("fig14_jitter_single_client", |b| {
        let area = data.client_area[0].unwrap();
        b.iter(|| {
            black_box(detect_jitter(
                black_box(&data.client_surge[0]),
                black_box(&data.api_surge[area]),
                data.tick_secs,
            ))
        })
    });

    // fig15 — update-moment detection.
    g.bench_function("fig15_change_moments", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for series in &data.client_surge {
                n += change_moments(series, data.tick_secs).len();
            }
            black_box(n)
        })
    });

    // fig16/fig17 — fleet-wide jitter + simultaneity histogram.
    g.bench_function("fig16_17_fleet_jitter", |b| {
        b.iter(|| {
            let per_client: Vec<_> = data
                .client_surge
                .iter()
                .enumerate()
                .map(|(ci, s)| match data.client_area[ci] {
                    Some(a) => detect_jitter(s, &data.api_surge[a], data.tick_secs),
                    None => Vec::new(),
                })
                .collect();
            black_box(simultaneity(&per_client, data.tick_secs))
        })
    });

    // fig18/fig19 — lock-step clustering over a probe lattice.
    g.bench_function("fig18_19_area_inference", |b| {
        let probes = probe_lattice(&city.service_region, 500.0);
        let series: Vec<Vec<f32>> = probes
            .iter()
            .map(|p| {
                let a = city.area_of(*p).map(|a| a.0).unwrap_or(0);
                (0..288).map(|i| 1.0 + ((i + a * 7) % 5) as f32 / 10.0).collect()
            })
            .collect();
        b.iter(|| {
            let inf = infer_areas(black_box(&probes), black_box(&series), 750.0);
            black_box(rand_index(&city, &inf))
        })
    });

    // fig20/fig21 — lagged cross-correlation.
    g.bench_function("fig20_21_cross_correlation", |b| {
        let supply: Vec<f64> = data
            .estimator
            .supply_area_series(0)
            .iter()
            .map(|&x| x as f64)
            .collect();
        let surge: Vec<f64> = data.api_surge[0].iter().map(|&m| m as f64).collect();
        let n = supply.len().min(surge.len());
        b.iter(|| {
            black_box(cross_correlation(
                black_box(&supply[..n]),
                black_box(&surge[..n]),
                12,
            ))
        })
    });

    // tab01 — row building + OLS fits for all three filters.
    g.bench_function("tab01_forecast_fits", |b| {
        let area = (
            data.estimator.supply_area_series(0).to_vec(),
            data.estimator.death_area_series(0).to_vec(),
            data.api_ewt[0].clone(),
            data.api_surge[0].clone(),
        );
        b.iter(|| {
            for filter in [ModelFilter::Raw, ModelFilter::Threshold, ModelFilter::Rush] {
                let (rows, ys) = build_rows(&area.0, &area.1, &area.2, &area.3, filter);
                black_box(fit(&rows, &ys));
            }
        })
    });

    // fig22 — transition probability extraction.
    g.bench_function("fig22_transition_probabilities", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in 0..data.transitions.area_count() {
                for ctx in 0..2 {
                    if let Some(p) = data.transitions.probabilities(a, ctx) {
                        acc += p.iter().sum::<f64>();
                    }
                }
            }
            black_box(acc)
        })
    });

    // fig23/fig24 — the avoidance evaluator over the full campaign.
    g.bench_function("fig23_24_avoidance_evaluate", |b| {
        b.iter(|| {
            black_box(avoidance::evaluate(
                &data.city,
                &data.clients,
                &data.client_area,
                &data.api_surge,
                &data.api_ewt,
            ))
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
