//! Ground-truth taxi substrate (validation, paper §3.5).
//!
//! The paper validates its measurement methodology against the public 2013
//! NYC taxi dataset: an "Uber simulator" replays every taxi ride in real
//! time, exposes a pingClient-equivalent API (nearest eight taxis,
//! randomized IDs), and the measured supply/demand is compared with the
//! known ground truth (97% of cars and 95% of deaths were captured).
//!
//! That dataset is not available offline, so this crate substitutes a
//! **synthetic trace generator** ([`TraceGenerator`]) producing
//! NYC-2013-shaped rides — per-taxi shift sessions, diurnal trip
//! intensity, hotspot-biased origins/destinations — plus the same replay
//! engine the paper describes ([`TaxiReplay`]): straight-line driving
//! between points, a 3-hour idle cutoff, and per-availability-period ID
//! randomization. Because the trace is ours, ground truth is exact and
//! the §3.5 validation can be reproduced end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod replay;
mod trace;

pub use replay::{TaxiGroundTruth, TaxiReplay, VisibleTaxi, IDLE_CUTOFF_SECS};
pub use trace::{TaxiRide, TaxiTrace, TraceGenerator};
