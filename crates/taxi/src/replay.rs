//! Trace replay engine (the paper's "Uber simulator" for taxis).
//!
//! Semantics follow §3.5 exactly:
//!
//! * between a dropoff and the next pickup the taxi is **available**
//!   (visible) and "drives" in a straight line from the dropoff point
//!   toward the next pickup point;
//! * while carrying a passenger it is **booked** and disappears — these
//!   disappearances are the "deaths" the demand estimator counts;
//! * an idle gap longer than **3 hours** means the taxi went offline for
//!   the gap (the paper notes this filter removes ~5% of sessions);
//! * the public ID is **re-randomized every time the taxi becomes
//!   available** again.

use crate::trace::TaxiTrace;
use surgescope_geo::{Meters, PathVector, Polygon};
use surgescope_simcore::{SimDuration, SimRng, SimTime};

/// Idle gaps longer than this are treated as the taxi going offline.
pub const IDLE_CUTOFF_SECS: u64 = 3 * 3600;

/// A taxi as the replay API exposes it.
#[derive(Debug, Clone)]
pub struct VisibleTaxi {
    /// Randomized per-availability-period ID.
    pub session: u64,
    /// Current interpolated position.
    pub position: Meters,
    /// Recent positions (planar), oldest first.
    pub path: PathVector,
}

/// Ground truth accumulated during a replay, per 5-minute interval.
#[derive(Debug, Clone, Default)]
pub struct TaxiGroundTruth {
    /// Distinct taxis that were *available* (hailable) inside the region
    /// at some point in each interval — the population the measurement
    /// methodology is supposed to see (booked taxis are invisible by
    /// protocol design, not by measurement error).
    pub supply: Vec<u32>,
    /// Pickups (bookings) inside the region per interval.
    pub demand: Vec<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Not on the road.
    Offline,
    /// Available: driving toward the next pickup (ride index of that
    /// upcoming ride).
    Available(usize),
    /// Booked on ride `i`.
    Booked(usize),
}

#[derive(Debug, Clone)]
struct TaxiState {
    /// Indices into the trace's ride list, chronological.
    rides: Vec<usize>,
    phase: Phase,
    session: u64,
    position: Meters,
    path: PathVector,
}

/// Replays a [`TaxiTrace`] tick by tick.
pub struct TaxiReplay<'a> {
    trace: &'a TaxiTrace,
    region: Polygon,
    now: SimTime,
    tick_secs: u64,
    taxis: Vec<TaxiState>,
    rng: SimRng,
    truth: TaxiGroundTruth,
    // Open-interval accumulators (distinct availability-period sessions —
    // the same identity space the measurement side observes).
    acc_supply: std::collections::HashSet<u64>,
    acc_demand: u32,
}

impl<'a> TaxiReplay<'a> {
    /// Creates a replay of `trace`; ground truth is accumulated relative
    /// to `region` (the measurement polygon).
    pub fn new(trace: &'a TaxiTrace, region: Polygon, seed: u64) -> Self {
        let mut per_taxi: Vec<Vec<usize>> = vec![Vec::new(); trace.taxi_count as usize];
        for (i, r) in trace.rides.iter().enumerate() {
            per_taxi[r.taxi as usize].push(i);
        }
        // Trace rides are sorted by pickup time, so per-taxi lists are too.
        let taxis = per_taxi
            .into_iter()
            .map(|rides| TaxiState {
                rides,
                phase: Phase::Offline,
                session: 0,
                position: Meters::new(0.0, 0.0),
                path: PathVector::new(8),
            })
            .collect();
        TaxiReplay {
            trace,
            region,
            now: SimTime::EPOCH,
            tick_secs: 5,
            taxis,
            rng: SimRng::seed_from_u64(seed).split("taxi-sessions"),
            truth: TaxiGroundTruth::default(),
            acc_supply: std::collections::HashSet::new(),
            acc_demand: 0,
        }
    }

    /// Current replay time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground truth accumulated so far (closed intervals only).
    pub fn truth(&self) -> &TaxiGroundTruth {
        &self.truth
    }

    /// Advances the replay by one 5-second tick.
    pub fn tick(&mut self) {
        let t = self.now;
        for ti in 0..self.taxis.len() {
            self.advance_taxi(ti, t);
        }
        self.now = t + SimDuration::secs(self.tick_secs);
        if self.now.seconds_into_surge_interval() == 0 {
            self.truth.supply.push(self.acc_supply.len() as u32);
            self.truth.demand.push(self.acc_demand);
            self.acc_supply.clear();
            self.acc_demand = 0;
        }
    }

    /// Runs the replay until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        while self.now < horizon {
            self.tick();
        }
    }

    fn advance_taxi(&mut self, ti: usize, t: SimTime) {
        // Determine phase from the ride schedule. `phase_at` is pure; the
        // mutation below handles session minting and path maintenance.
        let (phase, position) = self.locate(ti, t);
        let state = &mut self.taxis[ti];
        let was = state.phase;
        // Fresh availability period ⇒ fresh public ID and a fresh path.
        let became_available =
            matches!(phase, Phase::Available(_)) && !matches!(was, Phase::Available(i) if Phase::Available(i) == phase);
        if became_available {
            state.session = self.rng.range_u64(1, u64::MAX);
            state.path = PathVector::new(8);
        }
        // Booking event: transition Available(i) -> Booked(i) is the
        // ground-truth pickup (demand) if it happened inside the region.
        if let (Phase::Available(i), Phase::Booked(j)) = (was, phase) {
            if i == j {
                let ride = &self.trace.rides[self.taxis[ti].rides[j]];
                if self.region.contains(ride.pickup) {
                    self.acc_demand += 1;
                }
            }
        }
        let state = &mut self.taxis[ti];
        state.phase = phase;
        state.position = position;
        if !matches!(phase, Phase::Offline) {
            // Maintain the path in geographic-free planar form by pushing a
            // fake LatLng derived from metres; the measurement layer for
            // taxis works in planar space directly, so the path here is
            // informational. We store positions via a tiny equirect trick:
            // treat metres as micro-degrees. (Only relative motion is used.)
            state
                .path
                .push(surgescope_geo::LatLng::new(position.y * 1e-5, position.x * 1e-5));
            if matches!(phase, Phase::Available(_)) && self.region.contains(position) {
                let session = self.taxis[ti].session;
                self.acc_supply.insert(session);
            }
        }
    }

    /// Pure lookup: where is taxi `ti` at time `t`, and in which phase?
    fn locate(&self, ti: usize, t: SimTime) -> (Phase, Meters) {
        let state = &self.taxis[ti];
        let rides = &state.rides;
        if rides.is_empty() {
            return (Phase::Offline, state.position);
        }
        let ride = |k: usize| &self.trace.rides[rides[k]];
        // Before the first pickup: offline (we cannot know where it was).
        if t < ride(0).pickup_at {
            return (Phase::Offline, ride(0).pickup);
        }
        // Find the last ride whose pickup is ≤ t.
        let k = match rides
            .iter()
            .position(|&ri| self.trace.rides[ri].pickup_at > t)
        {
            Some(0) => unreachable!("handled above"),
            Some(p) => p - 1,
            None => rides.len() - 1,
        };
        let r = ride(k);
        if t < r.dropoff_at {
            // Mid-ride: interpolate pickup → dropoff.
            let span = r.dropoff_at.since(r.pickup_at).as_secs().max(1) as f64;
            let f = t.since(r.pickup_at).as_secs() as f64 / span;
            return (Phase::Booked(k), lerp(r.pickup, r.dropoff, f));
        }
        // After dropoff k: heading to pickup k+1, if any and if the gap is
        // within the idle cutoff.
        if k + 1 < rides.len() {
            let next = ride(k + 1);
            let gap = next.pickup_at.since(r.dropoff_at).as_secs();
            if gap <= IDLE_CUTOFF_SECS {
                let span = gap.max(1) as f64;
                let f = t.since(r.dropoff_at).as_secs() as f64 / span;
                return (Phase::Available(k + 1), lerp(r.dropoff, next.pickup, f));
            }
            return (Phase::Offline, r.dropoff);
        }
        (Phase::Offline, r.dropoff)
    }

    /// All currently available taxis.
    pub fn visible(&self) -> Vec<VisibleTaxi> {
        self.taxis
            .iter()
            .filter(|s| matches!(s.phase, Phase::Available(_)))
            .map(|s| VisibleTaxi { session: s.session, position: s.position, path: s.path.clone() })
            .collect()
    }

    /// pingClient analogue: the `k` nearest available taxis to `pos`.
    pub fn nearest(&self, pos: Meters, k: usize) -> Vec<VisibleTaxi> {
        let mut v: Vec<(f64, VisibleTaxi)> = self
            .visible()
            .into_iter()
            .map(|t| (t.position.dist2(pos), t))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v.truncate(k);
        v.into_iter().map(|(_, t)| t).collect()
    }
}

fn lerp(a: Meters, b: Meters, f: f64) -> Meters {
    let f = f.clamp(0.0, 1.0);
    Meters::new(a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TaxiRide, TraceGenerator};
    use surgescope_city::CityModel;

    fn hand_trace() -> TaxiTrace {
        // One taxi, two rides separated by a 10-minute gap, then a 4-hour
        // gap to a third ride (exceeds the idle cutoff).
        let rides = vec![
            TaxiRide {
                taxi: 0,
                pickup_at: SimTime(600),
                pickup: Meters::new(0.0, 0.0),
                dropoff_at: SimTime(1200),
                dropoff: Meters::new(600.0, 0.0),
            },
            TaxiRide {
                taxi: 0,
                pickup_at: SimTime(1800),
                pickup: Meters::new(600.0, 600.0),
                dropoff_at: SimTime(2400),
                dropoff: Meters::new(0.0, 600.0),
            },
            TaxiRide {
                taxi: 0,
                pickup_at: SimTime(2400 + 4 * 3600),
                pickup: Meters::new(100.0, 100.0),
                dropoff_at: SimTime(3000 + 4 * 3600),
                dropoff: Meters::new(200.0, 200.0),
            },
        ];
        TaxiTrace { rides, taxi_count: 1 }
    }

    fn region() -> Polygon {
        Polygon::rect(Meters::new(-1000.0, -1000.0), Meters::new(2000.0, 2000.0))
    }

    #[test]
    fn invisible_before_first_pickup() {
        let trace = hand_trace();
        let mut rp = TaxiReplay::new(&trace, region(), 1);
        rp.run_until(SimTime(300));
        assert!(rp.visible().is_empty());
    }

    #[test]
    fn booked_taxi_invisible_then_reappears() {
        let trace = hand_trace();
        let mut rp = TaxiReplay::new(&trace, region(), 1);
        rp.run_until(SimTime(900)); // mid-ride 1
        assert!(rp.visible().is_empty(), "booked taxi must be invisible");
        rp.run_until(SimTime(1500)); // idle gap between rides
        let v = rp.visible();
        assert_eq!(v.len(), 1, "idle taxi visible in the gap");
    }

    #[test]
    fn idle_position_interpolates_toward_next_pickup() {
        let trace = hand_trace();
        let mut rp = TaxiReplay::new(&trace, region(), 1);
        // Gap runs 1200 → 1800, dropoff (600,0) → next pickup (600,600).
        rp.run_until(SimTime(1500));
        let v = rp.visible();
        let p = v[0].position;
        assert!((p.x - 600.0).abs() < 1e-9);
        assert!((p.y - 300.0).abs() < 15.0, "midway, got {p:?}");
    }

    #[test]
    fn long_gap_is_offline() {
        let trace = hand_trace();
        let mut rp = TaxiReplay::new(&trace, region(), 1);
        rp.run_until(SimTime(2400 + 3600)); // one hour into the 4 h gap
        assert!(rp.visible().is_empty(), "gap exceeds idle cutoff");
    }

    #[test]
    fn session_ids_differ_between_availability_periods() {
        let trace = hand_trace();
        let mut rp = TaxiReplay::new(&trace, region(), 1);
        rp.run_until(SimTime(1500));
        let s1 = rp.visible()[0].session;
        // Next availability period is during ride 3's... there is none
        // after ride 3 (last ride), so check the pre-ride-2 period is the
        // same session, then compare across gap: taxi becomes available
        // again... ride 3 has no following pickup, so use ride 2's gap
        // only. Instead re-run and sample both gaps of a generated trace.
        let city = CityModel::manhattan_midtown();
        let gen = TraceGenerator { taxis: 5, days: 1, ..Default::default() };
        let trace2 = gen.generate(&city, 3);
        let mut rp2 = TaxiReplay::new(&trace2, city.measurement_region.clone(), 2);
        let mut seen = std::collections::HashSet::new();
        let horizon = SimTime(86_400);
        while rp2.now() < horizon {
            rp2.tick();
            for t in rp2.visible() {
                seen.insert(t.session);
            }
        }
        // Far more sessions than taxis ⇒ IDs rotate per availability.
        assert!(
            seen.len() > 5,
            "expected rotating IDs, saw {} sessions for 5 taxis",
            seen.len()
        );
        let _ = s1;
    }

    #[test]
    fn ground_truth_counts_pickups() {
        let trace = hand_trace();
        let mut rp = TaxiReplay::new(&trace, region(), 1);
        rp.run_until(SimTime(3000));
        let demand: u32 = rp.truth().demand.iter().sum();
        // Pickup 1 happens while Offline→Booked (not counted: the paper's
        // methodology also cannot see a car that was never available).
        // Pickup 2 transitions Available→Booked inside the region.
        assert_eq!(demand, 1);
    }

    #[test]
    fn nearest_returns_k_sorted() {
        let city = CityModel::manhattan_midtown();
        let gen = TraceGenerator { taxis: 120, days: 1, ..Default::default() };
        let trace = gen.generate(&city, 9);
        let mut rp = TaxiReplay::new(&trace, city.measurement_region.clone(), 4);
        rp.run_until(SimTime(19 * 3600)); // evening peak
        let pos = city.measurement_region.centroid();
        let near = rp.nearest(pos, 8);
        assert!(!near.is_empty());
        assert!(near.len() <= 8);
        let d: Vec<f64> = near.iter().map(|t| t.position.dist(pos)).collect();
        for w in d.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn supply_truth_tracks_active_taxis() {
        let city = CityModel::manhattan_midtown();
        let gen = TraceGenerator { taxis: 80, days: 1, ..Default::default() };
        let trace = gen.generate(&city, 10);
        let mut rp = TaxiReplay::new(&trace, city.measurement_region.clone(), 5);
        rp.run_until(SimTime(86_400));
        let truth = rp.truth();
        assert_eq!(truth.supply.len(), 288);
        let evening: u32 = truth.supply[222..240].iter().sum(); // ~18:30–20:00
        let dawn: u32 = truth.supply[54..72].iter().sum(); // ~4:30–6:00
        assert!(evening > dawn, "evening {evening} vs dawn {dawn}");
    }
}
