//! Synthetic NYC-2013-like taxi traces.
//!
//! The generator produces what the real FOIL dataset provides: one record
//! per ride with taxi ID, timestamped and geolocated pickup and dropoff.
//! Statistical shape mirrors the descriptions in the paper and common
//! knowledge of the dataset: taxis work two daily shift blocks, trip
//! intensity is diurnal (trough ≈ 4–5 a.m., peaks at the rush hours),
//! origins and destinations skew toward commercial hotspots, and fulfilled
//! demand in midtown peaks around ~100 rides/hour *per measurement
//! region* (§3.4).

use serde::{Deserialize, Serialize};
use surgescope_city::CityModel;
use surgescope_geo::Meters;
use surgescope_simcore::{SimDuration, SimRng, SimTime};

/// One taxi ride: the only ground truth the real dataset has.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaxiRide {
    /// Stable taxi identifier (medallion analogue).
    pub taxi: u32,
    /// Passenger pickup time.
    pub pickup_at: SimTime,
    /// Pickup location.
    pub pickup: Meters,
    /// Dropoff time.
    pub dropoff_at: SimTime,
    /// Dropoff location.
    pub dropoff: Meters,
}

/// A complete trace: every ride of every taxi, sorted by pickup time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaxiTrace {
    /// Rides sorted by `pickup_at`.
    pub rides: Vec<TaxiRide>,
    /// Number of distinct taxis.
    pub taxi_count: u32,
}

impl TaxiTrace {
    /// Rides of one taxi, in chronological order.
    pub fn rides_of(&self, taxi: u32) -> Vec<&TaxiRide> {
        let mut v: Vec<&TaxiRide> = self.rides.iter().filter(|r| r.taxi == taxi).collect();
        v.sort_by_key(|r| r.pickup_at);
        v
    }

    /// Ground-truth pickups per 5-minute interval whose pickup point lies
    /// inside `region`.
    pub fn pickups_per_interval(
        &self,
        region: &surgescope_geo::Polygon,
        horizon: SimTime,
    ) -> Vec<u32> {
        let n = (horizon.as_secs() / 300) as usize;
        let mut out = vec![0u32; n];
        for r in &self.rides {
            if r.pickup_at < horizon && region.contains(r.pickup) {
                out[r.pickup_at.surge_interval() as usize] += 1;
            }
        }
        out
    }
}

/// Configuration for the synthetic generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// Number of taxis. Midtown has an order of magnitude more taxis than
    /// Ubers (§4.2), but the validation only needs a few hundred.
    pub taxis: u32,
    /// Days of trace to generate.
    pub days: u64,
    /// Mean trips per taxi per busy hour.
    pub trips_per_hour_peak: f64,
    /// Straight-line driving speed, m/s (the replay "drives" in straight
    /// lines, so this is the effective speed of the whole system).
    pub speed_mps: f64,
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator { taxis: 400, days: 7, trips_per_hour_peak: 2.5, speed_mps: 6.0 }
    }
}

/// Relative trip intensity by hour (NYC taxi diurnal shape).
fn intensity(hour: f64) -> f64 {
    // Trough at 5 a.m., morning peak, sustained day, evening peak, decay.
    let pts = [
        (0.0, 0.55),
        (2.0, 0.35),
        (5.0, 0.12),
        (8.0, 0.95),
        (12.0, 0.80),
        (15.0, 0.85),
        (19.0, 1.00),
        (22.0, 0.75),
    ];
    // Linear interpolation with wraparound.
    let h = hour.rem_euclid(24.0);
    for w in pts.windows(2) {
        let (h0, v0) = w[0];
        let (h1, v1) = w[1];
        if (h0..=h1).contains(&h) {
            return v0 + (v1 - v0) * (h - h0) / (h1 - h0);
        }
    }
    // Wrap 22:00 → 24:00 back to 0:00 value.
    let (h0, v0) = pts[pts.len() - 1];
    let (h1, v1) = (24.0, pts[0].1);
    v0 + (v1 - v0) * (h - h0) / (h1 - h0)
}

impl TraceGenerator {
    /// Generates a trace over `city`'s geography (hotspots and the service
    /// region are reused; the marketplace itself is not involved).
    pub fn generate(&self, city: &CityModel, seed: u64) -> TaxiTrace {
        let root = SimRng::seed_from_u64(seed);
        let mut rides = Vec::new();
        for taxi in 0..self.taxis {
            let mut rng = root.split_index("taxi", taxi as u64);
            self.generate_taxi(city, taxi, &mut rng, &mut rides);
        }
        rides.sort_by_key(|r| (r.pickup_at, r.taxi));
        TaxiTrace { rides, taxi_count: self.taxis }
    }

    fn generate_taxi(
        &self,
        city: &CityModel,
        taxi: u32,
        rng: &mut SimRng,
        rides: &mut Vec<TaxiRide>,
    ) {
        // NYC taxis traditionally change shifts around 5 a.m./5 p.m.; each
        // taxi is assigned one of the two blocks (or both for double-shift
        // medallions).
        let day_shift = rng.chance(0.5);
        let double_shift = rng.chance(0.25);
        for day in 0..self.days {
            let day_start = SimTime::EPOCH + SimDuration::days(day);
            let mut blocks: Vec<(f64, f64)> = Vec::new();
            if day_shift || double_shift {
                blocks.push((4.5 + rng.range_f64(0.0, 1.5), 8.0 + rng.range_f64(0.0, 2.0)));
            }
            if !day_shift || double_shift {
                blocks.push((15.5 + rng.range_f64(0.0, 1.5), 8.0 + rng.range_f64(0.0, 2.0)));
            }
            for (start_h, len_h) in blocks {
                let mut t = day_start + SimDuration::secs((start_h * 3600.0) as u64);
                let end = t + SimDuration::secs((len_h * 3600.0) as u64);
                let mut position = city.sample_point(rng, 0.6);
                while t < end {
                    // Idle gap until the next street hail; shorter when the
                    // city is busy.
                    let hour = t.hour_of_day_f64();
                    let rate = self.trips_per_hour_peak * intensity(hour);
                    let gap_secs = rng.exp(rate / 3600.0).min(4.0 * 3600.0);
                    let pickup_at = t + SimDuration::secs(gap_secs as u64);
                    if pickup_at >= end {
                        break;
                    }
                    // Hail near where the taxi has been cruising.
                    let pickup = if rng.chance(0.6) {
                        nudge(city, position, 400.0, rng)
                    } else {
                        city.sample_point(rng, 0.7)
                    };
                    let dropoff = city.sample_point(rng, 0.5);
                    let dist = (pickup.x - dropoff.x).abs() + (pickup.y - dropoff.y).abs();
                    let dur = (dist / self.speed_mps).max(60.0);
                    let dropoff_at = pickup_at + SimDuration::secs(dur as u64);
                    rides.push(TaxiRide { taxi, pickup_at, pickup, dropoff_at, dropoff });
                    position = dropoff;
                    t = dropoff_at;
                }
            }
        }
    }
}

/// Gaussian nudge of a point, rejected into the service region.
fn nudge(city: &CityModel, p: Meters, sigma: f64, rng: &mut SimRng) -> Meters {
    for _ in 0..16 {
        let q = Meters::new(rng.normal(p.x, sigma), rng.normal(p.y, sigma));
        if city.service_region.contains(q) {
            return q;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use surgescope_city::CityModel;

    fn small_trace() -> (CityModel, TaxiTrace) {
        let city = CityModel::manhattan_midtown();
        let gen = TraceGenerator { taxis: 60, days: 2, ..Default::default() };
        let trace = gen.generate(&city, 42);
        (city, trace)
    }

    #[test]
    fn trace_nonempty_and_sorted() {
        let (_, trace) = small_trace();
        assert!(trace.rides.len() > 500, "only {} rides", trace.rides.len());
        for w in trace.rides.windows(2) {
            assert!(w[0].pickup_at <= w[1].pickup_at);
        }
    }

    #[test]
    fn rides_are_causal_and_in_region() {
        let (city, trace) = small_trace();
        for r in &trace.rides {
            assert!(r.dropoff_at > r.pickup_at, "zero-length ride");
            assert!(city.service_region.contains(r.pickup));
            assert!(city.service_region.contains(r.dropoff));
        }
    }

    #[test]
    fn per_taxi_rides_dont_overlap() {
        let (_, trace) = small_trace();
        for taxi in 0..10 {
            let rides = trace.rides_of(taxi);
            for w in rides.windows(2) {
                assert!(
                    w[1].pickup_at >= w[0].dropoff_at,
                    "taxi {taxi} double-booked"
                );
            }
        }
    }

    #[test]
    fn diurnal_shape_trough_before_dawn() {
        let city = CityModel::manhattan_midtown();
        let gen = TraceGenerator { taxis: 150, days: 3, ..Default::default() };
        let trace = gen.generate(&city, 7);
        let mut by_hour = [0u32; 24];
        for r in &trace.rides {
            by_hour[r.pickup_at.hour_of_day() as usize] += 1;
        }
        let five_am = by_hour[5] as f64;
        let evening = by_hour[19] as f64;
        assert!(
            evening > 4.0 * five_am.max(1.0),
            "evening {evening} vs 5am {five_am}"
        );
    }

    #[test]
    fn deterministic_generation() {
        let city = CityModel::manhattan_midtown();
        let gen = TraceGenerator { taxis: 30, days: 1, ..Default::default() };
        let a = gen.generate(&city, 5);
        let b = gen.generate(&city, 5);
        assert_eq!(a.rides, b.rides);
        let c = gen.generate(&city, 6);
        assert_ne!(a.rides, c.rides);
    }

    #[test]
    fn pickups_per_interval_counts_region_only() {
        let (city, trace) = small_trace();
        let horizon = SimTime(2 * 86_400);
        let per = trace.pickups_per_interval(&city.measurement_region, horizon);
        assert_eq!(per.len(), 2 * 288);
        let total: u32 = per.iter().sum();
        let inside = trace
            .rides
            .iter()
            .filter(|r| r.pickup_at < horizon && city.measurement_region.contains(r.pickup))
            .count() as u32;
        assert_eq!(total, inside);
        assert!(total > 0);
    }

    #[test]
    fn intensity_wraps_midnight() {
        let a = intensity(23.999);
        let b = intensity(0.0);
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }
}
