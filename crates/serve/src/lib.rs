//! `surgescope-serve`: the network serving layer.
//!
//! The paper's measurement apparatus is 43 emulated phones talking to a
//! production API over a real network; this crate gives the reproduction
//! that missing half. A dependency-free std-`TcpListener` thread-pool
//! server exposes the simulated marketplace over a length-prefixed,
//! CRC-framed wire protocol ([`wire`]) — `pingClient`, price/time
//! estimates, a session handshake that keys the per-account rate limiter
//! by session token, and a **lockstep tick barrier** so a remote campaign
//! is byte-identical to the in-process one. A free-running mode plus the
//! [`loadgen`] module cover "serve heavy traffic" benchmarking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use chaos::{ChaosCounters, ChaosPlan, ChaosStream};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use server::{FreeWorldSpec, ServeConfig, ServeMetrics, Server};
