//! Deterministic transport chaos: a stream wrapper with a seeded fault
//! schedule.
//!
//! [`ChaosStream`] wraps any `Read + Write` transport and injects faults
//! at frame boundaries according to a [`ChaosPlan`] driven by a seeded
//! [`SimRng`] stream:
//!
//! * **connection reset** — a write fails with `ConnectionReset` before
//!   anything reaches the wire; the stream is dead afterwards (every
//!   later op errors), so the owner must reconnect;
//! * **mid-frame truncation** — a write puts a *prefix* of the frame on
//!   the wire, then dies; the peer sees a malformed frame (`crc`/length
//!   violation) when the connection closes;
//! * **write stall** — the write sleeps before proceeding (exercises
//!   slow-path timeouts without killing the stream);
//! * **delayed read** — a read sleeps before proceeding.
//!
//! Which ops fault is a pure function of the RNG stream — wall time
//! never participates — so a chaos test's injection *counts* are
//! reproducible for a given seed while the sleeps themselves remain
//! invisible in campaign output. Shared [`ChaosCounters`] record every
//! injection so tests can assert coverage (at least one reset, one
//! truncation, one stall actually fired).

use std::io::{self, Read, Write};
use std::time::Duration;
use surgescope_obs::{Counter, MetricsRegistry};
use surgescope_simcore::SimRng;

/// Per-op fault probabilities. All chances are independent draws in the
/// order reset → truncate → stall (writes) / delay (reads); the first
/// match wins for a given op.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    /// Chance a write dies with `ConnectionReset` before sending.
    pub reset_chance: f64,
    /// Chance a write sends only a prefix of the buffer, then dies.
    pub truncate_chance: f64,
    /// Chance a write stalls for [`ChaosPlan::stall`] first.
    pub stall_chance: f64,
    /// Chance a read sleeps for [`ChaosPlan::stall`] first.
    pub delay_chance: f64,
    /// Stall/delay duration.
    pub stall: Duration,
}

impl ChaosPlan {
    /// The reference plan the chaos gates run: frequent enough that a
    /// one-hour lockstep campaign sees several of every fault class,
    /// mild enough that retries stay cheap.
    pub fn reference() -> Self {
        ChaosPlan {
            reset_chance: 0.002,
            truncate_chance: 0.002,
            stall_chance: 0.003,
            delay_chance: 0.001,
            stall: Duration::from_millis(5),
        }
    }
}

/// Shared injection counters; clone-cheap handles (Arc-backed cells).
#[derive(Debug, Clone, Default)]
pub struct ChaosCounters {
    /// Writes killed with `ConnectionReset` before sending.
    pub resets: Counter,
    /// Writes that sent a prefix and then died mid-frame.
    pub truncations: Counter,
    /// Writes that stalled before proceeding.
    pub stalls: Counter,
    /// Reads that slept before proceeding.
    pub delayed_reads: Counter,
}

impl ChaosCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the injection counters under `resilience.chaos_*`.
    /// Counts are seed-derived (never wall-clock), so they belong in the
    /// snapshot's deterministic section.
    pub fn register(&self, reg: &MetricsRegistry) {
        reg.adopt_counter("resilience.chaos_resets", &self.resets);
        reg.adopt_counter("resilience.chaos_truncations", &self.truncations);
        reg.adopt_counter("resilience.chaos_stalls", &self.stalls);
        reg.adopt_counter("resilience.chaos_delayed_reads", &self.delayed_reads);
    }
}

/// A transport with a seeded fault schedule. Without a plan it is a
/// zero-overhead passthrough (one branch per op).
pub struct ChaosStream<S> {
    inner: S,
    plan: Option<(ChaosPlan, SimRng)>,
    counters: ChaosCounters,
    /// Injected faults only fire once armed — handshakes (HELLO /
    /// OPEN / JOIN / RESUME) run clean so a retry loop converges.
    armed: bool,
    /// A reset/truncation killed the stream; every later op errors.
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// A passthrough wrapper with no fault schedule.
    pub fn passthrough(inner: S) -> Self {
        ChaosStream {
            inner,
            plan: None,
            counters: ChaosCounters::new(),
            armed: false,
            dead: false,
        }
    }

    /// A wrapper injecting `plan` on the schedule drawn from `rng`,
    /// recording into `counters`. Starts un-armed; call
    /// [`ChaosStream::arm`] once the clean handshake is done.
    pub fn with_plan(inner: S, plan: ChaosPlan, rng: SimRng, counters: ChaosCounters) -> Self {
        ChaosStream { inner, plan: Some((plan, rng)), counters, armed: false, dead: false }
    }

    /// Enables fault injection (no-op for passthrough streams).
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped transport, mutably.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn killed(&self) -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected connection reset")
    }
}

enum WriteFault {
    Reset,
    Truncate,
    Stall(Duration),
    None,
}

impl<S: Read + Write> ChaosStream<S> {
    fn next_write_fault(&mut self) -> WriteFault {
        if !self.armed {
            return WriteFault::None;
        }
        match &mut self.plan {
            Some((plan, rng)) => {
                if rng.chance(plan.reset_chance) {
                    WriteFault::Reset
                } else if rng.chance(plan.truncate_chance) {
                    WriteFault::Truncate
                } else if rng.chance(plan.stall_chance) {
                    WriteFault::Stall(plan.stall)
                } else {
                    WriteFault::None
                }
            }
            None => WriteFault::None,
        }
    }

    fn next_read_delay(&mut self) -> Option<Duration> {
        if !self.armed {
            return None;
        }
        match &mut self.plan {
            Some((plan, rng)) => rng.chance(plan.delay_chance).then_some(plan.stall),
            None => None,
        }
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(self.killed());
        }
        if let Some(d) = self.next_read_delay() {
            self.counters.delayed_reads.incr();
            std::thread::sleep(d);
        }
        self.inner.read(buf)
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(self.killed());
        }
        match self.next_write_fault() {
            WriteFault::Reset => {
                self.counters.resets.incr();
                self.dead = true;
                Err(self.killed())
            }
            WriteFault::Truncate => {
                // Put a strict prefix on the wire so the peer observes a
                // frame dying mid-body when the connection drops.
                let cut = (buf.len() / 2).max(1).min(buf.len().saturating_sub(1));
                if cut > 0 {
                    let _ = self.inner.write_all(&buf[..cut]);
                    let _ = self.inner.flush();
                }
                self.counters.truncations.incr();
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected mid-frame truncation",
                ))
            }
            WriteFault::Stall(d) => {
                self.counters.stalls.incr();
                std::thread::sleep(d);
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            WriteFault::None => {
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(self.killed());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex good enough for fault-schedule tests.
    struct Loop {
        rx: Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl Read for Loop {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for Loop {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn lo() -> Loop {
        Loop { rx: Cursor::new(vec![0u8; 64]), tx: Vec::new() }
    }

    fn always(chance: f64) -> ChaosPlan {
        ChaosPlan {
            reset_chance: chance,
            truncate_chance: 0.0,
            stall_chance: 0.0,
            delay_chance: 0.0,
            stall: Duration::ZERO,
        }
    }

    #[test]
    fn passthrough_never_faults() {
        let mut s = ChaosStream::passthrough(lo());
        s.arm();
        for _ in 0..1000 {
            s.write_all(b"abcdefgh").unwrap();
        }
        let mut buf = [0u8; 8];
        s.read_exact(&mut buf).unwrap();
    }

    #[test]
    fn unarmed_streams_run_clean_even_with_certain_faults() {
        let rng = SimRng::seed_from_u64(1).split("chaos");
        let mut s = ChaosStream::with_plan(lo(), always(1.0), rng, ChaosCounters::new());
        s.write_all(b"handshake").unwrap();
        assert_eq!(s.counters.resets.get(), 0);
    }

    #[test]
    fn reset_kills_the_stream_and_counts_once_per_injection() {
        let rng = SimRng::seed_from_u64(2).split("chaos");
        let counters = ChaosCounters::new();
        let mut s = ChaosStream::with_plan(lo(), always(1.0), rng, counters.clone());
        s.arm();
        assert!(s.write_all(b"doomed").is_err());
        assert_eq!(counters.resets.get(), 1);
        // Dead afterwards: both directions error without drawing again.
        assert!(s.write_all(b"x").is_err());
        let mut buf = [0u8; 1];
        assert!(s.read_exact(&mut buf).is_err());
        assert_eq!(counters.resets.get(), 1);
    }

    #[test]
    fn truncation_leaves_a_strict_prefix_on_the_wire() {
        let rng = SimRng::seed_from_u64(3).split("chaos");
        let counters = ChaosCounters::new();
        let plan = ChaosPlan { reset_chance: 0.0, truncate_chance: 1.0, ..always(0.0) };
        let mut s = ChaosStream::with_plan(lo(), plan, rng, counters.clone());
        s.arm();
        let frame = b"0123456789abcdef";
        assert!(s.write_all(frame).is_err());
        let sent = s.get_ref().tx.len();
        assert!(sent > 0 && sent < frame.len(), "prefix of {sent} bytes");
        assert_eq!(&s.get_ref().tx[..], &frame[..sent]);
        assert_eq!(counters.truncations.get(), 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let trace = |seed: u64| -> Vec<bool> {
            let rng = SimRng::seed_from_u64(seed).split("chaos");
            let mut s =
                ChaosStream::with_plan(lo(), always(0.2), rng, ChaosCounters::new());
            s.arm();
            (0..200)
                .map(|_| {
                    let failed = s.write_all(b"frame").is_err();
                    if failed {
                        s.dead = false; // revive to keep drawing the schedule
                    }
                    failed
                })
                .collect()
        };
        assert_eq!(trace(42), trace(42));
        assert!(trace(42).iter().any(|f| *f), "0.2 reset chance never fired in 200 ops");
    }
}
