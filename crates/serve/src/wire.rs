//! The wire protocol: framing, request/response kinds, codec.
//!
//! Frames reuse the `store` crate's conventions so one binary grammar
//! covers disk and network:
//!
//! ```text
//! | len: u32 LE | crc32: u32 LE | body (len bytes) |
//! body = | kind: u8 | store-codec encoded serde::Value payload |
//! ```
//!
//! `len` covers the body only; the CRC32 is computed over the whole body
//! (kind byte included), with the same polynomial as the event log. The
//! payload is a [`serde::Value`] tree through [`surgescope_store::codec`],
//! so floats cross the network as raw IEEE-754 bit patterns and a remote
//! campaign's NaN gaps survive byte-exactly.
//!
//! Request kinds live in `0x01..=0x7F`, responses in `0x80..=0xFF`. A
//! connection speaks strictly request→response in order; pipelining is
//! allowed (the lockstep client writes a whole tick's pings before
//! reading), the server answers in arrival order.

use serde::Value;
use std::io::{self, Read, Write};
use surgescope_store::crc32::crc32;
use surgescope_store::{decode_value, encode_to_vec};

/// Protocol version carried in the HELLO handshake.
pub const PROTO_VERSION: u64 = 1;

/// Default upper bound on a frame body. A full pingClient response for a
/// dense tier set is a few tens of kilobytes; 16 MiB leaves room for the
/// FINISH ground-truth payload of a multi-day campaign.
pub const DEFAULT_MAX_FRAME: usize = 1 << 24;

/// Session handshake; must be the first frame on every connection.
pub const REQ_HELLO: u8 = 0x01;
/// Open a lockstep campaign (scaled city + seed + era + party size).
pub const REQ_OPEN: u8 = 0x02;
/// Join an open campaign's lockstep party.
pub const REQ_JOIN: u8 = 0x03;
/// Lockstep barrier: advance the campaign world to the given tick.
pub const REQ_ADVANCE: u8 = 0x04;
/// pingClient against a campaign's current tick snapshot.
pub const REQ_PING: u8 = 0x05;
/// `estimates/price` against a campaign's current tick snapshot.
pub const REQ_PRICE: u8 = 0x06;
/// `estimates/time` against a campaign's current tick snapshot.
pub const REQ_TIME: u8 = 0x07;
/// Finalize a campaign and fetch its ground truth.
pub const REQ_FINISH: u8 = 0x08;
/// pingClient against the free-running world (load mode; no barrier).
pub const REQ_PING_FREE: u8 = 0x09;
/// `estimates/price` against the free-running world.
pub const REQ_PRICE_FREE: u8 = 0x0A;
/// `estimates/time` against the free-running world.
pub const REQ_TIME_FREE: u8 = 0x0B;
/// Re-attach a (fresh) connection to an open campaign after a drop:
/// validates the campaign and answers `RESP_OK` with its current tick
/// without consuming a party slot. The lockstep barrier counts
/// *arrivals*, not identities, so a resumed connection simply re-sends
/// the op that was in flight when its predecessor died.
pub const REQ_RESUME: u8 = 0x0C;
/// Test-only (gated by `ServeConfig::allow_crash`): panic the serving
/// worker while it holds the campaign lock, deliberately poisoning it.
/// Exists so the lock-poisoning recovery path has a deterministic
/// trigger; disabled servers answer `RESP_ERR`.
pub const REQ_CRASH: u8 = 0x0D;

/// Generic success (JOIN/ADVANCE), carries the current tick.
pub const RESP_OK: u8 = 0x80;
/// HELLO acknowledgement, carries the session token.
pub const RESP_HELLO: u8 = 0x81;
/// OPEN acknowledgement, carries the campaign id.
pub const RESP_OPEN: u8 = 0x82;
/// A full `PingClientResponse`.
pub const RESP_PING: u8 = 0x85;
/// A list of `PriceEstimate`s.
pub const RESP_PRICE: u8 = 0x86;
/// A list of `TimeEstimate`s.
pub const RESP_TIME: u8 = 0x87;
/// Campaign ground truth.
pub const RESP_FINISH: u8 = 0x88;
/// Protocol-level error; the server closes the connection after sending.
pub const RESP_ERR: u8 = 0xE0;
/// Rate-limited estimates request (`account`, `retry_after_secs`).
pub const RESP_THROTTLED: u8 = 0xE1;

/// Everything that can go wrong reading a frame.
#[derive(Debug)]
pub enum WireError {
    /// Clean end of stream at a frame boundary (peer closed).
    Closed,
    /// Underlying socket error (including read/write timeouts).
    Io(io::Error),
    /// The bytes violate the framing grammar: truncated prefix or body,
    /// zero/oversized length, CRC mismatch, or undecodable payload.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "wire: connection closed"),
            WireError::Io(e) => write!(f, "wire: io error: {e}"),
            WireError::Malformed(m) => write!(f, "wire: malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Converts into an `io::Error` (client-side convenience).
    pub fn into_io(self) -> io::Error {
        match self {
            WireError::Io(e) => e,
            WireError::Closed => {
                io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed")
            }
            WireError::Malformed(m) => io::Error::new(io::ErrorKind::InvalidData, m),
        }
    }
}

/// Renders one complete frame (`len | crc | kind | payload`) into bytes.
pub fn frame_bytes(kind: u8, payload: &Value) -> Vec<u8> {
    let enc = encode_to_vec(payload);
    let len = (1 + enc.len()) as u32;
    let mut out = Vec::with_capacity(8 + 1 + enc.len());
    out.extend_from_slice(&len.to_le_bytes());
    // CRC over the body = kind byte followed by the encoded payload.
    let mut body = Vec::with_capacity(1 + enc.len());
    body.push(kind);
    body.extend_from_slice(&enc);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Validates and decodes a frame body (the bytes after the CRC word).
pub fn decode_body(body: &[u8]) -> Result<(u8, Value), WireError> {
    let Some((&kind, payload)) = body.split_first() else {
        return Err(WireError::Malformed("empty frame body".into()));
    };
    let value = decode_value(payload)
        .map_err(|e| WireError::Malformed(format!("payload codec: {e}")))?;
    Ok((kind, value))
}

/// Writes one frame; returns the bytes put on the wire.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &Value) -> io::Result<u64> {
    let bytes = frame_bytes(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len() as u64)
}

/// Reads exactly `buf.len()` bytes. Distinguishes a clean close before
/// the first byte (`Closed`) from a stream that dies mid-read
/// (`Malformed`) — the caller decides whether a clean close at a frame
/// boundary is an error.
fn read_exact_or_close(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Malformed(format!(
                    "truncated {what}: got {got} of {} bytes",
                    buf.len()
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Blocking frame read (client side; the server uses its own polling
/// reader so it can watch the shutdown flag). Returns the decoded kind,
/// payload, and total bytes consumed.
pub fn read_frame(
    r: &mut impl Read,
    max_frame: usize,
) -> Result<(u8, Value, u64), WireError> {
    let mut word = [0u8; 4];
    read_exact_or_close(r, &mut word, "length prefix")?;
    let len = u32::from_le_bytes(word) as usize;
    if len == 0 || len > max_frame {
        return Err(WireError::Malformed(format!(
            "frame length {len} outside 1..={max_frame}"
        )));
    }
    let mut crc_word = [0u8; 4];
    read_exact_or_close(r, &mut crc_word, "crc").map_err(mid_frame)?;
    let want_crc = u32::from_le_bytes(crc_word);
    let mut body = vec![0u8; len];
    read_exact_or_close(r, &mut body, "body").map_err(mid_frame)?;
    if crc32(&body) != want_crc {
        return Err(WireError::Malformed("crc mismatch".into()));
    }
    let (kind, value) = decode_body(&body)?;
    Ok((kind, value, (8 + len) as u64))
}

/// A close after the length prefix is mid-frame, never clean.
fn mid_frame(e: WireError) -> WireError {
    match e {
        WireError::Closed => WireError::Malformed("stream closed mid-frame".into()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn frame_roundtrip() {
        let payload = Value::Map(vec![
            ("tick".into(), 42u64.to_value()),
            ("x".into(), f64::NAN.to_value()),
        ]);
        let bytes = frame_bytes(REQ_ADVANCE, &payload);
        let mut cur = io::Cursor::new(bytes.clone());
        let (kind, back, n) = read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, REQ_ADVANCE);
        assert_eq!(n as usize, bytes.len());
        assert_eq!(u64::from_value(back.field("tick").unwrap()).unwrap(), 42);
        // NaN crossed the frame bit-exactly.
        let x = f64::from_value(back.field("x").unwrap()).unwrap();
        assert!(x.is_nan());
    }

    #[test]
    fn crc_flip_detected() {
        let mut bytes = frame_bytes(REQ_PING, &Value::Null);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut cur = io::Cursor::new(bytes);
        match read_frame(&mut cur, DEFAULT_MAX_FRAME) {
            Err(WireError::Malformed(m)) => assert!(m.contains("crc")),
            other => panic!("corrupt frame must fail the CRC: {other:?}"),
        }
    }

    #[test]
    fn clean_close_vs_truncated_prefix() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME),
            Err(WireError::Closed)
        ));
        let mut partial = io::Cursor::new(vec![0x05, 0x00]);
        assert!(matches!(
            read_frame(&mut partial, DEFAULT_MAX_FRAME),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let mut cur = io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cur, 1 << 16),
            Err(WireError::Malformed(_))
        ));
    }
}
