//! The TCP server: thread-pool accept loops, session handshake, lockstep
//! campaign hosting, and the free-running load world.
//!
//! ## Threading model
//!
//! `workers` threads each run their own accept loop on a shared
//! non-blocking listener; an accepted connection is served by that worker
//! until it closes, so the pool size bounds concurrent connections. A
//! lockstep party of K clients therefore needs `workers > K` (the default
//! of 8 covers the 4-connection campaigns the tests run plus probes).
//!
//! ## Lockstep barrier
//!
//! A campaign's marketplace advances **only** at the barrier: every member
//! of the party sends `REQ_ADVANCE(tick+1)`, the last arrival performs the
//! tick (recycling the snapshot arena exactly like the in-process
//! `UberSystem`), and everyone is released with the new tick. Between
//! barriers the world is frozen, so any interleaving of ping/estimate
//! requests across connections reads the same snapshot — which is what
//! makes a remote campaign byte-identical to the in-process one at any
//! connection count.
//!
//! ## Shutdown
//!
//! `Server::shutdown` flips a flag; each worker finishes the request it is
//! executing, then *drains*: it keeps serving frames that arrive within
//! the configured drain window and closes only from an idle frame
//! boundary. A request fully written before shutdown is always answered.

use crate::wire;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use surgescope_api::{ApiService, ProtocolEra, WorldSnapshot};
use surgescope_city::CityModel;
use surgescope_geo::LatLng;
use surgescope_marketplace::{Marketplace, MarketplaceConfig, SurgePolicy};
use surgescope_obs::{Counter, Gauge, MetricsRegistry, Snapshot, Timer};
use surgescope_simcore::SimDuration;

/// How often blocked reads and accept loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// A free-running world for the load mode: pings answered against a
/// standing marketplace with no barrier, optionally advanced by a ticker
/// thread.
#[derive(Clone)]
pub struct FreeWorldSpec {
    /// City to host (pre-scale).
    pub city: CityModel,
    /// Fleet/demand scale applied to the city.
    pub scale: f64,
    /// Marketplace seed.
    pub seed: u64,
    /// Protocol era served.
    pub era: ProtocolEra,
    /// Simulated hours run before serving (so the fleet is settled).
    pub warmup_hours: u64,
    /// Advance the world every this many wall-clock milliseconds;
    /// `None` freezes it (deterministic load benchmarks).
    pub tick_ms: Option<u64>,
}

/// Server tuning knobs. `Default` suits tests and loopback benches.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads (= max concurrent connections).
    pub workers: usize,
    /// Largest acceptable frame body, bytes.
    pub max_frame: usize,
    /// Mid-frame stall budget: a connection that starts a frame and then
    /// stalls longer than this is dropped as a slow-loris (write timeouts
    /// use the same value).
    pub io_timeout: Duration,
    /// Post-shutdown drain window: requests arriving within it are still
    /// answered before the connection closes.
    pub drain: Duration,
    /// Orphan expiry: a campaign that sees no request for this long is
    /// expired by the janitor — its slot is reclaimed and any party
    /// member still parked at the barrier is released with an error.
    /// Generous by default: an active lockstep campaign touches its
    /// slot many times per tick.
    pub campaign_idle_timeout: Duration,
    /// Enables the test-only `REQ_CRASH` verb (panics a worker while it
    /// holds the campaign lock). Never enable outside tests.
    pub allow_crash: bool,
    /// Optional free-running world for the load mode.
    pub free: Option<FreeWorldSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            max_frame: wire::DEFAULT_MAX_FRAME,
            io_timeout: Duration::from_secs(10),
            drain: Duration::from_millis(300),
            campaign_idle_timeout: Duration::from_secs(600),
            allow_crash: false,
            free: None,
        }
    }
}

/// Always-on server telemetry. Everything here lands in the snapshot's
/// deterministic section except the per-worker busy timers, so two
/// lockstep runs of the same campaign render byte-identical counter
/// sections regardless of scheduling.
pub struct ServeMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: Counter,
    /// High-water mark of simultaneously open connections.
    pub connections_peak: Gauge,
    /// Complete frames read / written.
    pub frames_in: Counter,
    /// Frames written.
    pub frames_out: Counter,
    /// Bytes read off / written onto sockets (framing included).
    pub bytes_in: Counter,
    /// Bytes written.
    pub bytes_out: Counter,
    /// Connections dropped for framing violations: truncated prefix,
    /// CRC mismatch, oversized length, slow-loris stalls, I/O failures.
    pub frame_errors: Counter,
    /// Estimates requests refused over quota and reported on the wire.
    pub throttled_wire: Counter,
    /// Lockstep campaigns opened.
    pub campaigns_opened: Counter,
    /// Free-mode pings answered.
    pub free_pings: Counter,
    /// Request handlers that panicked. The worker survives (the panic is
    /// caught at the dispatch boundary), the confused connection gets a
    /// `RESP_ERR` and closes, and any lock the handler held is recovered
    /// from poisoning by its next user.
    pub worker_panics: Counter,
    /// `RESUME` handshakes served (dropped party connections that
    /// re-attached to their campaign).
    pub resumes: Counter,
    /// Orphaned campaign slots reclaimed by the janitor.
    pub campaigns_expired: Counter,
}

impl ServeMetrics {
    fn new() -> Self {
        ServeMetrics {
            connections_accepted: Counter::new(),
            connections_peak: Gauge::new(),
            frames_in: Counter::new(),
            frames_out: Counter::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            frame_errors: Counter::new(),
            throttled_wire: Counter::new(),
            campaigns_opened: Counter::new(),
            free_pings: Counter::new(),
            worker_panics: Counter::new(),
            resumes: Counter::new(),
            campaigns_expired: Counter::new(),
        }
    }

    /// Registers every instrument under stable `serve.*` names.
    pub fn register(&self, reg: &MetricsRegistry) {
        reg.adopt_counter("serve.connections_accepted", &self.connections_accepted);
        reg.adopt_gauge("serve.connections_peak", &self.connections_peak);
        reg.adopt_counter("serve.frames_in", &self.frames_in);
        reg.adopt_counter("serve.frames_out", &self.frames_out);
        reg.adopt_counter("serve.bytes_in", &self.bytes_in);
        reg.adopt_counter("serve.bytes_out", &self.bytes_out);
        reg.adopt_counter("serve.frame_errors", &self.frame_errors);
        reg.adopt_counter("serve.throttled_wire", &self.throttled_wire);
        reg.adopt_counter("serve.campaigns_opened", &self.campaigns_opened);
        reg.adopt_counter("serve.free_pings", &self.free_pings);
        reg.adopt_counter("serve.worker_panics", &self.worker_panics);
        reg.adopt_counter("serve.resumes", &self.resumes);
        reg.adopt_counter("serve.campaigns_expired", &self.campaigns_expired);
    }
}

/// A marketplace + protocol endpoint with the same snapshot arena the
/// in-process `UberSystem` uses: one snapshot per tick, shell recycled
/// across ticks when uniquely owned.
struct HostWorld {
    mp: Marketplace,
    api: ApiService,
    snap: Option<Arc<WorldSnapshot>>,
    arena: Option<Arc<WorldSnapshot>>,
}

impl HostWorld {
    fn new(mp: Marketplace, api: ApiService) -> Self {
        HostWorld { mp, api, snap: None, arena: None }
    }

    /// The cached snapshot for the current tick (captured on first use).
    fn snapshot(&mut self) -> Arc<WorldSnapshot> {
        if self.snap.is_none() {
            let snap = match self.arena.take() {
                Some(mut arc) => match Arc::get_mut(&mut arc) {
                    Some(s) => {
                        s.capture(&self.mp);
                        arc
                    }
                    // A ping handler still holds last tick's snapshot
                    // (racing its final reply): fall back to a fresh
                    // capture — contents are identical either way.
                    None => Arc::new(WorldSnapshot::of(&self.mp)),
                },
                None => Arc::new(WorldSnapshot::of(&self.mp)),
            };
            self.snap = Some(snap);
        }
        Arc::clone(self.snap.as_ref().expect("just populated"))
    }

    fn advance(&mut self) {
        if let Some(mut arc) = self.snap.take() {
            if let Some(s) = Arc::get_mut(&mut arc) {
                s.release_cars();
                self.arena = Some(arc);
            }
        }
        self.mp.tick();
    }
}

/// Locks a mutex, recovering from poisoning. A panicking handler must
/// not wedge every sibling session sharing the lock: our critical
/// sections either mutate nothing (the test crash verb) or complete
/// their state transition before anything can panic, so the inner value
/// is still coherent and the conservative default (propagate the panic
/// to every later user) is exactly wrong for a server.
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One hosted lockstep campaign.
struct CampaignHost {
    party: usize,
    state: Mutex<CampaignState>,
    barrier: Condvar,
    /// Milliseconds since the server's epoch of the last request that
    /// touched this campaign; the janitor expires slots that go quiet.
    last_activity: AtomicU64,
}

struct CampaignState {
    /// `None` once finished (the marketplace was consumed for truth).
    world: Option<HostWorld>,
    /// Ground truth computed by the first FINISH, kept so a client whose
    /// connection died mid-FINISH can reconnect and re-ask (idempotent).
    truth: Option<Value>,
    /// Ticks advanced so far.
    tick: u64,
    /// Party members that have requested the advance to `tick + 1`.
    arrivals: usize,
    /// Connections that have joined (the opener counts as one).
    joined: usize,
    /// Reclaimed by the janitor; barrier waiters bail out with an error.
    expired: bool,
}

impl CampaignHost {
    /// The lockstep barrier. The caller's `want` must be `tick + 1`; the
    /// last arrival performs the world tick and releases everyone else.
    /// `want == tick` answers OK immediately: the barrier counts
    /// *arrivals*, not identities, so a connection that died after its
    /// ADVANCE was counted (or after the barrier completed but before
    /// the ack arrived) reconnects and re-sends the same request
    /// harmlessly.
    fn advance(&self, want: u64, shutdown: &AtomicBool) -> Result<u64, String> {
        let mut st = lock_ok(&self.state);
        if st.expired {
            return Err("campaign expired (idle too long)".into());
        }
        if st.world.is_none() {
            return Err("campaign already finished".into());
        }
        if want == st.tick {
            return Ok(st.tick);
        }
        if want != st.tick + 1 {
            return Err(format!(
                "lockstep violation: advance to tick {want} while at {}",
                st.tick
            ));
        }
        st.arrivals += 1;
        if st.arrivals >= self.party {
            st.world.as_mut().expect("checked above").advance();
            st.tick = want;
            st.arrivals = 0;
            self.barrier.notify_all();
            return Ok(st.tick);
        }
        while st.tick < want {
            let (guard, _) = self
                .barrier
                .wait_timeout(st, POLL)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            if st.expired {
                return Err("campaign expired (idle too long)".into());
            }
            if shutdown.load(Ordering::Relaxed) && st.tick < want {
                return Err("server shutting down".into());
            }
        }
        Ok(st.tick)
    }

    fn join(&self) -> Result<u64, String> {
        let mut st = lock_ok(&self.state);
        if st.joined >= self.party {
            return Err(format!("campaign party of {} is full", self.party));
        }
        st.joined += 1;
        Ok(st.tick)
    }

    /// Current tick for a RESUME handshake: unlike `join`, consumes no
    /// party slot — the resumed connection replaces a dead one.
    fn resume(&self) -> Result<u64, String> {
        let st = lock_ok(&self.state);
        if st.expired {
            return Err("campaign expired (idle too long)".into());
        }
        Ok(st.tick)
    }
}

struct Shared {
    workers: usize,
    max_frame: usize,
    io_timeout: Duration,
    drain: Duration,
    idle_timeout: Duration,
    allow_crash: bool,
    /// Reference instant for campaign activity stamps.
    epoch: Instant,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    next_campaign: AtomicU64,
    active: AtomicUsize,
    campaigns: Mutex<HashMap<u64, Arc<CampaignHost>>>,
    free: Option<Mutex<HostWorld>>,
    metrics: ServeMetrics,
    registry: MetricsRegistry,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Expires campaigns whose last request is older than the idle
    /// timeout: marks them so barrier waiters bail out, wakes those
    /// waiters, and drops the slot from the table.
    fn expire_orphans(&self) {
        let now = self.now_ms();
        let idle_ms = self.idle_timeout.as_millis() as u64;
        let mut expired = Vec::new();
        {
            let mut campaigns = lock_ok(&self.campaigns);
            campaigns.retain(|id, host| {
                let stale = now.saturating_sub(host.last_activity.load(Ordering::Relaxed))
                    > idle_ms;
                if stale {
                    expired.push((*id, Arc::clone(host)));
                }
                !stale
            });
        }
        for (_, host) in &expired {
            lock_ok(&host.state).expired = true;
            host.barrier.notify_all();
            self.metrics.campaigns_expired.incr();
        }
    }
}

/// The serving endpoint. Dropping the server shuts it down gracefully.
pub struct Server {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port — the bound address
    /// is reported by [`Server::local_addr`]), warms up the free world if
    /// one is configured, and starts the worker pool.
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let free = match &cfg.free {
            Some(spec) => {
                let mut city = spec.city.clone();
                if (spec.scale - 1.0).abs() > 1e-9 {
                    city.supply = city.supply.scaled(spec.scale);
                    city.demand = city.demand.scaled(spec.scale);
                }
                let mut mp =
                    Marketplace::new(city, MarketplaceConfig::default(), spec.seed);
                mp.run_for(SimDuration::hours(spec.warmup_hours));
                let api = ApiService::new(spec.era, spec.seed ^ 0xB0B5);
                Some(Mutex::new(HostWorld::new(mp, api)))
            }
            None => None,
        };

        let registry = MetricsRegistry::new();
        let metrics = ServeMetrics::new();
        metrics.register(&registry);
        let shared = Arc::new(Shared {
            workers: cfg.workers.max(1),
            max_frame: cfg.max_frame,
            io_timeout: cfg.io_timeout,
            drain: cfg.drain,
            idle_timeout: cfg.campaign_idle_timeout.max(POLL),
            allow_crash: cfg.allow_crash,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            next_campaign: AtomicU64::new(1),
            active: AtomicUsize::new(0),
            campaigns: Mutex::new(HashMap::new()),
            free,
            metrics,
            registry,
        });

        let mut threads = Vec::new();
        for i in 0..shared.workers {
            let shared = Arc::clone(&shared);
            let listener = listener.try_clone()?;
            let busy = shared.registry.timer(&format!("serve.worker{i}.busy"));
            threads.push(std::thread::spawn(move || {
                accept_loop(&shared, &listener, &busy)
            }));
        }
        if let Some(tick_ms) = cfg.free.as_ref().and_then(|f| f.tick_ms) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                let period = Duration::from_millis(tick_ms.max(1));
                while !shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(period.min(POLL));
                    // Coarse pacing is fine: the free world has no
                    // determinism contract, only liveness.
                    if let Some(free) = &shared.free {
                        lock_ok(free).advance();
                    }
                }
            }));
        }
        // Janitor: reclaims campaign slots whose clients never returned
        // (crashed mid-campaign, or never re-fetched a FINISH result).
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                let mut last_sweep = Instant::now();
                while !shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(POLL);
                    let cadence = (shared.idle_timeout / 4).max(POLL);
                    if last_sweep.elapsed() >= cadence {
                        shared.expire_orphans();
                        last_sweep = Instant::now();
                    }
                }
            }));
        }
        Ok(Server { addr, shared, threads })
    }

    /// The bound address (resolves port-0 bindings).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's telemetry handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// A point-in-time reading of every server instrument. Counters land
    /// in the deterministic section; per-worker busy timers in timing.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }

    /// Graceful shutdown: stop accepting, answer every request already on
    /// the wire (within the drain window), close all connections, join
    /// the workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, busy: &Timer) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => serve_conn(shared, stream, busy),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL)
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// What the poll-reader produced.
enum Next {
    Frame(u8, Value, u64),
    /// Peer closed cleanly at a frame boundary.
    Closed,
    /// Shutdown observed at an idle frame boundary, drain window spent.
    Drained,
    /// Framing violation (slow-loris stalls included).
    Bad(String),
    Io,
}

/// Reads one frame, polling in `POLL` slices so the shutdown flag is
/// observed promptly. Idle connections (no frame in progress) wait
/// indefinitely; once a frame's first byte arrives the whole frame must
/// complete within `io_timeout` or the connection is a slow-loris.
fn next_frame(stream: &mut TcpStream, shared: &Shared, drained_by: &mut Option<Instant>) -> Next {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    let mut started: Option<Instant> = None;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Next::Closed
                } else {
                    Next::Bad("truncated length prefix".into())
                }
            }
            Ok(n) => {
                if started.is_none() {
                    started = Some(Instant::now());
                }
                got += n;
            }
            Err(e) if stalled(&e) => {
                match started {
                    None => {
                        // Idle boundary: no request in progress.
                        if shared.shutdown.load(Ordering::Relaxed) {
                            let deadline = *drained_by
                                .get_or_insert_with(|| Instant::now() + shared.drain);
                            if Instant::now() >= deadline {
                                return Next::Drained;
                            }
                        }
                    }
                    Some(t0) => {
                        if t0.elapsed() > shared.io_timeout {
                            return Next::Bad(
                                "slow-loris: stalled inside length prefix".into(),
                            );
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Next::Io,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > shared.max_frame {
        return Next::Bad(format!("frame length {len} outside 1..={}", shared.max_frame));
    }
    let deadline = started.expect("frame started") + shared.io_timeout;
    let mut crc_word = [0u8; 4];
    if let Err(n) = read_to_deadline(stream, &mut crc_word, deadline, "crc") {
        return n;
    }
    let mut body = vec![0u8; len];
    if let Err(n) = read_to_deadline(stream, &mut body, deadline, "body") {
        return n;
    }
    if surgescope_store::crc32::crc32(&body) != u32::from_le_bytes(crc_word) {
        return Next::Bad("crc mismatch".into());
    }
    match wire::decode_body(&body) {
        Ok((kind, value)) => Next::Frame(kind, value, (8 + len) as u64),
        Err(e) => Next::Bad(e.to_string()),
    }
}

fn stalled(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn read_to_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    what: &str,
) -> Result<(), Next> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(Next::Bad(format!("stream closed mid-frame ({what})"))),
            Ok(n) => got += n,
            Err(e) if stalled(&e) => {
                if Instant::now() >= deadline {
                    return Err(Next::Bad(format!("slow-loris: stalled inside {what}")));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Next::Io),
        }
    }
    Ok(())
}

/// A response frame plus whether the connection must close after it.
struct Reply {
    kind: u8,
    payload: Value,
    close: bool,
}

impl Reply {
    fn ok(kind: u8, payload: Value) -> Result<Reply, String> {
        Ok(Reply { kind, payload, close: false })
    }
}

fn serve_conn(shared: &Shared, mut stream: TcpStream, busy: &Timer) {
    shared.metrics.connections_accepted.incr();
    let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
    shared.metrics.connections_peak.set_max(active as u64);
    // Accepted sockets must be blocking-with-timeout regardless of the
    // listener's non-blocking flag (inheritance is platform-dependent).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));

    let mut session: Option<u64> = None;
    let mut drained_by: Option<Instant> = None;
    loop {
        match next_frame(&mut stream, shared, &mut drained_by) {
            Next::Frame(kind, payload, nbytes) => {
                shared.metrics.frames_in.incr();
                shared.metrics.bytes_in.add(nbytes);
                let _span = busy.start();
                // Handlers run behind a panic boundary: a panicking
                // request must cost its own connection, never the worker
                // thread (sibling sessions recover any lock it poisoned
                // via `lock_ok`).
                let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_request(shared, &mut session, kind, &payload)
                }))
                .unwrap_or_else(|_| {
                    shared.metrics.worker_panics.incr();
                    Err("internal error: request handler panicked".into())
                });
                let (reply, close) = match reply {
                    Ok(r) => {
                        let close = r.close;
                        ((r.kind, r.payload), close)
                    }
                    // Protocol errors are answered, then the connection
                    // closes — a confused peer should not keep going.
                    Err(msg) => ((wire::RESP_ERR, err_value(&msg)), true),
                };
                match wire::write_frame(&mut stream, reply.0, &reply.1) {
                    Ok(n) => {
                        shared.metrics.frames_out.incr();
                        shared.metrics.bytes_out.add(n);
                    }
                    Err(_) => {
                        // The peer vanished with a request in flight.
                        shared.metrics.frame_errors.incr();
                        break;
                    }
                }
                if close {
                    break;
                }
            }
            Next::Closed | Next::Drained => break,
            Next::Bad(_msg) => {
                shared.metrics.frame_errors.incr();
                break;
            }
            Next::Io => {
                shared.metrics.frame_errors.incr();
                break;
            }
        }
    }
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

fn err_value(msg: &str) -> Value {
    Value::Map(vec![("error".into(), msg.to_string().to_value())])
}

fn latlng_of(v: &Value) -> Result<LatLng, String> {
    let lat = f64::from_value(v.field("lat").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let lng = f64::from_value(v.field("lng").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    // `LatLng::new` treats bad coordinates as a programming error and
    // panics; here they are untrusted network data, so validate first —
    // a hostile NaN must cost the sender its connection, not a worker.
    if !lat.is_finite() || !lng.is_finite() || !(-90.0..=90.0).contains(&lat) {
        return Err(format!("invalid coordinates ({lat}, {lng})"));
    }
    Ok(LatLng::new(lat, lng))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    u64::from_value(v.field(key).map_err(|e| e.to_string())?).map_err(|e| e.to_string())
}

fn campaign_of(shared: &Shared, v: &Value) -> Result<Arc<CampaignHost>, String> {
    let id = field_u64(v, "campaign")?;
    let host = lock_ok(&shared.campaigns)
        .get(&id)
        .cloned()
        .ok_or_else(|| format!("unknown campaign {id}"))?;
    host.last_activity.store(shared.now_ms(), Ordering::Relaxed);
    Ok(host)
}

fn handle_request(
    shared: &Shared,
    session: &mut Option<u64>,
    kind: u8,
    v: &Value,
) -> Result<Reply, String> {
    if kind == wire::REQ_HELLO {
        let proto = field_u64(v, "proto")?;
        if proto != wire::PROTO_VERSION {
            return Err(format!(
                "protocol version {proto} unsupported (server speaks {})",
                wire::PROTO_VERSION
            ));
        }
        let token = shared.next_session.fetch_add(1, Ordering::SeqCst);
        *session = Some(token);
        return Reply::ok(
            wire::RESP_HELLO,
            Value::Map(vec![("session".into(), token.to_value())]),
        );
    }
    // Everything else requires the handshake: the session token keys the
    // rate limiter for estimates traffic.
    let session = session.ok_or_else(|| "handshake required (send HELLO first)".to_string())?;

    match kind {
        wire::REQ_OPEN => {
            let city =
                CityModel::from_value(v.field("city").map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            let seed = field_u64(v, "seed")?;
            let era = ProtocolEra::from_value(v.field("era").map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let surge_policy =
                SurgePolicy::from_value(v.field("surge_policy").map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            let party = field_u64(v, "party")?.max(1) as usize;
            if party >= shared.workers {
                return Err(format!(
                    "party of {party} needs more than the server's {} workers",
                    shared.workers
                ));
            }
            // Exactly the in-process construction: the client ships the
            // post-scale city, the server derives marketplace and
            // endpoint from (city, seed, era, policy).
            let market_cfg = MarketplaceConfig { surge_policy, ..Default::default() };
            let mp = Marketplace::new(city, market_cfg, seed);
            let api = ApiService::new(era, seed ^ 0xB0B5);
            let host = Arc::new(CampaignHost {
                party,
                state: Mutex::new(CampaignState {
                    world: Some(HostWorld::new(mp, api)),
                    truth: None,
                    tick: 0,
                    arrivals: 0,
                    joined: 1,
                    expired: false,
                }),
                barrier: Condvar::new(),
                last_activity: AtomicU64::new(shared.now_ms()),
            });
            let id = shared.next_campaign.fetch_add(1, Ordering::SeqCst);
            lock_ok(&shared.campaigns).insert(id, host);
            shared.metrics.campaigns_opened.incr();
            Reply::ok(
                wire::RESP_OPEN,
                Value::Map(vec![("campaign".into(), id.to_value())]),
            )
        }
        wire::REQ_JOIN => {
            let host = campaign_of(shared, v)?;
            let tick = host.join()?;
            Reply::ok(wire::RESP_OK, Value::Map(vec![("tick".into(), tick.to_value())]))
        }
        wire::REQ_RESUME => {
            let host = campaign_of(shared, v)?;
            let tick = host.resume()?;
            shared.metrics.resumes.incr();
            Reply::ok(wire::RESP_OK, Value::Map(vec![("tick".into(), tick.to_value())]))
        }
        wire::REQ_CRASH => {
            if !shared.allow_crash {
                return Err("crash verb disabled (ServeConfig::allow_crash)".into());
            }
            let host = campaign_of(shared, v)?;
            // Deliberately panic while holding the campaign lock so the
            // poisoning-recovery path has a deterministic trigger.
            let _st = host.state.lock();
            panic!("injected crash (REQ_CRASH test verb)");
        }
        wire::REQ_ADVANCE => {
            let host = campaign_of(shared, v)?;
            let want = field_u64(v, "tick")?;
            let tick = host.advance(want, &shared.shutdown)?;
            Reply::ok(wire::RESP_OK, Value::Map(vec![("tick".into(), tick.to_value())]))
        }
        wire::REQ_PING => {
            let host = campaign_of(shared, v)?;
            let key = field_u64(v, "key")?;
            let loc = latlng_of(v)?;
            // Snapshot and ping core are extracted under the lock; the
            // (comparatively expensive) response renders outside it, so
            // a party's pings are answered concurrently.
            let (snap, ping) = {
                let mut st = lock_ok(&host.state);
                let world =
                    st.world.as_mut().ok_or("campaign already finished")?;
                (world.snapshot(), world.api.ping_config())
            };
            let resp = ping.ping_client(&snap, key, loc);
            Reply::ok(wire::RESP_PING, resp.to_value())
        }
        wire::REQ_PRICE | wire::REQ_TIME => {
            let host = campaign_of(shared, v)?;
            let account = field_u64(v, "account")?;
            let loc = latlng_of(v)?;
            let mut st = lock_ok(&host.state);
            let world = st.world.as_mut().ok_or("campaign already finished")?;
            let snap = world.snapshot();
            estimates_reply(shared, &mut world.api, &snap, kind, session, account, loc)
        }
        wire::REQ_FINISH => {
            let host = campaign_of(shared, v)?;
            // Idempotent: the first FINISH consumes the marketplace and
            // caches the truth; the slot stays in the table (the janitor
            // reclaims it once idle) so a client whose connection died
            // between request and reply can reconnect and re-ask.
            let mut st = lock_ok(&host.state);
            if st.truth.is_none() {
                let world = st.world.take().ok_or("campaign already finished")?;
                st.truth = Some(world.mp.into_truth().to_value());
            }
            let truth = st.truth.clone().expect("just populated");
            Reply::ok(
                wire::RESP_FINISH,
                Value::Map(vec![("truth".into(), truth)]),
            )
        }
        wire::REQ_PING_FREE => {
            let free = shared.free.as_ref().ok_or("no free-running world configured")?;
            let key = field_u64(v, "key")?;
            let loc = latlng_of(v)?;
            let (snap, ping) = {
                let mut world = lock_ok(free);
                (world.snapshot(), world.api.ping_config())
            };
            let resp = ping.ping_client(&snap, key, loc);
            shared.metrics.free_pings.incr();
            Reply::ok(wire::RESP_PING, resp.to_value())
        }
        wire::REQ_PRICE_FREE | wire::REQ_TIME_FREE => {
            let free = shared.free.as_ref().ok_or("no free-running world configured")?;
            let account = field_u64(v, "account")?;
            let loc = latlng_of(v)?;
            let mut world = lock_ok(free);
            let snap = world.snapshot();
            let kind = if kind == wire::REQ_PRICE_FREE { wire::REQ_PRICE } else { wire::REQ_TIME };
            estimates_reply(shared, &mut world.api, &snap, kind, session, account, loc)
        }
        other => Err(format!("unknown request kind {other:#04x}")),
    }
}

/// Serves `estimates/price` / `estimates/time`, keying the per-account
/// rate limiter by the connection's session token (a remote caller picks
/// its claimed account freely; the session is the server-assigned
/// identity).
fn estimates_reply(
    shared: &Shared,
    api: &mut ApiService,
    snap: &WorldSnapshot,
    kind: u8,
    session: u64,
    account: u64,
    loc: LatLng,
) -> Result<Reply, String> {
    let key = surgescope_api::session_key(session, account);
    let throttled = |e: surgescope_api::RateLimitError| {
        shared.metrics.throttled_wire.incr();
        Reply {
            kind: wire::RESP_THROTTLED,
            payload: Value::Map(vec![
                ("account".into(), account.to_value()),
                ("retry_after_secs".into(), e.retry_after_secs.to_value()),
            ]),
            close: false,
        }
    };
    match kind {
        wire::REQ_PRICE => match api.estimates_price(snap, key, loc) {
            Ok(prices) => Reply::ok(
                wire::RESP_PRICE,
                Value::Map(vec![("estimates".into(), prices.to_value())]),
            ),
            Err(e) => Ok(throttled(e)),
        },
        _ => match api.estimates_time(snap, key, loc) {
            Ok(times) => Reply::ok(
                wire::RESP_TIME,
                Value::Map(vec![("estimates".into(), times.to_value())]),
            ),
            Err(e) => Ok(throttled(e)),
        },
    }
}
