//! Closed-loop load generator: N connections × M requests/second of
//! free-mode pings against a running server, with client-side latency
//! percentiles.

use crate::wire;
use serde::{Serialize, Value};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use surgescope_geo::LatLng;
use surgescope_obs::Histogram;

/// Latency histogram bucket bounds, microseconds.
pub const LATENCY_BOUNDS_US: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Shape of a load run.
#[derive(Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections, one thread each.
    pub conns: usize,
    /// Target request rate **per connection** (closed loop: a connection
    /// never has more than one request in flight).
    pub req_per_sec: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Location every ping reports.
    pub location: LatLng,
}

/// Outcome of a load run. Percentiles are exact (computed from the full
/// sorted sample set, not the histogram buckets).
pub struct LoadReport {
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests that failed (I/O, framing, or error responses).
    pub errors: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Aggregate successful-request throughput.
    pub requests_per_sec: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// The same latencies as an `obs` histogram (for registry adoption).
    pub latency: Histogram,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the load shape against a live server and gathers the report.
///
/// Each connection performs its own HELLO handshake, then issues
/// `REQ_PING_FREE` at the configured pace until the duration elapses.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut samples: Vec<u64> = Vec::new();

    std::thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::new();
        for conn_id in 0..cfg.conns.max(1) {
            let errors = Arc::clone(&errors);
            handles.push(scope.spawn(move || -> Vec<u64> {
                match drive_conn(cfg, conn_id, &errors) {
                    Ok(lat) => lat,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        Vec::new()
                    }
                }
            }));
        }
        for h in handles {
            if let Ok(lat) = h.join() {
                samples.extend(lat);
            }
        }
        Ok(())
    })?;

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    samples.sort_unstable();
    let latency = Histogram::new(LATENCY_BOUNDS_US);
    for &us in &samples {
        latency.record(us);
    }
    Ok(LoadReport {
        requests: samples.len() as u64,
        errors: errors.load(Ordering::Relaxed),
        wall_secs,
        requests_per_sec: samples.len() as f64 / wall_secs,
        p50_us: percentile(&samples, 0.50),
        p90_us: percentile(&samples, 0.90),
        p99_us: percentile(&samples, 0.99),
        max_us: samples.last().copied().unwrap_or(0),
        latency,
    })
}

/// One connection's closed loop; returns per-request latencies in µs.
fn drive_conn(cfg: &LoadConfig, conn_id: usize, errors: &AtomicU64) -> io::Result<Vec<u64>> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;

    let hello = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
    wire::write_frame(&mut stream, wire::REQ_HELLO, &hello).map_err(io::Error::from)?;
    let (kind, _, _) =
        wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).map_err(|e| e.into_io())?;
    if kind != wire::RESP_HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "handshake refused"));
    }

    let period = if cfg.req_per_sec == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(1.0 / cfg.req_per_sec as f64)
    };
    let ping = Value::Map(vec![
        ("key".into(), (conn_id as u64).to_value()),
        ("lat".into(), cfg.location.lat.to_value()),
        ("lng".into(), cfg.location.lng.to_value()),
    ]);
    let deadline = Instant::now() + cfg.duration;
    let mut latencies = Vec::new();
    let mut next_send = Instant::now();
    while Instant::now() < deadline {
        if period > Duration::ZERO {
            let now = Instant::now();
            if next_send > now {
                std::thread::sleep(next_send - now);
            }
            next_send += period;
        }
        let t0 = Instant::now();
        if wire::write_frame(&mut stream, wire::REQ_PING_FREE, &ping).is_err() {
            errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME) {
            Ok((wire::RESP_PING, _, _)) => {
                latencies.push(t0.elapsed().as_micros() as u64);
            }
            Ok(_) | Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    Ok(latencies)
}
