//! Wire-robustness contract: a hostile or broken peer can cost itself its
//! connection, but never a worker thread, never a hang, and every framing
//! violation is visible as a `serve.frame_errors` increment. Also locks
//! the port-0 ephemeral bind and the graceful drain-on-shutdown window.

use serde::{Serialize, Value};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use surgescope_api::ProtocolEra;
use surgescope_city::CityModel;
use surgescope_serve::wire;
use surgescope_serve::{FreeWorldSpec, ServeConfig, Server};

fn free_spec() -> FreeWorldSpec {
    FreeWorldSpec {
        city: CityModel::san_francisco_downtown(),
        scale: 0.2,
        seed: 99,
        era: ProtocolEra::Apr2015,
        warmup_hours: 0,
        tick_ms: None,
    }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

fn hello(stream: &mut TcpStream) {
    let v = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
    wire::write_frame(stream, wire::REQ_HELLO, &v).expect("send HELLO");
    let (kind, _, _) = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).expect("read HELLO");
    assert_eq!(kind, wire::RESP_HELLO);
}

/// True once the server has closed its end: a read returns 0 bytes (or a
/// reset). Panics if the connection is still open after 5 seconds — the
/// "never hang" half of the contract.
fn assert_closed(stream: &mut TcpStream) {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {} // late response bytes in flight; keep draining
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe
                ) =>
            {
                return
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => panic!("unexpected read error while awaiting close: {e}"),
        }
        assert!(Instant::now() < deadline, "server kept the connection open");
    }
}

/// Polls a counter until it reaches `want` (the worker increments after
/// the client may already have observed the close).
fn await_count(read: impl Fn() -> u64, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while read() < want {
        assert!(Instant::now() < deadline, "{what} never reached {want} (at {})", read());
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn port_zero_bind_reports_ephemeral_address() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "bound address must carry the kernel-chosen port");
    // The reported address is genuinely reachable.
    let mut stream = TcpStream::connect(addr).expect("dial the reported address");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    hello(&mut stream);
}

#[test]
fn malformed_body_closes_connection_with_error_count() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    // Valid length and CRC, but the body is just a kind byte with no
    // codec payload behind it — decodable framing, undecodable content.
    let body = [wire::REQ_PING];
    let mut raw = Vec::new();
    raw.extend_from_slice(&(body.len() as u32).to_le_bytes());
    raw.extend_from_slice(&surgescope_store::crc32::crc32(&body).to_le_bytes());
    raw.extend_from_slice(&body);
    stream.write_all(&raw).expect("send malformed frame");
    assert_closed(&mut stream);
    await_count(|| server.metrics().frame_errors.get(), 1, "serve.frame_errors");
}

#[test]
fn crc_flip_closes_connection_with_error_count() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    let v = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
    let mut raw = wire::frame_bytes(wire::REQ_HELLO, &v);
    let last = raw.len() - 1;
    raw[last] ^= 0x40; // corrupt one body byte; the CRC now lies
    stream.write_all(&raw).expect("send corrupted frame");
    assert_closed(&mut stream);
    await_count(|| server.metrics().frame_errors.get(), 1, "serve.frame_errors");
}

#[test]
fn truncated_length_prefix_closes_with_error_count() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    stream.write_all(&[0x10, 0x00]).expect("send half a prefix");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    assert_closed(&mut stream);
    await_count(|| server.metrics().frame_errors.get(), 1, "serve.frame_errors");
}

#[test]
fn oversized_frame_rejected_with_error_count() {
    let cfg = ServeConfig { max_frame: 4 * 1024, ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    // Claim a body one byte over budget; the server must refuse on the
    // prefix alone, before reading (or allocating) any of it.
    stream
        .write_all(&((4 * 1024 + 1) as u32).to_le_bytes())
        .expect("send oversized prefix");
    assert_closed(&mut stream);
    await_count(|| server.metrics().frame_errors.get(), 1, "serve.frame_errors");
}

#[test]
fn slow_loris_partial_write_is_dropped() {
    let cfg = ServeConfig { io_timeout: Duration::from_millis(200), ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    // Start a frame and stall: two prefix bytes, then silence with the
    // socket held open. The mid-frame deadline must cut us off.
    stream.write_all(&[0x08, 0x00]).expect("send partial prefix");
    assert_closed(&mut stream);
    await_count(|| server.metrics().frame_errors.get(), 1, "serve.frame_errors");
}

#[test]
fn unknown_kind_is_a_protocol_error_not_a_frame_error() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    let v = Value::Map(vec![]);
    wire::write_frame(&mut stream, 0x7F, &v).expect("send unknown kind");
    let (kind, payload, _) =
        wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("read reply");
    assert_eq!(kind, wire::RESP_ERR, "unknown kinds are answered, then closed");
    assert!(payload.field("error").is_ok());
    assert_closed(&mut stream);
    assert_eq!(
        server.metrics().frame_errors.get(),
        0,
        "a well-framed bad request is not a framing error"
    );
}

#[test]
fn hostile_coordinates_answered_with_error_and_worker_survives() {
    let cfg = ServeConfig { free: Some(free_spec()), ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    let v = Value::Map(vec![
        ("key".into(), 1u64.to_value()),
        ("lat".into(), f64::NAN.to_value()),
        ("lng".into(), (-122.4).to_value()),
    ]);
    wire::write_frame(&mut stream, wire::REQ_PING_FREE, &v).expect("send NaN ping");
    let (kind, _, _) =
        wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("read reply");
    assert_eq!(kind, wire::RESP_ERR, "NaN coordinates must be refused, not panic a worker");
    assert_closed(&mut stream);

    // The worker pool is intact: a fresh connection still gets answers.
    let mut stream = connect(&server);
    hello(&mut stream);
    let v = Value::Map(vec![
        ("key".into(), 1u64.to_value()),
        ("lat".into(), 37.78.to_value()),
        ("lng".into(), (-122.41).to_value()),
    ]);
    wire::write_frame(&mut stream, wire::REQ_PING_FREE, &v).expect("send good ping");
    let (kind, _, _) =
        wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("read reply");
    assert_eq!(kind, wire::RESP_PING);
}

#[test]
fn shutdown_drains_inflight_requests() {
    let mut server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.shutdown());
        // Land a request inside the drain window (300 ms by default).
        std::thread::sleep(Duration::from_millis(50));
        let v = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
        wire::write_frame(&mut stream, wire::REQ_HELLO, &v).expect("send during drain");
        let (kind, _, _) = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME)
            .expect("a request inside the drain window must still be answered");
        assert_eq!(kind, wire::RESP_HELLO);
        // Past the window the connection closes cleanly.
        assert_closed(&mut stream);
        handle.join().expect("shutdown thread");
    });
    assert_eq!(server.metrics().frame_errors.get(), 0, "drain dropped a request");
}

#[test]
fn estimates_throttle_over_the_wire() {
    let cfg = ServeConfig { free: Some(free_spec()), ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);

    let limit = surgescope_api::DEFAULT_LIMIT_PER_HOUR as u64;
    let (mut served, mut throttled) = (0u64, 0u64);
    for _ in 0..limit + 5 {
        let v = Value::Map(vec![
            ("account".into(), 7u64.to_value()),
            ("lat".into(), 37.78.to_value()),
            ("lng".into(), (-122.41).to_value()),
        ]);
        wire::write_frame(&mut stream, wire::REQ_PRICE_FREE, &v).expect("send price request");
        let (kind, payload, _) =
            wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("read reply");
        match kind {
            wire::RESP_PRICE => served += 1,
            wire::RESP_THROTTLED => {
                assert!(payload.field("retry_after_secs").is_ok());
                throttled += 1;
            }
            other => panic!("unexpected reply {other:#04x}"),
        }
    }
    assert_eq!(served, limit, "the full per-hour budget is served");
    assert_eq!(throttled, 5, "requests past the budget are throttled on the wire");
    assert_eq!(server.metrics().throttled_wire.get(), 5);
    assert_eq!(server.metrics().frame_errors.get(), 0);
}
