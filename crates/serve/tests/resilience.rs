//! Server-side resilience contract: a worker panic mid-campaign poisons
//! at most the campaign lock — which every other session recovers from —
//! never the server. The crashed session re-attaches via `RESUME` and
//! the party finishes the campaign; the sibling session never notices.
//! Separately, the janitor reclaims campaign slots whose clients
//! vanished, so a crashed client cannot leak a world forever.
//!
//! These tests speak the raw wire (the serve crate cannot depend on the
//! campaign client in `core`), using the test-only `REQ_CRASH` verb —
//! which panics a handler *while holding the campaign lock* — as the
//! deterministic trigger for the poisoning-recovery path.

use serde::{Deserialize, Serialize, Value};
use std::net::TcpStream;
use std::time::Duration;
use surgescope_api::ProtocolEra;
use surgescope_city::CityModel;
use surgescope_marketplace::SurgePolicy;
use surgescope_serve::wire;
use surgescope_serve::{ServeConfig, Server};

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn rpc(stream: &mut TcpStream, kind: u8, payload: &Value) -> (u8, Value) {
    wire::write_frame(stream, kind, payload).expect("send frame");
    let (kind, v, _) =
        wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).expect("read reply");
    (kind, v)
}

fn hello(stream: &mut TcpStream) {
    let v = Value::Map(vec![("proto".into(), wire::PROTO_VERSION.to_value())]);
    let (kind, _) = rpc(stream, wire::REQ_HELLO, &v);
    assert_eq!(kind, wire::RESP_HELLO);
}

/// Opens a small campaign world (fifth-scale city so each tick is cheap)
/// and returns its id.
fn open_campaign(stream: &mut TcpStream, party: u64) -> u64 {
    let mut city = CityModel::san_francisco_downtown();
    city.supply = city.supply.scaled(0.2);
    city.demand = city.demand.scaled(0.2);
    let v = Value::Map(vec![
        ("city".into(), city.to_value()),
        ("seed".into(), 4242u64.to_value()),
        ("era".into(), ProtocolEra::Apr2015.to_value()),
        ("surge_policy".into(), SurgePolicy::Threshold.to_value()),
        ("party".into(), party.to_value()),
    ]);
    let (kind, v) = rpc(stream, wire::REQ_OPEN, &v);
    assert_eq!(kind, wire::RESP_OPEN, "OPEN refused: {v:?}");
    u64::from_value(v.field("campaign").expect("campaign id")).expect("id")
}

fn campaign_payload(campaign: u64) -> Value {
    Value::Map(vec![("campaign".into(), campaign.to_value())])
}

/// Lockstep ADVANCE to `want`; blocks until the whole party arrives.
fn advance(stream: &mut TcpStream, campaign: u64, want: u64) {
    let v = Value::Map(vec![
        ("campaign".into(), campaign.to_value()),
        ("tick".into(), want.to_value()),
    ]);
    let (kind, v) = rpc(stream, wire::REQ_ADVANCE, &v);
    assert_eq!(kind, wire::RESP_OK, "ADVANCE failed: {v:?}");
    assert_eq!(u64::from_value(v.field("tick").unwrap()).unwrap(), want);
}

#[test]
fn worker_panic_mid_campaign_is_isolated_and_the_party_finishes() {
    let cfg = ServeConfig { allow_crash: true, ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");

    let mut a = connect(&server);
    hello(&mut a);
    let campaign = open_campaign(&mut a, 2);
    let mut b = connect(&server);
    hello(&mut b);
    let (kind, _) = rpc(&mut b, wire::REQ_JOIN, &campaign_payload(campaign));
    assert_eq!(kind, wire::RESP_OK);

    // One lockstep tick with both sessions healthy.
    std::thread::scope(|s| {
        s.spawn(|| advance(&mut a, campaign, 1));
        advance(&mut b, campaign, 1);
    });

    // Session A's handler panics *while holding the campaign lock*. The
    // panic boundary answers with an internal error and costs A its
    // connection — nothing more.
    let (kind, v) = rpc(&mut a, wire::REQ_CRASH, &campaign_payload(campaign));
    assert_eq!(kind, wire::RESP_ERR);
    let msg = String::from_value(v.field("error").unwrap()).unwrap();
    assert!(msg.contains("panicked"), "unexpected error: {msg}");
    assert_eq!(server.metrics().worker_panics.get(), 1);

    // A re-attaches: fresh connection, HELLO, RESUME. The poisoned
    // campaign lock is recovered, no party slot is consumed, and the
    // reported tick is exactly where the barrier froze the world.
    let mut a2 = connect(&server);
    hello(&mut a2);
    let (kind, v) = rpc(&mut a2, wire::REQ_RESUME, &campaign_payload(campaign));
    assert_eq!(kind, wire::RESP_OK, "RESUME refused: {v:?}");
    assert_eq!(u64::from_value(v.field("tick").unwrap()).unwrap(), 1);
    assert_eq!(server.metrics().resumes.get(), 1);

    // The party — resumed A plus the never-disturbed sibling B —
    // completes the campaign.
    for want in 2..=3 {
        std::thread::scope(|s| {
            s.spawn(|| advance(&mut a2, campaign, want));
            advance(&mut b, campaign, want);
        });
    }
    let (kind, v) = rpc(&mut b, wire::REQ_FINISH, &campaign_payload(campaign));
    assert_eq!(kind, wire::RESP_FINISH, "FINISH failed: {v:?}");
    assert!(v.field("truth").is_ok(), "FINISH reply must carry the ground truth");

    // Exactly one panic, exactly one resume, and the crash produced no
    // framing violations — the wire stayed clean throughout.
    assert_eq!(server.metrics().worker_panics.get(), 1);
    assert_eq!(server.metrics().resumes.get(), 1);
    assert_eq!(server.metrics().frame_errors.get(), 0);
}

#[test]
fn crash_verb_is_refused_unless_explicitly_enabled() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    let campaign = open_campaign(&mut stream, 1);
    let (kind, v) = rpc(&mut stream, wire::REQ_CRASH, &campaign_payload(campaign));
    assert_eq!(kind, wire::RESP_ERR, "REQ_CRASH must be refused by default");
    let msg = String::from_value(v.field("error").unwrap()).unwrap();
    assert!(msg.contains("disabled"), "unexpected error: {msg}");
    assert_eq!(server.metrics().worker_panics.get(), 0, "the refusal must not panic");
}

#[test]
fn janitor_expires_an_orphaned_campaign_slot() {
    let cfg = ServeConfig {
        campaign_idle_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut stream = connect(&server);
    hello(&mut stream);
    let campaign = open_campaign(&mut stream, 1);
    advance(&mut stream, campaign, 1);

    // Go silent past the idle timeout; the janitor reclaims the slot.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.metrics().campaigns_expired.get() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "the janitor never expired the idle campaign"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The world is gone: further traffic is an explicit error, and a
    // RESUME cannot raise the dead either.
    let v = Value::Map(vec![
        ("campaign".into(), campaign.to_value()),
        ("tick".into(), 2u64.to_value()),
    ]);
    let (kind, v) = rpc(&mut stream, wire::REQ_ADVANCE, &v);
    assert_eq!(kind, wire::RESP_ERR);
    let msg = String::from_value(v.field("error").unwrap()).unwrap();
    assert!(msg.contains("unknown campaign"), "unexpected error: {msg}");
    assert_eq!(server.metrics().campaigns_expired.get(), 1);
}
